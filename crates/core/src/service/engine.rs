//! The network-free service core: multi-tenant campaign execution.
//!
//! [`ServiceEngine`] owns every live campaign. Campaigns whose evaluation
//! substrate is identical (same scale, same temperature, same metric) are
//! grouped onto one [`CampaignScheduler`] over one persistent
//! [`EvalPool`], so concurrent tenants share worker threads and replica
//! caches; campaigns with different substrates get their own group. One
//! [`tick`](ServiceEngine::tick) advances every runnable campaign by
//! exactly one generation round and then settles each stepped campaign:
//! journal its new records and incidents, publish a progress event, and
//! append its post-step checkpoint (or finish the journal when done).
//!
//! The journaling protocol is the same as
//! [`run_journaled`](dstress_ga::run_journaled)'s — checkpoint, step,
//! records, incidents, checkpoint, … — so a daemon killed at any point
//! resumes every unfinished campaign **bit-identically** at the next
//! boot, and a finished campaign's journal snapshot is byte-for-byte the
//! snapshot a solo
//! [`search_word64_journaled`](crate::DStress::search_word64_journaled)
//! run with the same spec would have written.
//!
//! # Failure domains
//!
//! Each campaign is its own fault domain. All engine I/O flows through
//! the [`Storage`] trait (generic, [`DiskStorage`] by default), and a
//! journal or registry fault during a campaign's settle **quarantines
//! only that campaign**: it transitions to the `failed` state, its
//! scheduler slot (and eval-pool share) is released to the surviving
//! tenants, its on-disk journal stays intact, and an [`Event::Failed`]
//! is broadcast carrying the error, the last published sequence number,
//! and the deterministic backoff a client should wait before asking for
//! recovery. A `resume` on a failed campaign retries recovery from the
//! retained journal; every retry is recorded against a bounded
//! exponential [`SupervisionPolicy`] schedule (recorded, never slept on
//! the engine thread). [`tick`](ServiceEngine::tick) itself is
//! infallible — no tenant fault ever propagates out of it.
//!
//! Every broadcast event is stamped with a per-campaign sequence number
//! ([`SeqEvent`]) and retained in a small ring, so a `watch` that
//! reconnects with `from_seq` replays exactly the missed suffix.

use crate::error::DStressError;
use crate::evaluate::{Metric, ParallelBitFitness};
use crate::patterns::BitCodec;
use crate::scale::ExperimentScale;
use crate::search::{BitCampaign, DStress, EnvKind, Seeding};
use crate::service::broadcast::{EventBus, Subscriber};
use crate::service::protocol::{CampaignSpec, Event, LeaderboardEntry, SeqEvent, StatusReport};
use crate::service::registry::{CampaignRegistry, StoredResult, StoredSpec};
use dstress_ga::journal::{CampaignJournal, DiskStorage, Storage};
use dstress_ga::{
    BitGenome, CampaignScheduler, EngineState, EvalPool, Genome, ParallelFitness, SearchSession,
    SupervisionPolicy, VirusRecord,
};
use std::collections::{HashSet, VecDeque};
use std::io;
use std::path::{Path, PathBuf};

/// A typed service-layer failure: what went wrong, machine-matchable.
///
/// The daemon renders these verbatim into [`Response::Error`]
/// (crate::service::protocol::Response::Error) frames; nothing in the
/// service layer panics on them.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// No campaign with this id was ever submitted.
    UnknownCampaign(u64),
    /// The operation needs a live campaign, but this one has reached the
    /// named lifecycle state.
    Terminal {
        /// The campaign id.
        campaign: u64,
        /// Its lifecycle state (`done`, `cancelled`, `failed`, …).
        state: String,
    },
    /// The submitted spec cannot be built (unknown scale, a temperature
    /// the thermal rig cannot settle, a corrupt checkpoint).
    Spec(String),
    /// A journal or registry storage operation failed; the affected
    /// campaign was quarantined, not the daemon.
    Storage(String),
    /// An engine invariant did not hold. The affected campaign is
    /// quarantined; a daemon must never panic on its own bookkeeping.
    StateMismatch(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownCampaign(id) => write!(f, "no campaign {id}"),
            ServiceError::Terminal { campaign, state } => {
                write!(f, "campaign {campaign} is {state}")
            }
            ServiceError::Spec(m) | ServiceError::Storage(m) => write!(f, "{m}"),
            ServiceError::StateMismatch(m) => write!(f, "internal state mismatch: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<ServiceError> for DStressError {
    fn from(e: ServiceError) -> Self {
        DStressError::Service(e.to_string())
    }
}

/// The word64 chromosome codec every service campaign uses.
fn word64_codec() -> BitCodec {
    BitCodec::Word64 {
        param: "PATTERN".into(),
    }
}

/// Resolves a spec's scale name (`""` defaults to `quick` — the service
/// is a long-running multiplexer, so the cheap scale is the safe default).
fn scale_named(name: &str) -> Result<ExperimentScale, String> {
    match name {
        "" | "quick" => Ok(ExperimentScale::quick()),
        "paper" => Ok(ExperimentScale::paper()),
        other => Err(format!("unknown scale `{other}` (quick|paper)")),
    }
}

fn spec_metric(spec: &CampaignSpec) -> Metric {
    if spec.ue {
        Metric::UeRuns
    } else {
        Metric::CeAverage
    }
}

fn entry(genome: &BitGenome, fitness: f64) -> LeaderboardEntry {
    LeaderboardEntry {
        genes: genome.to_words(),
        fitness,
    }
}

fn make_record(campaign: &str, genome: &BitGenome, value: f64) -> VirusRecord {
    VirusRecord {
        campaign: campaign.to_string(),
        genes: genome.to_words(),
        gene_len: genome.len(),
        fitness: value,
        ce: value.max(0.0) as u64,
        ue: 0,
        sequence: 0,
    }
}

fn invalid_data<E: std::fmt::Display>(e: E) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

/// The bounded-exponential schedule for `failed`-campaign recovery
/// retries: 100 ms, 200 ms, 400 ms, … capped at 5 s. Recorded into
/// [`Event::Failed::resume_backoff_ms`] for clients, never slept on the
/// engine thread.
fn recovery_policy() -> SupervisionPolicy {
    SupervisionPolicy {
        backoff_base_ms: 100,
        backoff_cap_ms: 5_000,
        ..SupervisionPolicy::default()
    }
}

/// Where a campaign is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CampaignState {
    /// Scheduled: contributes tasks to every tick.
    Running,
    /// Client-paused: keeps all state, contributes nothing.
    Paused,
    /// Exhausted its step budget: checkpointed, waiting for a resume.
    BudgetPaused,
    /// Quarantined after a storage fault: scheduler slot released,
    /// journal intact, waiting for a `resume` to retry recovery.
    Failed,
    /// Finished (converged or out of generations).
    Done,
    /// Cancelled by a client; the journal is retained.
    Cancelled,
}

impl CampaignState {
    fn as_str(self) -> &'static str {
        match self {
            CampaignState::Running => "running",
            CampaignState::Paused => "paused",
            CampaignState::BudgetPaused => "budget-paused",
            CampaignState::Failed => "failed",
            CampaignState::Done => "done",
            CampaignState::Cancelled => "cancelled",
        }
    }

    fn terminal(self) -> bool {
        matches!(self, CampaignState::Done | CampaignState::Cancelled)
    }
}

/// The scheduler-side state of a live (non-terminal) campaign.
struct Live<S: Storage> {
    group: usize,
    sched: usize,
    journal: CampaignJournal<S>,
    /// Chromosomes already journaled — a resume's replay window must not
    /// re-append its repeats.
    recorded: HashSet<Vec<u64>>,
    /// Chromosomes already reported on the leaderboard, for event deltas.
    board_genes: HashSet<Vec<u64>>,
    /// The scheduler step budget currently in force (steps counted from
    /// this boot's `add`), mirroring the scheduler's own budget.
    budget: Option<u64>,
}

/// The quarantine record of a `failed` campaign.
struct Failure {
    /// The storage error that quarantined it (latest recovery attempt's
    /// error once retries begin).
    error: String,
    /// The last sequence number published before the failure.
    at_seq: u64,
    /// Recovery attempts so far, indexing the backoff schedule.
    attempts: u32,
    /// The progress snapshot taken at quarantine time.
    report: StatusReport,
}

/// One campaign the engine knows about, live or terminal.
struct Runtime<S: Storage> {
    id: u64,
    name: String,
    spec: CampaignSpec,
    state: CampaignState,
    live: Option<Live<S>>,
    bus: EventBus<SeqEvent>,
    /// The sequence number of the last published event (0 = none yet).
    event_seq: u64,
    /// The ring of recently published events backing `watch --from-seq`
    /// reconnects.
    recent: VecDeque<SeqEvent>,
    /// The quarantine record, when `state` is [`CampaignState::Failed`].
    failure: Option<Failure>,
    /// The terminal report, once the campaign is done or cancelled.
    report: Option<StatusReport>,
}

/// Stamps, retains, and broadcasts one event on a campaign's bus.
///
/// A free function over the runtime's disjoint fields so callers can hold
/// other `Runtime` borrows (e.g. `live`) across the publish.
fn publish(
    bus: &EventBus<SeqEvent>,
    recent: &mut VecDeque<SeqEvent>,
    event_seq: &mut u64,
    capacity: usize,
    event: Event,
) {
    *event_seq += 1;
    let stamped = SeqEvent {
        seq: *event_seq,
        event,
    };
    if recent.len() == capacity {
        recent.pop_front();
    }
    recent.push_back(stamped.clone());
    bus.publish(&stamped);
}

/// Snapshots a live session into a client-facing progress report.
fn report_from_session(
    id: u64,
    name: &str,
    state: CampaignState,
    session: &SearchSession<BitGenome>,
    error: Option<String>,
) -> StatusReport {
    let board = session.leaderboard();
    StatusReport {
        campaign: id,
        name: name.to_string(),
        state: state.as_str().to_string(),
        generation: session.generation(),
        best: board.first().map(|(g, f)| entry(g, *f)),
        evaluations: session.eval_stats().evaluations,
        cache_hits: session.eval_stats().cache_hits,
        incidents: session.incidents().len() as u64,
        converged: session.converged(),
        error,
    }
}

/// Campaigns sharing one evaluation substrate, fair-share scheduled over
/// one persistent pool.
struct Group {
    /// Substrate identity: scale name, temperature bits, UE metric flag.
    key: (String, u64, bool),
    scheduler: CampaignScheduler<BitGenome, ParallelBitFitness>,
}

/// The multi-tenant campaign engine behind `dstressd` (network-free; the
/// daemon front-end owns exactly one, on one thread).
///
/// Generic over [`Storage`] so the fault-injection suite can drive it
/// over a [`SharedStorage<MemStorage>`](dstress_ga::journal::SharedStorage)
/// and fail any individual journal or registry operation.
pub struct ServiceEngine<S: Storage + Clone = DiskStorage> {
    registry: CampaignRegistry<S>,
    /// The storage every per-campaign journal is opened through (cloned
    /// per journal; clones of a shared storage view the same files).
    storage: S,
    groups: Vec<Group>,
    campaigns: Vec<Runtime<S>>,
    workers: usize,
    event_capacity: usize,
}

impl<S: Storage + Clone> std::fmt::Debug for ServiceEngine<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceEngine")
            .field("dir", &self.registry.dir())
            .field("groups", &self.groups.len())
            .field("campaigns", &self.campaigns.len())
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl ServiceEngine<DiskStorage> {
    /// Boots the engine over a registry directory on the real
    /// filesystem. See [`with_storage`](Self::with_storage).
    ///
    /// # Errors
    ///
    /// Propagates registry I/O failures; a recovered spec that no longer
    /// builds (unknown scale, unsettleable temperature, corrupt
    /// checkpoint) aborts the boot with [`io::ErrorKind::InvalidData`]
    /// rather than silently dropping the campaign.
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `event_capacity` is zero.
    pub fn new(dir: impl Into<PathBuf>, workers: usize, event_capacity: usize) -> io::Result<Self> {
        Self::with_storage(DiskStorage::new(), dir, workers, event_capacity)
    }
}

impl<S: Storage + Clone> ServiceEngine<S> {
    /// Boots the engine over a registry directory reached through
    /// `storage`: scans it and resumes every unfinished campaign from
    /// its journal checkpoint, bit-identically. Previously paused
    /// campaigns come back paused; previously `failed` campaigns come
    /// back quarantined (a `resume` retries their recovery). A campaign
    /// whose journal cannot be opened is quarantined, not a boot
    /// failure — only an unbuildable spec aborts the boot.
    ///
    /// # Errors
    ///
    /// Propagates registry I/O failures; a recovered spec that no longer
    /// builds is [`io::ErrorKind::InvalidData`].
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `event_capacity` is zero.
    pub fn with_storage(
        storage: S,
        dir: impl Into<PathBuf>,
        workers: usize,
        event_capacity: usize,
    ) -> io::Result<Self> {
        assert!(workers >= 1, "at least one evaluation worker is required");
        assert!(event_capacity >= 1, "subscribers buffer at least one event");
        let (registry, recovered) = CampaignRegistry::open_with(storage.clone(), dir)?;
        let mut engine = ServiceEngine {
            registry,
            storage,
            groups: Vec::new(),
            campaigns: Vec::new(),
            workers,
            event_capacity,
        };
        for campaign in recovered {
            engine.revive(campaign.id, campaign.stored)?;
        }
        Ok(engine)
    }

    /// The registry directory this engine persists into.
    pub fn dir(&self) -> &Path {
        self.registry.dir()
    }

    /// Whether no campaign currently has schedulable work.
    pub fn idle(&self) -> bool {
        self.groups.iter().all(|g| g.scheduler.idle())
    }

    fn runtime(&self, id: u64) -> Result<usize, ServiceError> {
        self.campaigns
            .iter()
            .position(|r| r.id == id)
            .ok_or(ServiceError::UnknownCampaign(id))
    }

    fn persist_state(&mut self, idx: usize) -> io::Result<()> {
        let runtime = &self.campaigns[idx];
        let id = runtime.id;
        let stored = StoredSpec {
            spec: runtime.spec.clone(),
            name: runtime.name.clone(),
            state: runtime.state.as_str().to_string(),
            error: runtime.failure.as_ref().map(|f| f.error.clone()),
        };
        self.registry.write_spec(id, &stored)
    }

    fn ensure_group(&mut self, spec: &CampaignSpec) -> Result<usize, String> {
        let scale = scale_named(&spec.scale)?;
        let key = (
            scale.name.to_string(),
            spec.temperature().to_bits(),
            spec.ue,
        );
        if let Some(i) = self.groups.iter().position(|g| g.key == key) {
            return Ok(i);
        }
        let dstress = DStress::new(scale, 0);
        let fitness = ParallelBitFitness {
            evaluator: dstress
                .evaluator(&EnvKind::Word64, spec.temperature(), spec_metric(spec))
                .map_err(|e| e.to_string())?,
            codec: word64_codec(),
        };
        self.groups.push(Group {
            key,
            scheduler: CampaignScheduler::new(EvalPool::new(&fitness, self.workers)),
        });
        Ok(self.groups.len() - 1)
    }

    /// Builds the session for a campaign: resumed from its journal
    /// checkpoint when one matches the campaign name, fresh otherwise.
    fn build_session(
        spec: &CampaignSpec,
        name: &str,
        journal: &CampaignJournal<S>,
    ) -> Result<SearchSession<BitGenome>, String> {
        let scale = scale_named(&spec.scale)?;
        let mut config = scale.ga;
        config.minimize = spec.minimize;
        match journal.checkpoint() {
            Some(cp) if cp.campaign == name => {
                let state =
                    EngineState::<BitGenome>::from_json(&cp.state).map_err(|e| e.to_string())?;
                Ok(SearchSession::resume(state))
            }
            _ => {
                let bits = word64_codec().genome_bits();
                // The engine seed of the first campaign a solo framework
                // with this seed would start — the determinism contract.
                let seed = DStress::campaign_seed(spec.framework_seed(), 1);
                Ok(SearchSession::start(config, seed, |rng| {
                    Seeding::Random.initial_genome(rng, bits)
                }))
            }
        }
    }

    /// Registers and schedules a campaign, returning its id and name.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Spec`] for an invalid spec (unknown scale, a
    /// temperature the thermal rig cannot settle) or
    /// [`ServiceError::Storage`] for a persistence failure; nothing is
    /// scheduled on error, and any partially written journal is
    /// discarded so a later campaign reusing the id cannot resume a
    /// stale checkpoint.
    pub fn submit(&mut self, spec: CampaignSpec) -> Result<(u64, String), ServiceError> {
        let group = self.ensure_group(&spec).map_err(ServiceError::Spec)?;
        let name =
            DStress::word64_campaign_name(spec.temperature(), &spec_metric(&spec), spec.minimize);
        let id = self.registry.alloc_id();
        match self.schedule_submitted(id, &name, spec, group) {
            Ok(()) => Ok((id, name)),
            Err(e) => {
                self.registry.discard_journal(id);
                Err(e)
            }
        }
    }

    /// The fallible tail of [`submit`](Self::submit), so the caller can
    /// roll back the journal files on any error.
    fn schedule_submitted(
        &mut self,
        id: u64,
        name: &str,
        spec: CampaignSpec,
        group: usize,
    ) -> Result<(), ServiceError> {
        let mut journal = CampaignJournal::open(self.storage.clone(), self.registry.db_path(id))
            .map_err(|e| ServiceError::Storage(format!("opening campaign journal: {e}")))?;
        let session = Self::build_session(&spec, name, &journal).map_err(ServiceError::Spec)?;
        let state = session
            .checkpoint()
            .to_json()
            .map_err(|e| ServiceError::Storage(e.to_string()))?;
        journal
            .append_checkpoint(name, state)
            .map_err(|e| ServiceError::Storage(format!("journaling: {e}")))?;
        let budget = (spec.step_budget > 0).then_some(spec.step_budget);
        let sched = self.groups[group].scheduler.add(session, budget);
        self.campaigns.push(Runtime {
            id,
            name: name.to_string(),
            spec,
            state: CampaignState::Running,
            live: Some(Live {
                group,
                sched,
                journal,
                recorded: HashSet::new(),
                board_genes: HashSet::new(),
                budget,
            }),
            bus: EventBus::new(self.event_capacity),
            event_seq: 0,
            recent: VecDeque::new(),
            failure: None,
            report: None,
        });
        if let Err(e) = self.persist_state(self.campaigns.len() - 1) {
            // Roll back: the campaign was never durably registered.
            if let Some(mut runtime) = self.campaigns.pop() {
                if let Some(live) = runtime.live.take() {
                    let _ = self.groups[live.group].scheduler.remove(live.sched);
                }
            }
            return Err(ServiceError::Storage(format!(
                "persisting campaign spec: {e}"
            )));
        }
        Ok(())
    }

    /// Rebuilds one campaign recovered by the boot scan.
    fn revive(&mut self, id: u64, stored: StoredSpec) -> io::Result<()> {
        let state = match stored.state.as_str() {
            "done" => CampaignState::Done,
            "cancelled" => CampaignState::Cancelled,
            "failed" => CampaignState::Failed,
            "paused" | "budget-paused" => CampaignState::Paused,
            _ => CampaignState::Running,
        };
        let bus = EventBus::new(self.event_capacity);
        if state.terminal() {
            let report = self.registry.read_result(id)?.map(|r| r.report);
            bus.close();
            self.campaigns.push(Runtime {
                id,
                name: stored.name,
                spec: stored.spec,
                state,
                live: None,
                bus,
                event_seq: 0,
                recent: VecDeque::new(),
                failure: None,
                report,
            });
            return Ok(());
        }
        if state == CampaignState::Failed {
            // Quarantined across the restart: no scheduler slot until a
            // `resume` retries recovery. The bus stays open.
            let error = stored
                .error
                .clone()
                .unwrap_or_else(|| "storage failure".to_string());
            let report = StatusReport {
                campaign: id,
                name: stored.name.clone(),
                state: CampaignState::Failed.as_str().to_string(),
                generation: 0,
                best: None,
                evaluations: 0,
                cache_hits: 0,
                incidents: 0,
                converged: false,
                error: Some(error.clone()),
            };
            self.campaigns.push(Runtime {
                id,
                name: stored.name,
                spec: stored.spec,
                state,
                live: None,
                bus,
                event_seq: 0,
                recent: VecDeque::new(),
                failure: Some(Failure {
                    error,
                    at_seq: 0,
                    attempts: 0,
                    report,
                }),
                report: None,
            });
            return Ok(());
        }
        self.campaigns.push(Runtime {
            id,
            name: stored.name,
            spec: stored.spec,
            state,
            live: None,
            bus,
            event_seq: 0,
            recent: VecDeque::new(),
            failure: None,
            report: None,
        });
        let idx = self.campaigns.len() - 1;
        match self.open_live(idx) {
            Ok(()) => Ok(()),
            // An unbuildable spec is a registry corruption: refuse the
            // boot rather than silently dropping the campaign.
            Err(e) if e.kind() == io::ErrorKind::InvalidData => Err(e),
            // A storage fault quarantines this campaign only; the rest
            // of the boot proceeds.
            Err(e) => {
                self.fail_campaign(idx, format!("recovering campaign {id}: {e}"));
                Ok(())
            }
        }
    }

    /// (Re)opens a campaign's journal and scheduler slot from its
    /// persisted state: the quarantine-recovery and boot-revive path.
    fn open_live(&mut self, idx: usize) -> io::Result<()> {
        let (id, name, spec, paused) = {
            let runtime = &self.campaigns[idx];
            (
                runtime.id,
                runtime.name.clone(),
                runtime.spec.clone(),
                runtime.state == CampaignState::Paused,
            )
        };
        let group = self.ensure_group(&spec).map_err(invalid_data)?;
        let journal = CampaignJournal::open(self.storage.clone(), self.registry.db_path(id))?;
        let session = Self::build_session(&spec, &name, &journal).map_err(invalid_data)?;
        let recorded: HashSet<Vec<u64>> = journal
            .db()
            .campaign(&name)
            .map(|r| r.genes.clone())
            .collect();
        let budget = (spec.step_budget > 0).then_some(spec.step_budget);
        let evaluations = session.eval_stats().evaluations;
        let generation = session.generation();
        let scheduler = &mut self.groups[group].scheduler;
        let sched = scheduler.add(session, budget);
        if paused {
            scheduler.set_paused(sched, true);
        }
        let runtime = &mut self.campaigns[idx];
        runtime.live = Some(Live {
            group,
            sched,
            journal,
            recorded,
            board_genes: HashSet::new(),
            budget,
        });
        if runtime.event_seq == 0 && evaluations > 0 {
            // Continue the pre-restart numbering: the generation-`g`
            // event carried seq `g + 1` (seq 1 was the seed pass), so a
            // `watch --from-seq` reconnect across the restart sees no
            // duplicate and no gap.
            runtime.event_seq = u64::from(generation) + 1;
        }
        Ok(())
    }

    /// Quarantines one campaign after a storage fault: releases its
    /// scheduler slot back to the surviving tenants, snapshots its
    /// progress, records the failure, and broadcasts [`Event::Failed`]
    /// (the bus stays open for the recovery's events). Idempotent on
    /// terminal campaigns.
    fn fail_campaign(&mut self, idx: usize, error: String) {
        let runtime = &mut self.campaigns[idx];
        if runtime.state.terminal() {
            return;
        }
        let attempts = runtime.failure.as_ref().map_or(0, |f| f.attempts);
        let live = runtime.live.take();
        let session = live.map(|l| self.groups[l.group].scheduler.remove(l.sched));
        let runtime = &mut self.campaigns[idx];
        let report = if let Some(session) = &session {
            report_from_session(
                runtime.id,
                &runtime.name,
                CampaignState::Failed,
                session,
                Some(error.clone()),
            )
        } else if let Some(prev) = runtime.failure.take() {
            let mut report = prev.report;
            report.error = Some(error.clone());
            report
        } else {
            StatusReport {
                campaign: runtime.id,
                name: runtime.name.clone(),
                state: CampaignState::Failed.as_str().to_string(),
                generation: 0,
                best: None,
                evaluations: 0,
                cache_hits: 0,
                incidents: 0,
                converged: false,
                error: Some(error.clone()),
            }
        };
        let at_seq = runtime.event_seq;
        runtime.state = CampaignState::Failed;
        runtime.failure = Some(Failure {
            error: error.clone(),
            at_seq,
            attempts,
            report,
        });
        publish(
            &runtime.bus,
            &mut runtime.recent,
            &mut runtime.event_seq,
            self.event_capacity,
            Event::Failed {
                campaign: runtime.id,
                error,
                at_seq,
                resume_backoff_ms: recovery_policy().backoff_ms(attempts + 1),
            },
        );
        // Best-effort: the same storage that faulted may refuse this too;
        // the in-memory quarantine is authoritative until it heals.
        let _ = self.persist_state(idx);
    }

    /// Retries recovery of a `failed` campaign from its retained
    /// journal: the `resume` path for quarantined tenants.
    fn recover(&mut self, idx: usize) -> Result<(), ServiceError> {
        let id = self.campaigns[idx].id;
        let attempts = {
            let runtime = &mut self.campaigns[idx];
            let attempts = runtime.failure.as_ref().map_or(0, |f| f.attempts) + 1;
            if let Some(failure) = runtime.failure.as_mut() {
                failure.attempts = attempts;
            }
            attempts
        };
        match self.open_live(idx) {
            Ok(()) => {
                let runtime = &mut self.campaigns[idx];
                runtime.state = CampaignState::Running;
                runtime.failure = None;
                if let Err(e) = self.persist_state(idx) {
                    self.fail_campaign(idx, format!("campaign {id} storage failure: {e}"));
                    return Err(ServiceError::Storage(format!(
                        "persisting campaign state: {e}"
                    )));
                }
                Ok(())
            }
            Err(e) => {
                let backoff = recovery_policy().backoff_ms(attempts);
                let message =
                    format!("recovery attempt {attempts} failed: {e}; retry in {backoff} ms");
                let runtime = &mut self.campaigns[idx];
                let at_seq = runtime.failure.as_ref().map_or(0, |f| f.at_seq);
                if let Some(failure) = runtime.failure.as_mut() {
                    failure.error = message.clone();
                    failure.report.error = Some(message.clone());
                }
                publish(
                    &runtime.bus,
                    &mut runtime.recent,
                    &mut runtime.event_seq,
                    self.event_capacity,
                    Event::Failed {
                        campaign: id,
                        error: message.clone(),
                        at_seq,
                        resume_backoff_ms: recovery_policy().backoff_ms(attempts + 1),
                    },
                );
                let _ = self.persist_state(idx);
                Err(ServiceError::Storage(message))
            }
        }
    }

    /// Advances every runnable campaign by one generation round and
    /// settles the results (journal, events, checkpoints). Returns
    /// `false` when nothing had schedulable work.
    ///
    /// Infallible by design: a journal or registry fault quarantines the
    /// affected campaign ([`Event::Failed`], `failed` state) and every
    /// other tenant keeps running.
    pub fn tick(&mut self) -> bool {
        let mut worked = false;
        for group in 0..self.groups.len() {
            let stepped: Vec<(usize, u64)> = self
                .campaigns
                .iter()
                .enumerate()
                .filter_map(|(i, r)| {
                    let live = r.live.as_ref()?;
                    (live.group == group)
                        .then(|| (i, self.groups[group].scheduler.steps_taken(live.sched)))
                })
                .collect();
            if !self.groups[group].scheduler.tick() {
                continue;
            }
            worked = true;
            for (idx, steps_before) in stepped {
                let Some(live) = self.campaigns[idx].live.as_ref() else {
                    // The slot vanished mid-round: an engine bookkeeping
                    // bug, but one tenant's — never a daemon panic.
                    let id = self.campaigns[idx].id;
                    self.fail_campaign(
                        idx,
                        ServiceError::StateMismatch(format!(
                            "campaign {id} stepped without live state"
                        ))
                        .to_string(),
                    );
                    continue;
                };
                if self.groups[group].scheduler.steps_taken(live.sched) > steps_before {
                    if let Err(e) = self.settle(idx) {
                        let id = self.campaigns[idx].id;
                        self.fail_campaign(idx, format!("campaign {id} storage failure: {e}"));
                    }
                }
            }
        }
        worked
    }

    /// Runs [`tick`](ServiceEngine::tick) until no campaign has
    /// schedulable work left.
    pub fn run_until_idle(&mut self) {
        while self.tick() {}
    }

    /// Journals one stepped campaign's new results, publishes its
    /// progress event, and checkpoints (or completes) it — the per-step
    /// half of `run_journaled`'s loop, per tenant.
    ///
    /// On error the campaign's scheduler slot is still intact; the
    /// caller ([`tick`](Self::tick)) quarantines it.
    fn settle(&mut self, idx: usize) -> io::Result<()> {
        let runtime = &mut self.campaigns[idx];
        let Some(live) = runtime.live.as_mut() else {
            return Ok(());
        };
        let group = &mut self.groups[live.group];
        let session = group.scheduler.session_mut(live.sched);
        for (genome, value) in session.take_newly_evaluated() {
            let record = make_record(&runtime.name, &genome, value);
            if live.recorded.insert(record.genes.clone()) {
                live.journal.append_record(record)?;
            }
        }
        let incidents = session.take_new_incidents();
        for incident in &incidents {
            live.journal
                .append_incident(&runtime.name, incident.clone())?;
        }
        let board = session.leaderboard();
        let delta: Vec<LeaderboardEntry> = board
            .iter()
            .filter(|(g, _)| !live.board_genes.contains(&g.to_words()))
            .map(|(g, f)| entry(g, *f))
            .collect();
        for (g, _) in &board {
            live.board_genes.insert(g.to_words());
        }
        let generation = session.generation();
        publish(
            &runtime.bus,
            &mut runtime.recent,
            &mut runtime.event_seq,
            self.event_capacity,
            Event::Generation {
                campaign: runtime.id,
                generation,
                best: board.first().map(|(g, f)| entry(g, *f)),
                leaderboard_delta: delta,
                stats: session.eval_stats().clone(),
                incidents,
            },
        );
        if session.done() {
            let report = report_from_session(
                runtime.id,
                &runtime.name,
                CampaignState::Done,
                session,
                None,
            );
            let leaderboard: Vec<LeaderboardEntry> =
                board.iter().map(|(g, f)| entry(g, *f)).collect();
            // Failure-ordering: finish the journal and persist the result
            // while the scheduler slot is still held, so a fault here
            // leaves a quarantinable live campaign (recovery re-runs a
            // finished journal idempotently).
            live.journal.finish()?;
            self.registry.write_result(
                runtime.id,
                &StoredResult {
                    report: report.clone(),
                    leaderboard: leaderboard.clone(),
                },
            )?;
            let _ = group.scheduler.remove(live.sched);
            runtime.live = None;
            runtime.state = CampaignState::Done;
            publish(
                &runtime.bus,
                &mut runtime.recent,
                &mut runtime.event_seq,
                self.event_capacity,
                Event::Completed {
                    campaign: runtime.id,
                    generations: generation,
                    converged: report.converged,
                    leaderboard,
                },
            );
            runtime.bus.close();
            runtime.report = Some(report);
            self.persist_state(idx)?;
        } else {
            let state = session.checkpoint().to_json().map_err(io::Error::other)?;
            live.journal.append_checkpoint(&runtime.name, state)?;
            if live
                .budget
                .is_some_and(|b| group.scheduler.steps_taken(live.sched) >= b)
                && runtime.state == CampaignState::Running
            {
                runtime.state = CampaignState::BudgetPaused;
                self.persist_state(idx)?;
            }
        }
        Ok(())
    }

    /// A point-in-time progress report for one campaign.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownCampaign`] for an unknown id.
    pub fn status(&self, id: u64) -> Result<StatusReport, ServiceError> {
        let idx = self.runtime(id)?;
        let runtime = &self.campaigns[idx];
        if let Some(report) = &runtime.report {
            return Ok(report.clone());
        }
        if let Some(failure) = &runtime.failure {
            return Ok(failure.report.clone());
        }
        let Some(live) = runtime.live.as_ref() else {
            // A terminal campaign whose result file never landed (e.g. a
            // crash between journal completion and the result write).
            return Ok(StatusReport {
                campaign: runtime.id,
                name: runtime.name.clone(),
                state: runtime.state.as_str().to_string(),
                generation: 0,
                best: None,
                evaluations: 0,
                cache_hits: 0,
                incidents: 0,
                converged: false,
                error: None,
            });
        };
        let session = self.groups[live.group].scheduler.session(live.sched);
        Ok(report_from_session(
            runtime.id,
            &runtime.name,
            runtime.state,
            session,
            None,
        ))
    }

    /// Progress reports for every campaign ever submitted, in id order.
    pub fn list(&self) -> Vec<StatusReport> {
        let mut ids: Vec<u64> = self.campaigns.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.into_iter()
            .filter_map(|id| self.status(id).ok())
            .collect()
    }

    /// Pauses or resumes a campaign. Resuming a budget-paused campaign
    /// grants it a fresh stint of `step_budget` generations; resuming a
    /// `failed` campaign retries its quarantine recovery from the
    /// retained journal.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownCampaign`] for an unknown id,
    /// [`ServiceError::Terminal`] for a terminal campaign (or pausing a
    /// failed one), [`ServiceError::Storage`] when persistence — or a
    /// failed campaign's recovery — fails.
    pub fn set_paused(&mut self, id: u64, paused: bool) -> Result<(), ServiceError> {
        let idx = self.runtime(id)?;
        if self.campaigns[idx].state == CampaignState::Failed {
            return if paused {
                Err(ServiceError::Terminal {
                    campaign: id,
                    state: CampaignState::Failed.as_str().to_string(),
                })
            } else {
                self.recover(idx)
            };
        }
        let runtime = &mut self.campaigns[idx];
        let Some(live) = runtime.live.as_mut() else {
            return Err(ServiceError::Terminal {
                campaign: id,
                state: runtime.state.as_str().to_string(),
            });
        };
        let scheduler = &mut self.groups[live.group].scheduler;
        scheduler.set_paused(live.sched, paused);
        if paused {
            runtime.state = CampaignState::Paused;
        } else {
            let taken = scheduler.steps_taken(live.sched);
            if live.budget.is_some_and(|b| taken >= b) {
                let next = taken + runtime.spec.step_budget.max(1);
                live.budget = Some(next);
                scheduler.set_step_budget(live.sched, Some(next));
            }
            runtime.state = CampaignState::Running;
        }
        if let Err(e) = self.persist_state(idx) {
            self.fail_campaign(idx, format!("campaign {id} storage failure: {e}"));
            return Err(ServiceError::Storage(format!(
                "persisting campaign state: {e}"
            )));
        }
        Ok(())
    }

    /// Cancels a campaign: its session is discarded, its journal (with
    /// the latest checkpoint) is retained on disk, and its event bus
    /// closes after a [`Event::Cancelled`] notification.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownCampaign`] for an unknown id,
    /// [`ServiceError::Terminal`] for a non-live campaign,
    /// [`ServiceError::Storage`] when persisting the result fails (the
    /// campaign is then quarantined, not cancelled).
    pub fn cancel(&mut self, id: u64) -> Result<(), ServiceError> {
        let idx = self.runtime(id)?;
        let runtime = &self.campaigns[idx];
        let Some(live) = runtime.live.as_ref() else {
            return Err(ServiceError::Terminal {
                campaign: id,
                state: runtime.state.as_str().to_string(),
            });
        };
        let (group, sched) = (live.group, live.sched);
        let session = self.groups[group].scheduler.session(sched);
        let report =
            report_from_session(id, &runtime.name, CampaignState::Cancelled, session, None);
        let leaderboard: Vec<LeaderboardEntry> = session
            .leaderboard()
            .iter()
            .map(|(g, f)| entry(g, *f))
            .collect();
        // Persist the result before committing the cancel, so a storage
        // fault quarantines a still-recoverable campaign.
        if let Err(e) = self.registry.write_result(
            id,
            &StoredResult {
                report: report.clone(),
                leaderboard,
            },
        ) {
            self.fail_campaign(idx, format!("campaign {id} storage failure: {e}"));
            return Err(ServiceError::Storage(format!(
                "persisting campaign result: {e}"
            )));
        }
        let runtime = &mut self.campaigns[idx];
        runtime.live = None;
        let _ = self.groups[group].scheduler.remove(sched);
        runtime.state = CampaignState::Cancelled;
        runtime.report = Some(report);
        publish(
            &runtime.bus,
            &mut runtime.recent,
            &mut runtime.event_seq,
            self.event_capacity,
            Event::Cancelled { campaign: id },
        );
        runtime.bus.close();
        self.persist_state(idx)
            .map_err(|e| ServiceError::Storage(format!("persisting campaign state: {e}")))
    }

    /// Subscribes to a campaign's event stream from `from_seq` onward:
    /// returns the retained backlog (every ring event with
    /// `seq >= from_seq`) plus a live subscriber for what follows.
    /// `from_seq` 0 or 1 means "everything retained". If events older
    /// than the ring were requested, the backlog is prefixed with a
    /// seq-0 [`Event::Lagged`] counting the unrecoverable gap.
    ///
    /// Watching a terminal campaign yields its retained tail and a
    /// subscriber that immediately reports closure.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownCampaign`] for an unknown id.
    pub fn watch(
        &self,
        id: u64,
        from_seq: u64,
    ) -> Result<(Vec<SeqEvent>, Subscriber<SeqEvent>), ServiceError> {
        let idx = self.runtime(id)?;
        let runtime = &self.campaigns[idx];
        let from = from_seq.max(1);
        let first_retained = runtime
            .recent
            .front()
            .map_or(runtime.event_seq + 1, |e| e.seq);
        let mut backlog = Vec::new();
        if from < first_retained {
            backlog.push(SeqEvent {
                seq: 0,
                event: Event::Lagged {
                    missed: first_retained - from,
                },
            });
        }
        backlog.extend(runtime.recent.iter().filter(|e| e.seq >= from).cloned());
        Ok((backlog, runtime.bus.subscribe()))
    }
}

/// Derives the per-campaign journal paths for
/// `search-word64 --campaigns N --db FILE`: campaign `i` journals into
/// `{stem}-c{i}{ext}` next to `FILE`.
///
/// # Errors
///
/// Returns the typed message when `db` has no file name, or when the
/// derived set collides (duplicates, or a derived path equal to `db`
/// itself) — each campaign must own its journal exclusively.
pub fn campaign_db_paths(db: &str, campaigns: usize) -> Result<Vec<PathBuf>, String> {
    let base = Path::new(db);
    let Some(file) = base.file_name().and_then(|f| f.to_str()) else {
        return Err(format!("--db: `{db}` has no file name"));
    };
    let (stem, ext) = match file.rfind('.') {
        Some(dot) if dot > 0 => (&file[..dot], &file[dot..]),
        _ => (file, ""),
    };
    let mut paths = Vec::with_capacity(campaigns);
    let mut seen: HashSet<PathBuf> = HashSet::new();
    for i in 0..campaigns {
        let path = base.with_file_name(format!("{stem}-c{i}{ext}"));
        if path == base || !seen.insert(path.clone()) {
            return Err(format!(
                "--db: derived journal path `{}` collides; every campaign needs its own journal",
                path.display()
            ));
        }
        paths.push(path);
    }
    Ok(paths)
}

/// Runs `paths.len()` independent 64-bit data-pattern searches
/// concurrently over one persistent pool — like
/// [`search_word64_concurrent`](DStress::search_word64_concurrent) — with
/// every campaign write-ahead journaled into **its own** database file,
/// so an interrupted batch resumes bit-identically per campaign. Campaign
/// `i` is named `{base}-c{i}` and draws the same seed its solo equivalent
/// would; a campaign whose journal already finished is re-run
/// idempotently (same records, deduplicated).
///
/// # Errors
///
/// Propagates evaluator construction and journal I/O failures.
///
/// # Panics
///
/// Panics if `paths` is empty or `workers` is zero.
#[allow(clippy::too_many_arguments)] // campaign knobs mirror the solo entry point
pub fn run_word64_campaigns_journaled(
    scale: ExperimentScale,
    framework_seed: u64,
    workers: usize,
    supervision: SupervisionPolicy,
    temp_c: f64,
    metric: Metric,
    minimize: bool,
    paths: &[PathBuf],
) -> Result<Vec<BitCampaign>, DStressError> {
    assert!(!paths.is_empty(), "at least one campaign is required");
    let base = DStress::word64_campaign_name(temp_c, &metric, minimize);
    let codec = word64_codec();
    let bits = codec.genome_bits();
    let mut config = scale.ga;
    config.minimize = minimize;
    let dstress = DStress::new(scale, framework_seed);
    let mut fitness = ParallelBitFitness {
        evaluator: dstress.evaluator(&EnvKind::Word64, temp_c, metric)?,
        codec,
    };
    let mut scheduler = CampaignScheduler::new(EvalPool::new(&fitness, workers));
    struct Slot {
        name: String,
        journal: CampaignJournal<DiskStorage>,
        recorded: HashSet<Vec<u64>>,
        sched: usize,
        result: Option<dstress_ga::SearchResult<BitGenome>>,
    }
    let mut slots: Vec<Slot> = Vec::with_capacity(paths.len());
    for (i, path) in paths.iter().enumerate() {
        let name = format!("{base}-c{i}");
        let mut journal = CampaignJournal::open(DiskStorage::new(), path)?;
        let mut session = match journal.checkpoint() {
            Some(cp) if cp.campaign == name => SearchSession::resume(
                EngineState::<BitGenome>::from_json(&cp.state).map_err(invalid_data)?,
            ),
            _ => {
                let seed = DStress::campaign_seed(framework_seed, i as u64 + 1);
                SearchSession::start(config, seed, |rng| {
                    Seeding::Random.initial_genome(rng, bits)
                })
            }
        };
        session.set_supervision(supervision);
        let recorded: HashSet<Vec<u64>> = journal
            .db()
            .campaign(&name)
            .map(|r| r.genes.clone())
            .collect();
        let state = session.checkpoint().to_json().map_err(io::Error::other)?;
        journal.append_checkpoint(&name, state)?;
        let sched = scheduler.add(session, None);
        slots.push(Slot {
            name,
            journal,
            recorded,
            sched,
            result: None,
        });
    }
    while scheduler.tick() {
        for slot in slots.iter_mut().filter(|s| s.result.is_none()) {
            let session = scheduler.session_mut(slot.sched);
            for (genome, value) in session.take_newly_evaluated() {
                let record = make_record(&slot.name, &genome, value);
                if slot.recorded.insert(record.genes.clone()) {
                    slot.journal.append_record(record)?;
                }
            }
            for incident in session.take_new_incidents() {
                slot.journal.append_incident(&slot.name, incident)?;
            }
            if session.done() {
                let session = scheduler.remove(slot.sched);
                slot.journal.finish()?;
                slot.result = Some(session.finish());
            } else {
                let state = session.checkpoint().to_json().map_err(io::Error::other)?;
                slot.journal.append_checkpoint(&slot.name, state)?;
            }
        }
    }
    let (_, replicas) = scheduler.finish();
    for replica in replicas {
        fitness.absorb(replica);
    }
    let compile_hits = fitness.evaluator.compile_hits;
    let failed = fitness.evaluator.failed_evaluations;
    let mut campaigns = Vec::with_capacity(slots.len());
    for slot in slots {
        let mut result = slot.result.ok_or_else(|| {
            DStressError::from(ServiceError::StateMismatch(format!(
                "the scheduler never drained campaign `{}`",
                slot.name
            )))
        })?;
        result.eval_stats.compile_hits = compile_hits;
        campaigns.push(BitCampaign {
            name: slot.name,
            result,
            env: EnvKind::Word64,
            failed_evaluations: failed,
        });
    }
    Ok(campaigns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::broadcast::Recv;
    use dstress_ga::journal::{MemStorage, SharedStorage};
    use std::time::Duration;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dstress-engine-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn quick_spec(seed: u64) -> CampaignSpec {
        CampaignSpec {
            scale: "quick".into(),
            seed,
            ..CampaignSpec::default()
        }
    }

    /// A solo journaled run with the given framework seed, returning the
    /// final snapshot bytes.
    fn solo_snapshot(dir: &Path, seed: u64) -> Vec<u8> {
        let path = dir.join(format!("solo-{seed}.db.json"));
        let mut journal = CampaignJournal::open(DiskStorage::new(), &path).unwrap();
        let mut dstress = DStress::new(ExperimentScale::quick(), seed);
        dstress
            .search_word64_journaled(&mut journal, 60.0, Metric::CeAverage, false)
            .unwrap();
        std::fs::read(&path).unwrap()
    }

    /// A solo journaled run against an in-memory storage, returning the
    /// final snapshot bytes.
    fn solo_mem_snapshot(seed: u64) -> Vec<u8> {
        let path = PathBuf::from(format!("solo-{seed}.db.json"));
        let mut journal = CampaignJournal::open(MemStorage::new(), &path).unwrap();
        let mut dstress = DStress::new(ExperimentScale::quick(), seed);
        dstress
            .search_word64_journaled(&mut journal, 60.0, Metric::CeAverage, false)
            .unwrap();
        journal.into_storage().contents(&path).unwrap().to_vec()
    }

    #[test]
    fn concurrent_tenants_match_solo_journaled_runs_byte_for_byte() {
        let dir = temp_dir("tenants");
        let mut engine = ServiceEngine::new(dir.join("daemon"), 2, 64).unwrap();
        let (a, name_a) = engine.submit(quick_spec(41)).unwrap();
        let (b, _) = engine.submit(quick_spec(42)).unwrap();
        assert_eq!(name_a, "word64-ce-max-60C");
        engine.run_until_idle();
        for id in [a, b] {
            let report = engine.status(id).unwrap();
            assert_eq!(report.state, "done");
            assert!(report.generation > 0);
        }
        let daemon_a = std::fs::read(engine.dir().join(format!("c{a}.db.json"))).unwrap();
        let daemon_b = std::fs::read(engine.dir().join(format!("c{b}.db.json"))).unwrap();
        assert_eq!(daemon_a, solo_snapshot(&dir, 41), "campaign A diverged");
        assert_eq!(daemon_b, solo_snapshot(&dir, 42), "campaign B diverged");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_restart_mid_campaign_resumes_bit_identically() {
        let dir = temp_dir("restart");
        let id = {
            let mut engine = ServiceEngine::new(dir.join("daemon"), 2, 64).unwrap();
            let (id, _) = engine.submit(quick_spec(7)).unwrap();
            for _ in 0..3 {
                engine.tick();
            }
            id
            // Dropping the engine models a daemon kill at tick
            // granularity: the journal holds the post-step checkpoint.
        };
        let mut engine = ServiceEngine::new(dir.join("daemon"), 1, 64).unwrap();
        engine.run_until_idle();
        assert_eq!(engine.status(id).unwrap().state, "done");
        let resumed = std::fs::read(engine.dir().join(format!("c{id}.db.json"))).unwrap();
        assert_eq!(resumed, solo_snapshot(&dir, 7), "restart diverged");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pause_cancel_and_watch_lifecycles() {
        let dir = temp_dir("lifecycle");
        let mut engine = ServiceEngine::new(dir.join("daemon"), 1, 64).unwrap();
        let (id, _) = engine.submit(quick_spec(9)).unwrap();
        let (backlog, sub) = engine.watch(id, 0).unwrap();
        assert!(backlog.is_empty(), "nothing published yet");
        engine.tick();
        match sub.recv_timeout(Duration::from_secs(1)) {
            Recv::Event(SeqEvent {
                seq,
                event:
                    Event::Generation {
                        campaign,
                        generation,
                        ..
                    },
            }) => {
                assert_eq!(campaign, id);
                assert_eq!(seq, 1, "sequence numbers start at 1");
                // The first scheduler step evaluates the seed population;
                // generations count from the first evolved one.
                assert_eq!(generation, 0);
            }
            other => panic!("expected a generation event, got {other:?}"),
        }
        engine.set_paused(id, true).unwrap();
        assert!(engine.idle(), "a paused campaign contributes no work");
        assert_eq!(engine.status(id).unwrap().state, "paused");
        engine.set_paused(id, false).unwrap();
        engine.tick();
        engine.cancel(id).unwrap();
        let report = engine.status(id).unwrap();
        assert_eq!(report.state, "cancelled");
        assert_eq!(report.generation, 1);
        // The stream drains its queued events, reports the cancellation,
        // then closes.
        let mut saw_cancelled = false;
        loop {
            match sub.recv_timeout(Duration::from_secs(1)) {
                Recv::Event(SeqEvent {
                    event: Event::Cancelled { campaign },
                    ..
                }) => {
                    assert_eq!(campaign, id);
                    saw_cancelled = true;
                }
                Recv::Event(_) | Recv::Lagged(_) => {}
                Recv::Closed => break,
                Recv::Empty => panic!("stream stalled"),
            }
        }
        assert!(saw_cancelled);
        // Terminal operations are rejected with typed errors.
        assert!(engine
            .cancel(id)
            .unwrap_err()
            .to_string()
            .contains("cancelled"));
        assert!(engine.set_paused(id, true).is_err());
        assert_eq!(engine.status(999), Err(ServiceError::UnknownCampaign(999)));
        // The cancelled campaign survives a restart as cancelled.
        drop(engine);
        let engine = ServiceEngine::new(dir.join("daemon"), 1, 64).unwrap();
        assert_eq!(engine.status(id).unwrap().state, "cancelled");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_pause_then_resume_still_matches_the_solo_run() {
        let dir = temp_dir("budget");
        let mut engine = ServiceEngine::new(dir.join("daemon"), 1, 64).unwrap();
        let mut spec = quick_spec(11);
        spec.step_budget = 2;
        let (id, _) = engine.submit(spec).unwrap();
        engine.run_until_idle();
        let report = engine.status(id).unwrap();
        assert_eq!(report.state, "budget-paused");
        assert_eq!(
            report.generation, 1,
            "two steps = seed pass + one generation"
        );
        // Resume grants another stint; repeat until the search finishes.
        for _ in 0..32 {
            if engine.status(id).unwrap().state == "done" {
                break;
            }
            engine.set_paused(id, false).unwrap();
            engine.run_until_idle();
        }
        assert_eq!(engine.status(id).unwrap().state, "done");
        let bytes = std::fs::read(engine.dir().join(format!("c{id}.db.json"))).unwrap();
        assert_eq!(bytes, solo_snapshot(&dir, 11), "budget stints diverged");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_storage_fault_quarantines_one_tenant_and_spares_the_other() {
        let storage = SharedStorage::new(MemStorage::new());
        let mut engine =
            ServiceEngine::with_storage(storage.clone(), PathBuf::from("daemon"), 1, 64).unwrap();
        let (a, _) = engine.submit(quick_spec(41)).unwrap();
        let (b, _) = engine.submit(quick_spec(42)).unwrap();
        // Fail one mutating storage op a little into the run phase: one
        // tenant quarantines, the other must be untouched.
        storage.with(|s| s.fail_op(5));
        engine.run_until_idle();
        let reports = [engine.status(a).unwrap(), engine.status(b).unwrap()];
        let failed: Vec<_> = reports.iter().filter(|r| r.state == "failed").collect();
        let done: Vec<_> = reports.iter().filter(|r| r.state == "done").collect();
        assert_eq!(failed.len(), 1, "exactly one tenant hit the fault");
        assert_eq!(done.len(), 1, "the other tenant finished");
        let victim = failed[0].campaign;
        let survivor = done[0].campaign;
        assert!(
            failed[0].error.as_deref().unwrap_or("").contains("fault"),
            "the quarantine reports the injected fault: {:?}",
            failed[0].error
        );
        // The survivor's snapshot is byte-identical to a solo run.
        let survivor_seed = if survivor == a { 41 } else { 42 };
        let path = PathBuf::from(format!("daemon/c{survivor}.db.json"));
        let snapshot = storage.with(|s| s.contents(&path).unwrap().to_vec());
        assert_eq!(snapshot, solo_mem_snapshot(survivor_seed));
        // Pausing a failed campaign is rejected; resuming retries
        // recovery — and succeeds once the fault clears.
        assert!(engine.set_paused(victim, true).is_err());
        storage.with(|s| s.clear_faults());
        engine.set_paused(victim, false).unwrap();
        engine.run_until_idle();
        assert_eq!(engine.status(victim).unwrap().state, "done");
        let victim_seed = if victim == a { 41 } else { 42 };
        let path = PathBuf::from(format!("daemon/c{victim}.db.json"));
        let snapshot = storage.with(|s| s.contents(&path).unwrap().to_vec());
        assert_eq!(
            snapshot,
            solo_mem_snapshot(victim_seed),
            "recovery diverged from the solo run"
        );
    }

    #[test]
    fn watch_from_seq_replays_the_retained_suffix_and_flags_gaps() {
        let dir = temp_dir("fromseq");
        let mut engine = ServiceEngine::new(dir.join("daemon"), 1, 4).unwrap();
        let (id, _) = engine.submit(quick_spec(13)).unwrap();
        engine.run_until_idle();
        let report = engine.status(id).unwrap();
        assert_eq!(report.state, "done");
        let last_seq = u64::from(report.generation) + 2; // seed pass + Completed
                                                         // Reconnecting from within the ring replays exactly the suffix.
        let (backlog, _) = engine.watch(id, last_seq - 1).unwrap();
        assert_eq!(
            backlog.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![last_seq - 1, last_seq]
        );
        // Reconnecting from before the ring flags the unrecoverable gap
        // with a connection-local (seq 0) Lagged notice, then the ring.
        let (backlog, _) = engine.watch(id, 1).unwrap();
        assert_eq!(backlog[0].seq, 0);
        let Event::Lagged { missed } = backlog[0].event else {
            panic!("expected a Lagged prefix, got {:?}", backlog[0].event);
        };
        assert_eq!(missed, last_seq - 4, "events 1..=N-4 fell out of the ring");
        let seqs: Vec<u64> = backlog[1..].iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (last_seq - 3..=last_seq).collect::<Vec<_>>());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn campaign_db_paths_derive_and_reject() {
        let paths = campaign_db_paths("out/word64.json", 3).unwrap();
        assert_eq!(
            paths,
            vec![
                PathBuf::from("out/word64-c0.json"),
                PathBuf::from("out/word64-c1.json"),
                PathBuf::from("out/word64-c2.json"),
            ]
        );
        // No extension: the suffix still lands before the end.
        assert_eq!(
            campaign_db_paths("db", 2).unwrap(),
            vec![PathBuf::from("db-c0"), PathBuf::from("db-c1")]
        );
        // A hidden file keeps its leading dot as part of the stem.
        assert_eq!(
            campaign_db_paths(".journal", 1).unwrap(),
            vec![PathBuf::from(".journal-c0")]
        );
        assert!(campaign_db_paths("..", 1).is_err());
    }

    #[test]
    fn journaled_multi_campaign_batch_matches_the_concurrent_path() {
        let dir = temp_dir("multi");
        std::fs::create_dir_all(&dir).unwrap();
        let paths = campaign_db_paths(dir.join("word64.json").to_str().unwrap(), 2).unwrap();
        let scale = ExperimentScale::quick();
        let journaled = run_word64_campaigns_journaled(
            scale,
            42,
            2,
            SupervisionPolicy::default(),
            60.0,
            Metric::CeAverage,
            false,
            &paths,
        )
        .unwrap();
        let mut dstress = DStress::new(ExperimentScale::quick(), 42);
        let concurrent = dstress
            .search_word64_concurrent(2, 60.0, Metric::CeAverage, false)
            .unwrap();
        for (j, c) in journaled.iter().zip(&concurrent) {
            assert_eq!(j.name, c.name);
            assert_eq!(j.result.best, c.result.best);
            assert_eq!(j.result.best_fitness, c.result.best_fitness);
            assert_eq!(j.result.leaderboard, c.result.leaderboard);
        }
        // Re-running the finished batch is idempotent: the snapshots do
        // not change.
        let before: Vec<Vec<u8>> = paths.iter().map(|p| std::fs::read(p).unwrap()).collect();
        run_word64_campaigns_journaled(
            ExperimentScale::quick(),
            42,
            1,
            SupervisionPolicy::default(),
            60.0,
            Metric::CeAverage,
            false,
            &paths,
        )
        .unwrap();
        let after: Vec<Vec<u8>> = paths.iter().map(|p| std::fs::read(p).unwrap()).collect();
        assert_eq!(before, after);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
