//! The network-free service core: multi-tenant campaign execution.
//!
//! [`ServiceEngine`] owns every live campaign. Campaigns whose evaluation
//! substrate is identical (same scale, same temperature, same metric) are
//! grouped onto one [`CampaignScheduler`] over one persistent
//! [`EvalPool`], so concurrent tenants share worker threads and replica
//! caches; campaigns with different substrates get their own group. One
//! [`tick`](ServiceEngine::tick) advances every runnable campaign by
//! exactly one generation round and then settles each stepped campaign:
//! journal its new records and incidents, publish a progress event, and
//! append its post-step checkpoint (or finish the journal when done).
//!
//! The journaling protocol is the same as
//! [`run_journaled`](dstress_ga::run_journaled)'s — checkpoint, step,
//! records, incidents, checkpoint, … — so a daemon killed at any point
//! resumes every unfinished campaign **bit-identically** at the next
//! boot, and a finished campaign's journal snapshot is byte-for-byte the
//! snapshot a solo
//! [`search_word64_journaled`](crate::DStress::search_word64_journaled)
//! run with the same spec would have written.

use crate::error::DStressError;
use crate::evaluate::{Metric, ParallelBitFitness};
use crate::patterns::BitCodec;
use crate::scale::ExperimentScale;
use crate::search::{BitCampaign, DStress, EnvKind, Seeding};
use crate::service::broadcast::{EventBus, Subscriber};
use crate::service::protocol::{CampaignSpec, Event, LeaderboardEntry, StatusReport};
use crate::service::registry::{CampaignRegistry, StoredResult, StoredSpec};
use dstress_ga::journal::{CampaignJournal, DiskStorage};
use dstress_ga::{
    BitGenome, CampaignScheduler, EngineState, EvalPool, Genome, ParallelFitness, SearchSession,
    SupervisionPolicy, VirusRecord,
};
use std::collections::HashSet;
use std::io;
use std::path::{Path, PathBuf};

/// The word64 chromosome codec every service campaign uses.
fn word64_codec() -> BitCodec {
    BitCodec::Word64 {
        param: "PATTERN".into(),
    }
}

/// Resolves a spec's scale name (`""` defaults to `quick` — the service
/// is a long-running multiplexer, so the cheap scale is the safe default).
fn scale_named(name: &str) -> Result<ExperimentScale, String> {
    match name {
        "" | "quick" => Ok(ExperimentScale::quick()),
        "paper" => Ok(ExperimentScale::paper()),
        other => Err(format!("unknown scale `{other}` (quick|paper)")),
    }
}

fn spec_metric(spec: &CampaignSpec) -> Metric {
    if spec.ue {
        Metric::UeRuns
    } else {
        Metric::CeAverage
    }
}

fn entry(genome: &BitGenome, fitness: f64) -> LeaderboardEntry {
    LeaderboardEntry {
        genes: genome.to_words(),
        fitness,
    }
}

fn make_record(campaign: &str, genome: &BitGenome, value: f64) -> VirusRecord {
    VirusRecord {
        campaign: campaign.to_string(),
        genes: genome.to_words(),
        gene_len: genome.len(),
        fitness: value,
        ce: value.max(0.0) as u64,
        ue: 0,
        sequence: 0,
    }
}

fn invalid_data<E: std::fmt::Display>(e: E) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

/// Where a campaign is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CampaignState {
    /// Scheduled: contributes tasks to every tick.
    Running,
    /// Client-paused: keeps all state, contributes nothing.
    Paused,
    /// Exhausted its step budget: checkpointed, waiting for a resume.
    BudgetPaused,
    /// Finished (converged or out of generations).
    Done,
    /// Cancelled by a client; the journal is retained.
    Cancelled,
}

impl CampaignState {
    fn as_str(self) -> &'static str {
        match self {
            CampaignState::Running => "running",
            CampaignState::Paused => "paused",
            CampaignState::BudgetPaused => "budget-paused",
            CampaignState::Done => "done",
            CampaignState::Cancelled => "cancelled",
        }
    }

    fn terminal(self) -> bool {
        matches!(self, CampaignState::Done | CampaignState::Cancelled)
    }
}

/// The scheduler-side state of a live (non-terminal) campaign.
struct Live {
    group: usize,
    sched: usize,
    journal: CampaignJournal<DiskStorage>,
    /// Chromosomes already journaled — a resume's replay window must not
    /// re-append its repeats.
    recorded: HashSet<Vec<u64>>,
    /// Chromosomes already reported on the leaderboard, for event deltas.
    board_genes: HashSet<Vec<u64>>,
    /// The scheduler step budget currently in force (steps counted from
    /// this boot's `add`), mirroring the scheduler's own budget.
    budget: Option<u64>,
}

/// One campaign the engine knows about, live or terminal.
struct Runtime {
    id: u64,
    name: String,
    spec: CampaignSpec,
    state: CampaignState,
    live: Option<Live>,
    bus: EventBus<Event>,
    /// The terminal report, once the campaign is done or cancelled.
    report: Option<StatusReport>,
}

/// Campaigns sharing one evaluation substrate, fair-share scheduled over
/// one persistent pool.
struct Group {
    /// Substrate identity: scale name, temperature bits, UE metric flag.
    key: (String, u64, bool),
    scheduler: CampaignScheduler<BitGenome, ParallelBitFitness>,
}

/// The multi-tenant campaign engine behind `dstressd` (network-free; the
/// daemon front-end owns exactly one, on one thread).
pub struct ServiceEngine {
    registry: CampaignRegistry,
    groups: Vec<Group>,
    campaigns: Vec<Runtime>,
    workers: usize,
    event_capacity: usize,
}

impl std::fmt::Debug for ServiceEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceEngine")
            .field("dir", &self.registry.dir())
            .field("groups", &self.groups.len())
            .field("campaigns", &self.campaigns.len())
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl ServiceEngine {
    /// Boots the engine over a registry directory: scans it and resumes
    /// every unfinished campaign from its journal checkpoint,
    /// bit-identically. Previously paused campaigns come back paused.
    ///
    /// # Errors
    ///
    /// Propagates registry I/O failures; a recovered spec that no longer
    /// builds (unknown scale, unsettleable temperature, corrupt
    /// checkpoint) aborts the boot with [`io::ErrorKind::InvalidData`]
    /// rather than silently dropping the campaign.
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `event_capacity` is zero.
    pub fn new(dir: impl Into<PathBuf>, workers: usize, event_capacity: usize) -> io::Result<Self> {
        assert!(workers >= 1, "at least one evaluation worker is required");
        assert!(event_capacity >= 1, "subscribers buffer at least one event");
        let (registry, recovered) = CampaignRegistry::open(dir)?;
        let mut engine = ServiceEngine {
            registry,
            groups: Vec::new(),
            campaigns: Vec::new(),
            workers,
            event_capacity,
        };
        for campaign in recovered {
            engine.revive(campaign.id, campaign.stored)?;
        }
        Ok(engine)
    }

    /// The registry directory this engine persists into.
    pub fn dir(&self) -> &Path {
        self.registry.dir()
    }

    /// Whether no campaign currently has schedulable work.
    pub fn idle(&self) -> bool {
        self.groups.iter().all(|g| g.scheduler.idle())
    }

    fn runtime(&self, id: u64) -> Result<usize, String> {
        self.campaigns
            .iter()
            .position(|r| r.id == id)
            .ok_or_else(|| format!("no campaign {id}"))
    }

    fn persist_state(&self, idx: usize) -> io::Result<()> {
        let runtime = &self.campaigns[idx];
        self.registry.write_spec(
            runtime.id,
            &StoredSpec {
                spec: runtime.spec.clone(),
                name: runtime.name.clone(),
                state: runtime.state.as_str().to_string(),
            },
        )
    }

    fn ensure_group(&mut self, spec: &CampaignSpec) -> Result<usize, String> {
        let scale = scale_named(&spec.scale)?;
        let key = (
            scale.name.to_string(),
            spec.temperature().to_bits(),
            spec.ue,
        );
        if let Some(i) = self.groups.iter().position(|g| g.key == key) {
            return Ok(i);
        }
        let dstress = DStress::new(scale, 0);
        let fitness = ParallelBitFitness {
            evaluator: dstress
                .evaluator(&EnvKind::Word64, spec.temperature(), spec_metric(spec))
                .map_err(|e| e.to_string())?,
            codec: word64_codec(),
        };
        self.groups.push(Group {
            key,
            scheduler: CampaignScheduler::new(EvalPool::new(&fitness, self.workers)),
        });
        Ok(self.groups.len() - 1)
    }

    /// Builds the session for a campaign: resumed from its journal
    /// checkpoint when one matches the campaign name, fresh otherwise.
    fn build_session(
        spec: &CampaignSpec,
        name: &str,
        journal: &CampaignJournal<DiskStorage>,
    ) -> Result<SearchSession<BitGenome>, String> {
        let scale = scale_named(&spec.scale)?;
        let mut config = scale.ga;
        config.minimize = spec.minimize;
        match journal.checkpoint() {
            Some(cp) if cp.campaign == name => {
                let state =
                    EngineState::<BitGenome>::from_json(&cp.state).map_err(|e| e.to_string())?;
                Ok(SearchSession::resume(state))
            }
            _ => {
                let bits = word64_codec().genome_bits();
                // The engine seed of the first campaign a solo framework
                // with this seed would start — the determinism contract.
                let seed = DStress::campaign_seed(spec.framework_seed(), 1);
                Ok(SearchSession::start(config, seed, |rng| {
                    Seeding::Random.initial_genome(rng, bits)
                }))
            }
        }
    }

    /// Registers and schedules a campaign, returning its id and name.
    ///
    /// # Errors
    ///
    /// Returns the typed message for an invalid spec (unknown scale, a
    /// temperature the thermal rig cannot settle) or a persistence
    /// failure; nothing is scheduled on error.
    pub fn submit(&mut self, spec: CampaignSpec) -> Result<(u64, String), String> {
        let group = self.ensure_group(&spec)?;
        let name =
            DStress::word64_campaign_name(spec.temperature(), &spec_metric(&spec), spec.minimize);
        let id = self.registry.alloc_id();
        let mut journal = CampaignJournal::open(DiskStorage::new(), self.registry.db_path(id))
            .map_err(|e| format!("opening campaign journal: {e}"))?;
        let session = Self::build_session(&spec, &name, &journal)?;
        let state = session.checkpoint().to_json().map_err(|e| e.to_string())?;
        journal
            .append_checkpoint(&name, state)
            .map_err(|e| format!("journaling: {e}"))?;
        let budget = (spec.step_budget > 0).then_some(spec.step_budget);
        let sched = self.groups[group].scheduler.add(session, budget);
        self.campaigns.push(Runtime {
            id,
            name: name.clone(),
            spec,
            state: CampaignState::Running,
            live: Some(Live {
                group,
                sched,
                journal,
                recorded: HashSet::new(),
                board_genes: HashSet::new(),
                budget,
            }),
            bus: EventBus::new(self.event_capacity),
            report: None,
        });
        self.persist_state(self.campaigns.len() - 1)
            .map_err(|e| format!("persisting campaign spec: {e}"))?;
        Ok((id, name))
    }

    /// Rebuilds one campaign recovered by the boot scan.
    fn revive(&mut self, id: u64, stored: StoredSpec) -> io::Result<()> {
        let state = match stored.state.as_str() {
            "done" => CampaignState::Done,
            "cancelled" => CampaignState::Cancelled,
            "paused" | "budget-paused" => CampaignState::Paused,
            _ => CampaignState::Running,
        };
        let bus = EventBus::new(self.event_capacity);
        if state.terminal() {
            let report = self.registry.read_result(id)?.map(|r| r.report);
            bus.close();
            self.campaigns.push(Runtime {
                id,
                name: stored.name,
                spec: stored.spec,
                state,
                live: None,
                bus,
                report,
            });
            return Ok(());
        }
        let group = self.ensure_group(&stored.spec).map_err(invalid_data)?;
        let journal = CampaignJournal::open(DiskStorage::new(), self.registry.db_path(id))?;
        let session =
            Self::build_session(&stored.spec, &stored.name, &journal).map_err(invalid_data)?;
        let recorded: HashSet<Vec<u64>> = journal
            .db()
            .campaign(&stored.name)
            .map(|r| r.genes.clone())
            .collect();
        let budget = (stored.spec.step_budget > 0).then_some(stored.spec.step_budget);
        let scheduler = &mut self.groups[group].scheduler;
        let sched = scheduler.add(session, budget);
        if state == CampaignState::Paused {
            scheduler.set_paused(sched, true);
        }
        self.campaigns.push(Runtime {
            id,
            name: stored.name,
            spec: stored.spec,
            state,
            live: Some(Live {
                group,
                sched,
                journal,
                recorded,
                board_genes: HashSet::new(),
                budget,
            }),
            bus,
            report: None,
        });
        Ok(())
    }

    /// Advances every runnable campaign by one generation round and
    /// settles the results (journal, events, checkpoints). Returns `false`
    /// when nothing had schedulable work.
    ///
    /// # Errors
    ///
    /// Propagates journal and registry I/O failures.
    pub fn tick(&mut self) -> io::Result<bool> {
        let mut worked = false;
        for group in 0..self.groups.len() {
            let stepped: Vec<(usize, u64)> = self
                .campaigns
                .iter()
                .enumerate()
                .filter_map(|(i, r)| {
                    let live = r.live.as_ref()?;
                    (live.group == group)
                        .then(|| (i, self.groups[group].scheduler.steps_taken(live.sched)))
                })
                .collect();
            if !self.groups[group].scheduler.tick() {
                continue;
            }
            worked = true;
            for (idx, steps_before) in stepped {
                let live = self.campaigns[idx].live.as_ref().expect("live campaign");
                if self.groups[group].scheduler.steps_taken(live.sched) > steps_before {
                    self.settle(idx)?;
                }
            }
        }
        Ok(worked)
    }

    /// Runs [`tick`](ServiceEngine::tick) until no campaign has
    /// schedulable work left.
    ///
    /// # Errors
    ///
    /// Propagates journal and registry I/O failures.
    pub fn run_until_idle(&mut self) -> io::Result<()> {
        while self.tick()? {}
        Ok(())
    }

    /// Journals one stepped campaign's new results, publishes its
    /// progress event, and checkpoints (or completes) it — the per-step
    /// half of `run_journaled`'s loop, per tenant.
    fn settle(&mut self, idx: usize) -> io::Result<()> {
        let runtime = &mut self.campaigns[idx];
        let Some(live) = runtime.live.as_mut() else {
            return Ok(());
        };
        let group = &mut self.groups[live.group];
        let session = group.scheduler.session_mut(live.sched);
        for (genome, value) in session.take_newly_evaluated() {
            let record = make_record(&runtime.name, &genome, value);
            if live.recorded.insert(record.genes.clone()) {
                live.journal.append_record(record)?;
            }
        }
        let incidents = session.take_new_incidents();
        for incident in &incidents {
            live.journal
                .append_incident(&runtime.name, incident.clone())?;
        }
        let board = session.leaderboard();
        let delta: Vec<LeaderboardEntry> = board
            .iter()
            .filter(|(g, _)| !live.board_genes.contains(&g.to_words()))
            .map(|(g, f)| entry(g, *f))
            .collect();
        for (g, _) in &board {
            live.board_genes.insert(g.to_words());
        }
        let generation = session.generation();
        runtime.bus.publish(&Event::Generation {
            campaign: runtime.id,
            generation,
            best: board.first().map(|(g, f)| entry(g, *f)),
            leaderboard_delta: delta,
            stats: session.eval_stats().clone(),
            incidents,
        });
        if session.done() {
            let report = StatusReport {
                campaign: runtime.id,
                name: runtime.name.clone(),
                state: CampaignState::Done.as_str().to_string(),
                generation,
                best: board.first().map(|(g, f)| entry(g, *f)),
                evaluations: session.eval_stats().evaluations,
                cache_hits: session.eval_stats().cache_hits,
                incidents: session.incidents().len() as u64,
                converged: session.converged(),
            };
            let leaderboard: Vec<LeaderboardEntry> =
                board.iter().map(|(g, f)| entry(g, *f)).collect();
            let _ = group.scheduler.remove(live.sched);
            live.journal.finish()?;
            runtime.live = None;
            runtime.state = CampaignState::Done;
            self.registry.write_result(
                runtime.id,
                &StoredResult {
                    report: report.clone(),
                    leaderboard: leaderboard.clone(),
                },
            )?;
            runtime.bus.publish(&Event::Completed {
                campaign: runtime.id,
                generations: generation,
                converged: report.converged,
                leaderboard,
            });
            runtime.bus.close();
            runtime.report = Some(report);
            self.persist_state(idx)?;
        } else {
            let state = session.checkpoint().to_json().map_err(io::Error::other)?;
            live.journal.append_checkpoint(&runtime.name, state)?;
            if live
                .budget
                .is_some_and(|b| group.scheduler.steps_taken(live.sched) >= b)
                && runtime.state == CampaignState::Running
            {
                runtime.state = CampaignState::BudgetPaused;
                self.persist_state(idx)?;
            }
        }
        Ok(())
    }

    /// A point-in-time progress report for one campaign.
    ///
    /// # Errors
    ///
    /// Returns the typed message for an unknown campaign id.
    pub fn status(&self, id: u64) -> Result<StatusReport, String> {
        let idx = self.runtime(id)?;
        let runtime = &self.campaigns[idx];
        if let Some(report) = &runtime.report {
            return Ok(report.clone());
        }
        let Some(live) = runtime.live.as_ref() else {
            // A terminal campaign whose result file never landed (e.g. a
            // crash between journal completion and the result write).
            return Ok(StatusReport {
                campaign: runtime.id,
                name: runtime.name.clone(),
                state: runtime.state.as_str().to_string(),
                generation: 0,
                best: None,
                evaluations: 0,
                cache_hits: 0,
                incidents: 0,
                converged: false,
            });
        };
        let session = self.groups[live.group].scheduler.session(live.sched);
        let board = session.leaderboard();
        Ok(StatusReport {
            campaign: runtime.id,
            name: runtime.name.clone(),
            state: runtime.state.as_str().to_string(),
            generation: session.generation(),
            best: board.first().map(|(g, f)| entry(g, *f)),
            evaluations: session.eval_stats().evaluations,
            cache_hits: session.eval_stats().cache_hits,
            incidents: session.incidents().len() as u64,
            converged: session.converged(),
        })
    }

    /// Progress reports for every campaign ever submitted, in id order.
    pub fn list(&self) -> Vec<StatusReport> {
        let mut ids: Vec<u64> = self.campaigns.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.into_iter()
            .filter_map(|id| self.status(id).ok())
            .collect()
    }

    /// Pauses or resumes a campaign. Resuming a budget-paused campaign
    /// grants it a fresh stint of `step_budget` generations.
    ///
    /// # Errors
    ///
    /// Returns the typed message for an unknown id or a terminal
    /// campaign.
    pub fn set_paused(&mut self, id: u64, paused: bool) -> Result<(), String> {
        let idx = self.runtime(id)?;
        let runtime = &mut self.campaigns[idx];
        let Some(live) = runtime.live.as_mut() else {
            return Err(format!("campaign {id} is {}", runtime.state.as_str()));
        };
        let scheduler = &mut self.groups[live.group].scheduler;
        scheduler.set_paused(live.sched, paused);
        if paused {
            runtime.state = CampaignState::Paused;
        } else {
            let taken = scheduler.steps_taken(live.sched);
            if live.budget.is_some_and(|b| taken >= b) {
                let next = taken + runtime.spec.step_budget.max(1);
                live.budget = Some(next);
                scheduler.set_step_budget(live.sched, Some(next));
            }
            runtime.state = CampaignState::Running;
        }
        self.persist_state(idx)
            .map_err(|e| format!("persisting campaign state: {e}"))
    }

    /// Cancels a campaign: its session is discarded, its journal (with
    /// the latest checkpoint) is retained on disk, and its event bus
    /// closes after a [`Event::Cancelled`] notification.
    ///
    /// # Errors
    ///
    /// Returns the typed message for an unknown id or a terminal
    /// campaign.
    pub fn cancel(&mut self, id: u64) -> Result<(), String> {
        let idx = self.runtime(id)?;
        let runtime = &mut self.campaigns[idx];
        let Some(live) = runtime.live.take() else {
            return Err(format!(
                "campaign {id} is already {}",
                runtime.state.as_str()
            ));
        };
        let session = self.groups[live.group].scheduler.remove(live.sched);
        let board = session.leaderboard();
        let report = StatusReport {
            campaign: runtime.id,
            name: runtime.name.clone(),
            state: CampaignState::Cancelled.as_str().to_string(),
            generation: session.generation(),
            best: board.first().map(|(g, f)| entry(g, *f)),
            evaluations: session.eval_stats().evaluations,
            cache_hits: session.eval_stats().cache_hits,
            incidents: session.incidents().len() as u64,
            converged: session.converged(),
        };
        let leaderboard: Vec<LeaderboardEntry> = board.iter().map(|(g, f)| entry(g, *f)).collect();
        runtime.state = CampaignState::Cancelled;
        self.registry
            .write_result(
                id,
                &StoredResult {
                    report: report.clone(),
                    leaderboard,
                },
            )
            .map_err(|e| format!("persisting campaign result: {e}"))?;
        runtime.report = Some(report);
        runtime.bus.publish(&Event::Cancelled { campaign: id });
        runtime.bus.close();
        self.persist_state(idx)
            .map_err(|e| format!("persisting campaign state: {e}"))
    }

    /// Subscribes to a campaign's live event stream. Watching a terminal
    /// campaign yields a subscriber that immediately reports closure.
    ///
    /// # Errors
    ///
    /// Returns the typed message for an unknown campaign id.
    pub fn watch(&self, id: u64) -> Result<Subscriber<Event>, String> {
        let idx = self.runtime(id)?;
        Ok(self.campaigns[idx].bus.subscribe())
    }
}

/// Derives the per-campaign journal paths for
/// `search-word64 --campaigns N --db FILE`: campaign `i` journals into
/// `{stem}-c{i}{ext}` next to `FILE`.
///
/// # Errors
///
/// Returns the typed message when `db` has no file name, or when the
/// derived set collides (duplicates, or a derived path equal to `db`
/// itself) — each campaign must own its journal exclusively.
pub fn campaign_db_paths(db: &str, campaigns: usize) -> Result<Vec<PathBuf>, String> {
    let base = Path::new(db);
    let Some(file) = base.file_name().and_then(|f| f.to_str()) else {
        return Err(format!("--db: `{db}` has no file name"));
    };
    let (stem, ext) = match file.rfind('.') {
        Some(dot) if dot > 0 => (&file[..dot], &file[dot..]),
        _ => (file, ""),
    };
    let mut paths = Vec::with_capacity(campaigns);
    let mut seen: HashSet<PathBuf> = HashSet::new();
    for i in 0..campaigns {
        let path = base.with_file_name(format!("{stem}-c{i}{ext}"));
        if path == base || !seen.insert(path.clone()) {
            return Err(format!(
                "--db: derived journal path `{}` collides; every campaign needs its own journal",
                path.display()
            ));
        }
        paths.push(path);
    }
    Ok(paths)
}

/// Runs `paths.len()` independent 64-bit data-pattern searches
/// concurrently over one persistent pool — like
/// [`search_word64_concurrent`](DStress::search_word64_concurrent) — with
/// every campaign write-ahead journaled into **its own** database file,
/// so an interrupted batch resumes bit-identically per campaign. Campaign
/// `i` is named `{base}-c{i}` and draws the same seed its solo equivalent
/// would; a campaign whose journal already finished is re-run
/// idempotently (same records, deduplicated).
///
/// # Errors
///
/// Propagates evaluator construction and journal I/O failures.
///
/// # Panics
///
/// Panics if `paths` is empty or `workers` is zero.
#[allow(clippy::too_many_arguments)] // campaign knobs mirror the solo entry point
pub fn run_word64_campaigns_journaled(
    scale: ExperimentScale,
    framework_seed: u64,
    workers: usize,
    supervision: SupervisionPolicy,
    temp_c: f64,
    metric: Metric,
    minimize: bool,
    paths: &[PathBuf],
) -> Result<Vec<BitCampaign>, DStressError> {
    assert!(!paths.is_empty(), "at least one campaign is required");
    let base = DStress::word64_campaign_name(temp_c, &metric, minimize);
    let codec = word64_codec();
    let bits = codec.genome_bits();
    let mut config = scale.ga;
    config.minimize = minimize;
    let dstress = DStress::new(scale, framework_seed);
    let mut fitness = ParallelBitFitness {
        evaluator: dstress.evaluator(&EnvKind::Word64, temp_c, metric)?,
        codec,
    };
    let mut scheduler = CampaignScheduler::new(EvalPool::new(&fitness, workers));
    struct Slot {
        name: String,
        journal: CampaignJournal<DiskStorage>,
        recorded: HashSet<Vec<u64>>,
        sched: usize,
        result: Option<dstress_ga::SearchResult<BitGenome>>,
    }
    let mut slots: Vec<Slot> = Vec::with_capacity(paths.len());
    for (i, path) in paths.iter().enumerate() {
        let name = format!("{base}-c{i}");
        let mut journal = CampaignJournal::open(DiskStorage::new(), path)?;
        let mut session = match journal.checkpoint() {
            Some(cp) if cp.campaign == name => SearchSession::resume(
                EngineState::<BitGenome>::from_json(&cp.state).map_err(invalid_data)?,
            ),
            _ => {
                let seed = DStress::campaign_seed(framework_seed, i as u64 + 1);
                SearchSession::start(config, seed, |rng| {
                    Seeding::Random.initial_genome(rng, bits)
                })
            }
        };
        session.set_supervision(supervision);
        let recorded: HashSet<Vec<u64>> = journal
            .db()
            .campaign(&name)
            .map(|r| r.genes.clone())
            .collect();
        let state = session.checkpoint().to_json().map_err(io::Error::other)?;
        journal.append_checkpoint(&name, state)?;
        let sched = scheduler.add(session, None);
        slots.push(Slot {
            name,
            journal,
            recorded,
            sched,
            result: None,
        });
    }
    while scheduler.tick() {
        for slot in slots.iter_mut().filter(|s| s.result.is_none()) {
            let session = scheduler.session_mut(slot.sched);
            for (genome, value) in session.take_newly_evaluated() {
                let record = make_record(&slot.name, &genome, value);
                if slot.recorded.insert(record.genes.clone()) {
                    slot.journal.append_record(record)?;
                }
            }
            for incident in session.take_new_incidents() {
                slot.journal.append_incident(&slot.name, incident)?;
            }
            if session.done() {
                let session = scheduler.remove(slot.sched);
                slot.journal.finish()?;
                slot.result = Some(session.finish());
            } else {
                let state = session.checkpoint().to_json().map_err(io::Error::other)?;
                slot.journal.append_checkpoint(&slot.name, state)?;
            }
        }
    }
    let (_, replicas) = scheduler.finish();
    for replica in replicas {
        fitness.absorb(replica);
    }
    let compile_hits = fitness.evaluator.compile_hits;
    let failed = fitness.evaluator.failed_evaluations;
    Ok(slots
        .into_iter()
        .map(|slot| {
            let mut result = slot.result.expect("scheduler drained every campaign");
            result.eval_stats.compile_hits = compile_hits;
            BitCampaign {
                name: slot.name,
                result,
                env: EnvKind::Word64,
                failed_evaluations: failed,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::broadcast::Recv;
    use std::time::Duration;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dstress-engine-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn quick_spec(seed: u64) -> CampaignSpec {
        CampaignSpec {
            scale: "quick".into(),
            seed,
            ..CampaignSpec::default()
        }
    }

    /// A solo journaled run with the given framework seed, returning the
    /// final snapshot bytes.
    fn solo_snapshot(dir: &Path, seed: u64) -> Vec<u8> {
        let path = dir.join(format!("solo-{seed}.db.json"));
        let mut journal = CampaignJournal::open(DiskStorage::new(), &path).unwrap();
        let mut dstress = DStress::new(ExperimentScale::quick(), seed);
        dstress
            .search_word64_journaled(&mut journal, 60.0, Metric::CeAverage, false)
            .unwrap();
        std::fs::read(&path).unwrap()
    }

    #[test]
    fn concurrent_tenants_match_solo_journaled_runs_byte_for_byte() {
        let dir = temp_dir("tenants");
        let mut engine = ServiceEngine::new(dir.join("daemon"), 2, 64).unwrap();
        let (a, name_a) = engine.submit(quick_spec(41)).unwrap();
        let (b, _) = engine.submit(quick_spec(42)).unwrap();
        assert_eq!(name_a, "word64-ce-max-60C");
        engine.run_until_idle().unwrap();
        for id in [a, b] {
            let report = engine.status(id).unwrap();
            assert_eq!(report.state, "done");
            assert!(report.generation > 0);
        }
        let daemon_a = std::fs::read(engine.dir().join(format!("c{a}.db.json"))).unwrap();
        let daemon_b = std::fs::read(engine.dir().join(format!("c{b}.db.json"))).unwrap();
        assert_eq!(daemon_a, solo_snapshot(&dir, 41), "campaign A diverged");
        assert_eq!(daemon_b, solo_snapshot(&dir, 42), "campaign B diverged");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_restart_mid_campaign_resumes_bit_identically() {
        let dir = temp_dir("restart");
        let id = {
            let mut engine = ServiceEngine::new(dir.join("daemon"), 2, 64).unwrap();
            let (id, _) = engine.submit(quick_spec(7)).unwrap();
            for _ in 0..3 {
                engine.tick().unwrap();
            }
            id
            // Dropping the engine models a daemon kill at tick
            // granularity: the journal holds the post-step checkpoint.
        };
        let mut engine = ServiceEngine::new(dir.join("daemon"), 1, 64).unwrap();
        engine.run_until_idle().unwrap();
        assert_eq!(engine.status(id).unwrap().state, "done");
        let resumed = std::fs::read(engine.dir().join(format!("c{id}.db.json"))).unwrap();
        assert_eq!(resumed, solo_snapshot(&dir, 7), "restart diverged");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pause_cancel_and_watch_lifecycles() {
        let dir = temp_dir("lifecycle");
        let mut engine = ServiceEngine::new(dir.join("daemon"), 1, 64).unwrap();
        let (id, _) = engine.submit(quick_spec(9)).unwrap();
        let sub = engine.watch(id).unwrap();
        engine.tick().unwrap();
        match sub.recv_timeout(Duration::from_secs(1)) {
            Recv::Event(Event::Generation {
                campaign,
                generation,
                ..
            }) => {
                assert_eq!(campaign, id);
                // The first scheduler step evaluates the seed population;
                // generations count from the first evolved one.
                assert_eq!(generation, 0);
            }
            other => panic!("expected a generation event, got {other:?}"),
        }
        engine.set_paused(id, true).unwrap();
        assert!(engine.idle(), "a paused campaign contributes no work");
        assert_eq!(engine.status(id).unwrap().state, "paused");
        engine.set_paused(id, false).unwrap();
        engine.tick().unwrap();
        engine.cancel(id).unwrap();
        let report = engine.status(id).unwrap();
        assert_eq!(report.state, "cancelled");
        assert_eq!(report.generation, 1);
        // The stream drains its queued events, reports the cancellation,
        // then closes.
        let mut saw_cancelled = false;
        loop {
            match sub.recv_timeout(Duration::from_secs(1)) {
                Recv::Event(Event::Cancelled { campaign }) => {
                    assert_eq!(campaign, id);
                    saw_cancelled = true;
                }
                Recv::Event(_) | Recv::Lagged(_) => {}
                Recv::Closed => break,
                Recv::Empty => panic!("stream stalled"),
            }
        }
        assert!(saw_cancelled);
        // Terminal operations are rejected with typed messages.
        assert!(engine.cancel(id).unwrap_err().contains("cancelled"));
        assert!(engine.set_paused(id, true).is_err());
        assert!(engine.status(999).is_err());
        // The cancelled campaign survives a restart as cancelled.
        drop(engine);
        let engine = ServiceEngine::new(dir.join("daemon"), 1, 64).unwrap();
        assert_eq!(engine.status(id).unwrap().state, "cancelled");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_pause_then_resume_still_matches_the_solo_run() {
        let dir = temp_dir("budget");
        let mut engine = ServiceEngine::new(dir.join("daemon"), 1, 64).unwrap();
        let mut spec = quick_spec(11);
        spec.step_budget = 2;
        let (id, _) = engine.submit(spec).unwrap();
        engine.run_until_idle().unwrap();
        let report = engine.status(id).unwrap();
        assert_eq!(report.state, "budget-paused");
        assert_eq!(
            report.generation, 1,
            "two steps = seed pass + one generation"
        );
        // Resume grants another stint; repeat until the search finishes.
        for _ in 0..32 {
            if engine.status(id).unwrap().state == "done" {
                break;
            }
            engine.set_paused(id, false).unwrap();
            engine.run_until_idle().unwrap();
        }
        assert_eq!(engine.status(id).unwrap().state, "done");
        let bytes = std::fs::read(engine.dir().join(format!("c{id}.db.json"))).unwrap();
        assert_eq!(bytes, solo_snapshot(&dir, 11), "budget stints diverged");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn campaign_db_paths_derive_and_reject() {
        let paths = campaign_db_paths("out/word64.json", 3).unwrap();
        assert_eq!(
            paths,
            vec![
                PathBuf::from("out/word64-c0.json"),
                PathBuf::from("out/word64-c1.json"),
                PathBuf::from("out/word64-c2.json"),
            ]
        );
        // No extension: the suffix still lands before the end.
        assert_eq!(
            campaign_db_paths("db", 2).unwrap(),
            vec![PathBuf::from("db-c0"), PathBuf::from("db-c1")]
        );
        // A hidden file keeps its leading dot as part of the stem.
        assert_eq!(
            campaign_db_paths(".journal", 1).unwrap(),
            vec![PathBuf::from(".journal-c0")]
        );
        assert!(campaign_db_paths("..", 1).is_err());
    }

    #[test]
    fn journaled_multi_campaign_batch_matches_the_concurrent_path() {
        let dir = temp_dir("multi");
        std::fs::create_dir_all(&dir).unwrap();
        let paths = campaign_db_paths(dir.join("word64.json").to_str().unwrap(), 2).unwrap();
        let scale = ExperimentScale::quick();
        let journaled = run_word64_campaigns_journaled(
            scale,
            42,
            2,
            SupervisionPolicy::default(),
            60.0,
            Metric::CeAverage,
            false,
            &paths,
        )
        .unwrap();
        let mut dstress = DStress::new(ExperimentScale::quick(), 42);
        let concurrent = dstress
            .search_word64_concurrent(2, 60.0, Metric::CeAverage, false)
            .unwrap();
        for (j, c) in journaled.iter().zip(&concurrent) {
            assert_eq!(j.name, c.name);
            assert_eq!(j.result.best, c.result.best);
            assert_eq!(j.result.best_fitness, c.result.best_fitness);
            assert_eq!(j.result.leaderboard, c.result.leaderboard);
        }
        // Re-running the finished batch is idempotent: the snapshots do
        // not change.
        let before: Vec<Vec<u8>> = paths.iter().map(|p| std::fs::read(p).unwrap()).collect();
        run_word64_campaigns_journaled(
            ExperimentScale::quick(),
            42,
            1,
            SupervisionPolicy::default(),
            60.0,
            Metric::CeAverage,
            false,
            &paths,
        )
        .unwrap();
        let after: Vec<Vec<u8>> = paths.iter().map(|p| std::fs::read(p).unwrap()).collect();
        assert_eq!(before, after);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
