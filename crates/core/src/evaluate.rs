//! The evaluation phase (paper §III-F): instantiate a candidate virus, run
//! it on the experimental server, and count the DRAM errors it manifests.

use crate::error::DStressError;
use crate::patterns::{BitCodec, IntCodec};
use dstress_dram::geometry::RowKey;
use dstress_ga::{BitGenome, EvalFault, Fitness, IntGenome, ParallelFitness};
use dstress_platform::{RunOutcome, XGene2Server};
use dstress_vpl::{
    compile_opt, BoundValue, CompiledProgram, ExecLimits, Interpreter, OptLevel, ProcessedTemplate,
    Vm,
};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

const NONCE_PRIME: u64 = 0x0000_0100_0000_01B3;
const NONCE_SEED: u64 = 0xcbf2_9ce4_8422_2325;

fn nonce_eat(hash: &mut u64, value: u64) {
    for byte in value.to_le_bytes() {
        *hash ^= byte as u64;
        *hash = hash.wrapping_mul(NONCE_PRIME);
    }
}

fn nonce_eat_pair(hash: &mut u64, key: &str, value: &BoundValue) {
    for byte in key.bytes() {
        *hash ^= byte as u64;
        *hash = hash.wrapping_mul(NONCE_PRIME);
    }
    match value {
        BoundValue::Scalar(v) => {
            nonce_eat(hash, 0);
            nonce_eat(hash, *v);
        }
        BoundValue::Array(vs) => {
            nonce_eat(hash, 1);
            nonce_eat(hash, vs.len() as u64);
            for v in vs {
                nonce_eat(hash, *v);
            }
        }
    }
}

/// Derives the base VRT nonce for one evaluation from the fully-bound
/// chromosome (FNV-1a over the sorted bindings).
///
/// Making the nonce a pure function of the bindings — instead of an
/// evaluation-order counter — makes every evaluation a pure function of the
/// candidate virus: the same chromosome manifests the same errors no matter
/// which worker evaluates it, in which order, or whether the score comes
/// from the engine's evaluation cache. Distinct chromosomes still draw
/// distinct noise, so VRT keeps differentiating candidates run-to-run
/// across the `runs` repeats (which offset the base nonce).
///
/// The hot path ([`VirusEvaluator::evaluate_bindings`]) computes the same
/// hash without materializing or sorting the merged binding map — see
/// `merged_nonce` — so this reference form only backs tests and one-off
/// callers.
fn bindings_nonce(bindings: &HashMap<String, BoundValue>) -> u64 {
    let mut hash = NONCE_SEED;
    let mut keys: Vec<&String> = bindings.keys().collect();
    keys.sort();
    for key in keys {
        nonce_eat_pair(&mut hash, key, &bindings[key]);
    }
    hash
}

/// Computes [`bindings_nonce`] of `env ∪ chromosome` (chromosome wins on a
/// shared key) from a pre-sorted environment view, sorting only the
/// chromosome's few GA-parameter keys per evaluation instead of cloning and
/// re-sorting the whole union.
fn merged_nonce(
    sorted_env: &[(String, BoundValue)],
    chromosome: &HashMap<String, BoundValue>,
) -> u64 {
    let mut chrom: Vec<(&str, &BoundValue)> =
        chromosome.iter().map(|(k, v)| (k.as_str(), v)).collect();
    chrom.sort_unstable_by_key(|&(k, _)| k);
    let mut hash = NONCE_SEED;
    let mut e = 0;
    let mut c = 0;
    while e < sorted_env.len() || c < chrom.len() {
        let pick_env = match (sorted_env.get(e), chrom.get(c)) {
            (Some((ek, _)), Some(&(ck, _))) => {
                if ek.as_str() == ck {
                    // Chromosome overrides the environment binding.
                    e += 1;
                    false
                } else {
                    ek.as_str() < ck
                }
            }
            (Some(_), None) => true,
            (None, _) => false,
        };
        if pick_env {
            let (k, v) = &sorted_env[e];
            nonce_eat_pair(&mut hash, k, v);
            e += 1;
        } else {
            let (k, v) = chrom[c];
            nonce_eat_pair(&mut hash, k, v);
            c += 1;
        }
    }
    hash
}

/// Retention bound of the compiled-program cache — same cap as the GA
/// engine's evaluation cache, so the two stay in step: any chromosome the
/// engine can re-request cheaply is also cheap to re-bind here.
const COMPILE_CACHE_CAP: usize = 1024;

/// A bounded least-recently-used cache of compiled virus programs, keyed
/// by the chromosome's canonical (key-sorted) bindings. The environment
/// bindings are fixed for an evaluator's lifetime, so the chromosome alone
/// determines the instantiated program — identical chromosomes across a
/// generation (or across generations, once the engine's own fitness cache
/// evicts) bind, instantiate and compile once. Eviction order is a pure
/// function of the lookup/insert sequence, keeping evaluation
/// deterministic for any worker count.
#[derive(Debug, Default)]
struct CompileCache {
    map: HashMap<Vec<(String, BoundValue)>, Arc<CompiledProgram>>,
    /// Keys in least-recently-used-first order.
    queue: VecDeque<Vec<(String, BoundValue)>>,
}

impl CompileCache {
    /// Looks a chromosome up, promoting it to most-recently-used.
    fn lookup(&mut self, key: &[(String, BoundValue)]) -> Option<Arc<CompiledProgram>> {
        let hit = self.map.get(key)?.clone();
        let pos = self
            .queue
            .iter()
            .position(|k| k.as_slice() == key)
            .expect("every cached program is in the recency queue");
        let promoted = self.queue.remove(pos).expect("position is in range");
        self.queue.push_back(promoted);
        Some(hit)
    }

    /// Inserts a freshly compiled program, evicting the least recently
    /// used entry once over capacity.
    fn insert(&mut self, key: Vec<(String, BoundValue)>, program: Arc<CompiledProgram>) {
        debug_assert!(!self.map.contains_key(&key), "insert after a miss only");
        self.queue.push_back(key.clone());
        self.map.insert(key, program);
        if self.map.len() > COMPILE_CACHE_CAP {
            let evicted = self.queue.pop_front().expect("cache is over capacity");
            self.map.remove(&evicted);
        }
    }
}

/// The quantity a search maximizes (§III-C: CEs or UEs).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Mean correctable errors per run, across the whole server.
    CeAverage,
    /// Mean correctable errors per run within a set of rows on the target
    /// MCU — the victim-focused fitness of the neighbour-row experiments
    /// ("increase the probability to obtain a CE in these rows", §III-B).
    CeInRows(Vec<RowKey>),
    /// Number of runs (out of `runs`) in which ECC raised at least one
    /// uncorrectable error — the Fig. 8d fitness ("the number of
    /// experimental runs when UEs have been obtained").
    UeRuns,
}

/// What one virus evaluation produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalOutcome {
    /// The fitness value under the evaluator's metric.
    pub fitness: f64,
    /// Total CEs summed over all runs.
    pub total_ce: u64,
    /// Total UEs summed over all runs.
    pub total_ue: u64,
    /// Runs in which a UE stopped the virus.
    pub ue_runs: u32,
    /// Recorded DRAM access-trace length of the virus body.
    pub trace_len: usize,
}

/// Evaluates candidate viruses for one search campaign.
///
/// Owns the server for the duration of the campaign; each evaluation resets
/// memory and counters, instantiates the template with the chromosome's
/// bindings plus the campaign's environment bindings, compiles the program
/// once through the optimizing VPL backend (at a configurable
/// [`OptLevel`], through a bounded chromosome-keyed compile cache) and
/// executes it through the [`Vm`] (monomorphized over the recording
/// session), then replays the recorded trace for `runs`
/// independent evaluation runs (the paper's 10-run averaging). The
/// tree-walking interpreter path survives as
/// [`VirusEvaluator::evaluate_bindings_reference`], the oracle the
/// differential suite holds the production path against.
#[derive(Debug)]
pub struct VirusEvaluator {
    server: XGene2Server,
    template: ProcessedTemplate,
    env: HashMap<String, BoundValue>,
    /// The environment bindings sorted by key once at construction, so the
    /// per-evaluation nonce never re-sorts or re-allocates them.
    sorted_env: Vec<(String, BoundValue)>,
    metric: Metric,
    runs: u32,
    target_mcu: usize,
    limits: ExecLimits,
    /// Optimization level the VPL backend compiles candidate programs at.
    opt: OptLevel,
    /// Compiled programs keyed by canonical chromosome bindings.
    cache: CompileCache,
    /// Outcome of the most recent evaluation (for database recording).
    pub last: Option<EvalOutcome>,
    /// Evaluations that failed (template runtime errors); such candidates
    /// score 0.
    pub failed_evaluations: u64,
    /// Evaluations whose program came out of the compile cache instead of
    /// being re-bound, re-instantiated and re-compiled.
    pub compile_hits: u64,
    /// Programs actually instantiated and compiled (cache misses).
    pub compiles: u64,
}

impl VirusEvaluator {
    /// Creates an evaluator.
    pub fn new(
        server: XGene2Server,
        template: ProcessedTemplate,
        env: HashMap<String, BoundValue>,
        metric: Metric,
        runs: u32,
        target_mcu: usize,
    ) -> Self {
        let mut sorted_env: Vec<(String, BoundValue)> =
            env.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        sorted_env.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        VirusEvaluator {
            server,
            template,
            env,
            sorted_env,
            metric,
            runs,
            target_mcu,
            limits: ExecLimits::default(),
            opt: OptLevel::default(),
            cache: CompileCache::default(),
            last: None,
            failed_evaluations: 0,
            compile_hits: 0,
            compiles: 0,
        }
    }

    /// Creates an independent replica of this evaluator for a parallel
    /// evaluation worker: its own copy of the server (DIMMs, thermal state,
    /// ECC counters), template and environment. Evaluation outcomes depend
    /// only on the chromosome (the VRT nonce is chromosome-derived), so a
    /// replica scores every candidate exactly as the original would.
    /// Bookkeeping (`last`, `failed_evaluations`, the compile cache and its
    /// counters) starts fresh.
    pub fn replicate(&self) -> VirusEvaluator {
        VirusEvaluator {
            server: self.server.clone(),
            template: self.template.clone(),
            env: self.env.clone(),
            sorted_env: self.sorted_env.clone(),
            metric: self.metric.clone(),
            runs: self.runs,
            target_mcu: self.target_mcu,
            limits: self.limits,
            opt: self.opt,
            cache: CompileCache::default(),
            last: None,
            failed_evaluations: 0,
            compile_hits: 0,
            compiles: 0,
        }
    }

    /// The server (e.g. to inspect counters after a campaign).
    pub fn server(&self) -> &XGene2Server {
        &self.server
    }

    /// Mutable server access between campaigns (parameter sweeps).
    pub fn server_mut(&mut self) -> &mut XGene2Server {
        &mut self.server
    }

    /// Releases the server.
    pub fn into_server(self) -> XGene2Server {
        self.server
    }

    /// Replaces the campaign metric.
    pub fn set_metric(&mut self, metric: Metric) {
        self.metric = metric;
    }

    /// Sets the VM step budget — the supervised runtime's deterministic
    /// watchdog. A candidate that exceeds it fails with the VM's
    /// `ExecutionLimit`, which [`Self::try_fitness_of`] classifies as a
    /// non-retryable budget blowout.
    pub fn set_step_budget(&mut self, max_steps: u64) {
        self.limits = ExecLimits::with_max_steps(max_steps);
    }

    /// The configured VM step budget.
    pub fn step_budget(&self) -> u64 {
        self.limits.max_steps
    }

    /// Sets the optimization level candidate programs compile at. The
    /// compile cache is keyed by bindings only, so changing the level
    /// drops it; the outcome of every evaluation is the same at any level
    /// (the pass pipeline preserves the observable contract bit for bit).
    pub fn set_opt_level(&mut self, opt: OptLevel) {
        if self.opt != opt {
            self.cache = CompileCache::default();
        }
        self.opt = opt;
    }

    /// The optimization level candidate programs compile at.
    pub fn opt_level(&self) -> OptLevel {
        self.opt
    }

    /// Binds, instantiates and compiles a chromosome through the bounded
    /// compile cache: a repeat of a cached chromosome skips all three
    /// steps. Failures are not cached (they are deterministic and the
    /// search treats failing candidates as already worthless).
    fn compiled(
        &mut self,
        chromosome: HashMap<String, BoundValue>,
    ) -> Result<Arc<CompiledProgram>, DStressError> {
        let mut key: Vec<(String, BoundValue)> = chromosome.into_iter().collect();
        key.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        if let Some(hit) = self.cache.lookup(&key) {
            self.compile_hits += 1;
            return Ok(hit);
        }
        let mut bindings = self.env.clone();
        bindings.extend(key.iter().cloned());
        let program = self.template.instantiate(&bindings)?;
        let compiled = Arc::new(compile_opt(&program, &self.opt.config())?);
        self.compiles += 1;
        self.cache.insert(key, Arc::clone(&compiled));
        Ok(compiled)
    }

    /// Evaluates a fully-bound candidate virus.
    ///
    /// # Errors
    ///
    /// Propagates template instantiation and execution failures.
    pub fn evaluate_bindings(
        &mut self,
        chromosome: HashMap<String, BoundValue>,
    ) -> Result<EvalOutcome, DStressError> {
        let base_nonce = merged_nonce(&self.sorted_env, &chromosome);
        let compiled = self.compiled(chromosome)?;
        self.server.reset_memory();
        let mut session = self.server.session(self.target_mcu);
        Vm::new(self.limits).run(&compiled, &mut session)?;
        let run = session.finish();
        let outcomes = self.server.evaluate_runs(&run, self.runs, base_nonce)?;
        let outcome = self.summarize(&outcomes, run.len());
        self.last = Some(outcome.clone());
        Ok(outcome)
    }

    /// Reference evaluation through the tree-walking [`Interpreter`], the
    /// hash-the-merged-map nonce and the sequential one-run-at-a-time
    /// evaluation path — none of the hot path's machinery (bytecode VM,
    /// bulk fill, lane-batched window kernel). Semantically identical to
    /// [`Self::evaluate_bindings`] — the differential suites assert the two
    /// produce the same [`EvalOutcome`] bit for bit.
    ///
    /// # Errors
    ///
    /// Propagates template instantiation and execution failures.
    pub fn evaluate_bindings_reference(
        &mut self,
        chromosome: HashMap<String, BoundValue>,
    ) -> Result<EvalOutcome, DStressError> {
        let mut bindings = self.env.clone();
        bindings.extend(chromosome);
        let program = self.template.instantiate(&bindings)?;
        self.server.reset_memory();
        let mut session = self.server.session(self.target_mcu);
        Interpreter::new(self.limits).run(&program, &mut session)?;
        let run = session.finish();
        let base_nonce = bindings_nonce(&bindings);
        let outcomes = self
            .server
            .evaluate_runs_sequential(&run, self.runs, base_nonce)?;
        let outcome = self.summarize(&outcomes, run.len());
        self.last = Some(outcome.clone());
        Ok(outcome)
    }

    fn summarize(&self, outcomes: &[RunOutcome], trace_len: usize) -> EvalOutcome {
        let total_ce: u64 = outcomes.iter().map(|o| o.totals.ce).sum();
        let total_ue: u64 = outcomes.iter().map(|o| o.totals.ue).sum();
        let ue_runs = outcomes.iter().filter(|o| o.stopped_on_ue).count() as u32;
        let fitness = match &self.metric {
            Metric::CeAverage => total_ce as f64 / outcomes.len().max(1) as f64,
            Metric::CeInRows(rows) => {
                let in_rows: u64 = outcomes
                    .iter()
                    .flat_map(|o| &o.row_errors)
                    .filter(|r| r.mcu == self.target_mcu && rows.contains(&r.row))
                    .map(|r| r.ce)
                    .sum();
                in_rows as f64 / outcomes.len().max(1) as f64
            }
            Metric::UeRuns => ue_runs as f64,
        };
        EvalOutcome {
            fitness,
            total_ce,
            total_ue,
            ue_runs,
            trace_len,
        }
    }

    /// Evaluates and returns the fitness only, scoring failed candidates 0
    /// (a virus that crashes stresses nothing).
    pub fn fitness_of(&mut self, chromosome: HashMap<String, BoundValue>) -> f64 {
        match self.evaluate_bindings(chromosome) {
            Ok(outcome) => outcome.fitness,
            Err(_) => {
                self.failed_evaluations += 1;
                0.0
            }
        }
    }

    /// Evaluates a whole generation of candidate viruses through the
    /// batched evaluation path. Distinct binding-sets are collected first,
    /// so a chromosome occurring several times in the population — common
    /// once a search converges — is bound, compiled and run once, with the
    /// outcome fanned back out to every slot it fills; beneath that, each
    /// candidate's repeat runs go through the server's lane-batched window
    /// kernel and shared plan/profile caches. Slot `i` of the result is
    /// exactly `evaluate_bindings(chromosomes[i].clone())` — dedup is
    /// sound because evaluation is a pure function of the bindings.
    ///
    /// Failed candidates count once per *distinct* chromosome in
    /// `failed_evaluations`, matching one substrate evaluation each.
    pub fn evaluate_generation(
        &mut self,
        chromosomes: &[HashMap<String, BoundValue>],
    ) -> Vec<Result<EvalOutcome, DStressError>> {
        let mut results: Vec<Option<Result<EvalOutcome, DStressError>>> =
            vec![None; chromosomes.len()];
        let mut distinct: Vec<usize> = Vec::new();
        for i in 0..chromosomes.len() {
            if let Some(&first) = distinct.iter().find(|&&j| chromosomes[j] == chromosomes[i]) {
                results[i] = results[first].clone();
            } else {
                distinct.push(i);
                let result = self.evaluate_bindings(chromosomes[i].clone());
                if result.is_err() {
                    self.failed_evaluations += 1;
                }
                results[i] = Some(result);
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every slot is filled above"))
            .collect()
    }

    /// Fallible scoring for the supervised evaluation path: instead of
    /// smuggling failures into a 0.0 score (as [`Self::fitness_of`] does for
    /// the legacy path), failures surface as classified [`EvalFault`]s the
    /// GA supervisor can act on. The step-budget watchdog firing maps to
    /// [`dstress_ga::FaultKind::BudgetExhausted`]; every other template or
    /// execution failure is deterministic for a given chromosome, hence
    /// permanent. Failed evaluations still count in `failed_evaluations`.
    ///
    /// # Errors
    ///
    /// The classified [`EvalFault`].
    pub fn try_fitness_of(
        &mut self,
        chromosome: HashMap<String, BoundValue>,
    ) -> Result<f64, EvalFault> {
        match self.evaluate_bindings(chromosome) {
            Ok(outcome) => Ok(outcome.fitness),
            Err(err) => {
                self.failed_evaluations += 1;
                match &err {
                    DStressError::Vpl(vpl) if vpl.is_execution_limit() => {
                        Err(EvalFault::budget_exhausted(err.to_string()))
                    }
                    _ => Err(EvalFault::permanent(err.to_string())),
                }
            }
        }
    }
}

/// Scores a generation through [`VirusEvaluator::evaluate_generation`],
/// mapping failed candidates to 0.0 exactly as
/// [`VirusEvaluator::fitness_of`] does on the per-candidate path.
fn generation_scores(
    evaluator: &mut VirusEvaluator,
    chromosomes: Vec<HashMap<String, BoundValue>>,
) -> Vec<f64> {
    evaluator
        .evaluate_generation(&chromosomes)
        .into_iter()
        .map(|result| result.map(|o| o.fitness).unwrap_or(0.0))
        .collect()
}

/// [`Fitness`] adapter for bit-genome searches.
#[derive(Debug)]
pub struct BitFitness<'a> {
    /// The campaign evaluator.
    pub evaluator: &'a mut VirusEvaluator,
    /// The chromosome codec.
    pub codec: BitCodec,
}

impl Fitness<BitGenome> for BitFitness<'_> {
    fn evaluate(&mut self, genome: &BitGenome) -> f64 {
        self.evaluator.fitness_of(self.codec.bindings(genome))
    }

    fn try_evaluate(&mut self, genome: &BitGenome) -> Result<f64, EvalFault> {
        self.evaluator.try_fitness_of(self.codec.bindings(genome))
    }

    fn evaluate_generation(&mut self, population: &[BitGenome]) -> Vec<f64> {
        let chromosomes = population.iter().map(|g| self.codec.bindings(g)).collect();
        generation_scores(self.evaluator, chromosomes)
    }
}

/// [`Fitness`] adapter for integer-genome searches.
#[derive(Debug)]
pub struct IntFitness<'a> {
    /// The campaign evaluator.
    pub evaluator: &'a mut VirusEvaluator,
    /// The chromosome codec.
    pub codec: IntCodec,
}

impl Fitness<IntGenome> for IntFitness<'_> {
    fn evaluate(&mut self, genome: &IntGenome) -> f64 {
        self.evaluator.fitness_of(self.codec.bindings(genome))
    }

    fn try_evaluate(&mut self, genome: &IntGenome) -> Result<f64, EvalFault> {
        self.evaluator.try_fitness_of(self.codec.bindings(genome))
    }

    fn evaluate_generation(&mut self, population: &[IntGenome]) -> Vec<f64> {
        let chromosomes = population.iter().map(|g| self.codec.bindings(g)).collect();
        generation_scores(self.evaluator, chromosomes)
    }
}

/// Owning [`ParallelFitness`] adapter for bit-genome campaigns: each
/// evaluation worker gets a replica that owns its own evaluator, server
/// included, so workers never contend for the substrate.
#[derive(Debug)]
pub struct ParallelBitFitness {
    /// The campaign evaluator this fitness owns.
    pub evaluator: VirusEvaluator,
    /// The chromosome codec.
    pub codec: BitCodec,
}

impl Fitness<BitGenome> for ParallelBitFitness {
    fn evaluate(&mut self, genome: &BitGenome) -> f64 {
        self.evaluator.fitness_of(self.codec.bindings(genome))
    }

    fn try_evaluate(&mut self, genome: &BitGenome) -> Result<f64, EvalFault> {
        self.evaluator.try_fitness_of(self.codec.bindings(genome))
    }

    fn evaluate_generation(&mut self, population: &[BitGenome]) -> Vec<f64> {
        let chromosomes = population.iter().map(|g| self.codec.bindings(g)).collect();
        generation_scores(&mut self.evaluator, chromosomes)
    }
}

impl ParallelFitness<BitGenome> for ParallelBitFitness {
    fn replicate(&self) -> Self {
        ParallelBitFitness {
            evaluator: self.evaluator.replicate(),
            codec: self.codec.clone(),
        }
    }

    fn absorb(&mut self, replica: Self) {
        self.evaluator.failed_evaluations += replica.evaluator.failed_evaluations;
        self.evaluator.compile_hits += replica.evaluator.compile_hits;
        self.evaluator.compiles += replica.evaluator.compiles;
    }

    fn cache_counters(&self) -> (u64, u64) {
        (self.evaluator.compile_hits, self.evaluator.compiles)
    }
}

/// Owning [`ParallelFitness`] adapter for integer-genome campaigns.
#[derive(Debug)]
pub struct ParallelIntFitness {
    /// The campaign evaluator this fitness owns.
    pub evaluator: VirusEvaluator,
    /// The chromosome codec.
    pub codec: IntCodec,
}

impl Fitness<IntGenome> for ParallelIntFitness {
    fn evaluate(&mut self, genome: &IntGenome) -> f64 {
        self.evaluator.fitness_of(self.codec.bindings(genome))
    }

    fn try_evaluate(&mut self, genome: &IntGenome) -> Result<f64, EvalFault> {
        self.evaluator.try_fitness_of(self.codec.bindings(genome))
    }

    fn evaluate_generation(&mut self, population: &[IntGenome]) -> Vec<f64> {
        let chromosomes = population.iter().map(|g| self.codec.bindings(g)).collect();
        generation_scores(&mut self.evaluator, chromosomes)
    }
}

impl ParallelFitness<IntGenome> for ParallelIntFitness {
    fn replicate(&self) -> Self {
        ParallelIntFitness {
            evaluator: self.evaluator.replicate(),
            codec: self.codec.clone(),
        }
    }

    fn absorb(&mut self, replica: Self) {
        self.evaluator.failed_evaluations += replica.evaluator.failed_evaluations;
        self.evaluator.compile_hits += replica.evaluator.compile_hits;
        self.evaluator.compiles += replica.evaluator.compiles;
    }

    fn cache_counters(&self) -> (u64, u64) {
        (self.evaluator.compile_hits, self.evaluator.compiles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ExperimentScale;
    use crate::templates;

    /// A word64 evaluator on a quick-scale server heated to 60 °C.
    fn evaluator(metric: Metric) -> VirusEvaluator {
        let scale = ExperimentScale::quick();
        let mut server = XGene2Server::new(scale.server);
        server.relax_second_domain();
        server.set_dimm_temperature(2, 60.0).unwrap();
        let template = templates::process(templates::WORD64, &scale).unwrap();
        let mem_words = scale.dimm_words();
        let env: HashMap<String, BoundValue> = [
            ("MEM_BYTES".to_string(), BoundValue::Scalar(mem_words * 8)),
            ("MEM_WORDS".to_string(), BoundValue::Scalar(mem_words)),
        ]
        .into_iter()
        .collect();
        VirusEvaluator::new(server, template, env, metric, 3, 2)
    }

    #[test]
    fn worst_word_outscores_best_word() {
        let mut eval = evaluator(Metric::CeAverage);
        let worst = eval
            .evaluate_bindings(
                [(
                    "PATTERN".to_string(),
                    BoundValue::Scalar(0x3333_3333_3333_3333),
                )]
                .into(),
            )
            .unwrap();
        let best = eval
            .evaluate_bindings(
                [(
                    "PATTERN".to_string(),
                    BoundValue::Scalar(0xCCCC_CCCC_CCCC_CCCC),
                )]
                .into(),
            )
            .unwrap();
        assert!(
            worst.fitness > 2.0 * best.fitness.max(1.0),
            "worst {} vs best {}",
            worst.fitness,
            best.fitness
        );
        assert!(worst.total_ce > 0);
        assert!(worst.trace_len > 0);
    }

    #[test]
    fn generation_evaluation_matches_per_candidate_path() {
        // Population with repeats: the generation entry dedups them, and
        // every slot must still score exactly as an isolated evaluation.
        let patterns: Vec<u64> = vec![
            0x3333_3333_3333_3333,
            0xCCCC_CCCC_CCCC_CCCC,
            0x3333_3333_3333_3333, // repeat of slot 0
            0x0000_0000_0000_0000,
            0xCCCC_CCCC_CCCC_CCCC, // repeat of slot 1
        ];
        let chromosomes: Vec<HashMap<String, BoundValue>> = patterns
            .iter()
            .map(|&p| [("PATTERN".to_string(), BoundValue::Scalar(p))].into())
            .collect();
        let mut generation_eval = evaluator(Metric::CeAverage);
        let batched = generation_eval.evaluate_generation(&chromosomes);
        let mut single_eval = evaluator(Metric::CeAverage);
        for (chromosome, got) in chromosomes.iter().zip(&batched) {
            let expected = single_eval.evaluate_bindings(chromosome.clone()).unwrap();
            assert_eq!(got.as_ref().unwrap(), &expected);
        }
        assert_eq!(batched[0], batched[2]);
        assert_eq!(batched[1], batched[4]);
        assert_eq!(generation_eval.failed_evaluations, 0);
    }

    #[test]
    fn plan_errors_classify_as_permanent_faults() {
        // Satellite check: a PlanError surfacing through DStressError must
        // become a permanent (non-retryable) fault, never a retried panic.
        let err: DStressError = dstress_dram::PlanError::Stale {
            built: 3,
            current: 7,
        }
        .into();
        assert!(err.to_string().contains("stale RunPlan"));
        match &err {
            DStressError::Plan(dstress_dram::PlanError::Stale {
                built: 3,
                current: 7,
            }) => {}
            other => panic!("wrong variant: {other:?}"),
        }
        // try_fitness_of's classification arm: any non-ExecutionLimit error
        // is permanent. Reproduce the arm's logic on the Plan variant.
        let fault = match &err {
            DStressError::Vpl(vpl) if vpl.is_execution_limit() => unreachable!(),
            _ => EvalFault::permanent(err.to_string()),
        };
        assert_eq!(fault.kind, dstress_ga::FaultKind::Permanent);
    }

    #[test]
    fn fitness_adapter_matches_direct_evaluation() {
        let mut eval = evaluator(Metric::CeAverage);
        let g = BitGenome::from_words(&[0x3333_3333_3333_3333], 64);
        let direct = eval
            .evaluate_bindings(
                [(
                    "PATTERN".to_string(),
                    BoundValue::Scalar(0x3333_3333_3333_3333),
                )]
                .into(),
            )
            .unwrap()
            .fitness;
        let mut fit = BitFitness {
            evaluator: &mut eval,
            codec: BitCodec::Word64 {
                param: "PATTERN".into(),
            },
        };
        let adapted = fit.evaluate(&g);
        // VRT noise differs between evaluations; both must land in the same
        // regime.
        assert!(adapted > 0.0);
        assert!((adapted - direct).abs() < 0.5 * direct.max(adapted));
    }

    #[test]
    fn evaluation_is_a_pure_function_of_the_chromosome() {
        let mut eval = evaluator(Metric::CeAverage);
        let worst: HashMap<String, BoundValue> = [(
            "PATTERN".to_string(),
            BoundValue::Scalar(0x3333_3333_3333_3333),
        )]
        .into();
        // Re-evaluating the same chromosome reproduces the outcome exactly:
        // the VRT nonce is chromosome-derived, not order-derived.
        let a = eval.evaluate_bindings(worst.clone()).unwrap();
        let b = eval.evaluate_bindings(worst.clone()).unwrap();
        assert_eq!(a, b, "same chromosome must manifest the same errors");
        // A replica produces the same outcome as the original.
        let mut replica = eval.replicate();
        let c = replica.evaluate_bindings(worst).unwrap();
        assert_eq!(a, c, "replica must score identically");
        assert_eq!(replica.failed_evaluations, 0);
        // Distinct chromosomes draw distinct VRT noise.
        let other = eval
            .evaluate_bindings(
                [(
                    "PATTERN".to_string(),
                    BoundValue::Scalar(0x3333_3333_3333_7333),
                )]
                .into(),
            )
            .unwrap();
        assert_ne!(a, other, "different chromosomes should differ");
    }

    #[test]
    fn merged_nonce_matches_reference_hash() {
        // The hoisted merge-iteration nonce must be bit-identical to
        // hashing the sorted union — including on key collisions, where the
        // chromosome value wins (exactly what `HashMap::extend` does).
        let env: HashMap<String, BoundValue> = [
            ("MEM_WORDS".to_string(), BoundValue::Scalar(4096)),
            ("MEM_BYTES".to_string(), BoundValue::Scalar(32768)),
            ("ZED".to_string(), BoundValue::Scalar(1)),
        ]
        .into();
        let mut sorted_env: Vec<(String, BoundValue)> =
            env.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        sorted_env.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        for chromosome in [
            HashMap::from([
                ("PATTERN".to_string(), BoundValue::Scalar(0x3333)),
                ("ARR".to_string(), BoundValue::Array(vec![1, 2, 3])),
            ]),
            // Collides with an env key.
            HashMap::from([
                ("ZED".to_string(), BoundValue::Scalar(99)),
                ("AAA".to_string(), BoundValue::Scalar(7)),
            ]),
            HashMap::new(),
        ] {
            let mut union = env.clone();
            union.extend(chromosome.clone());
            assert_eq!(
                merged_nonce(&sorted_env, &chromosome),
                bindings_nonce(&union),
                "nonce diverged for chromosome {chromosome:?}"
            );
        }
    }

    #[test]
    fn compile_cache_hits_repeats_and_opt_levels_agree() {
        let mut eval = evaluator(Metric::CeAverage);
        let chromosome: HashMap<String, BoundValue> = [(
            "PATTERN".to_string(),
            BoundValue::Scalar(0x3333_3333_3333_3333),
        )]
        .into();
        let a = eval.evaluate_bindings(chromosome.clone()).unwrap();
        assert_eq!((eval.compiles, eval.compile_hits), (1, 0));
        let b = eval.evaluate_bindings(chromosome.clone()).unwrap();
        assert_eq!(a, b, "cached program must score identically");
        assert_eq!((eval.compiles, eval.compile_hits), (1, 1));
        // A different chromosome misses.
        eval.evaluate_bindings([("PATTERN".to_string(), BoundValue::Scalar(1))].into())
            .unwrap();
        assert_eq!((eval.compiles, eval.compile_hits), (2, 1));
        // A replica starts with a cold cache and fresh counters.
        let mut replica = eval.replicate();
        assert_eq!((replica.compiles, replica.compile_hits), (0, 0));
        assert_eq!(replica.evaluate_bindings(chromosome.clone()).unwrap(), a);
        assert_eq!((replica.compiles, replica.compile_hits), (1, 0));
        // The unoptimized backend produces the same outcome bit for bit,
        // and switching levels drops the (now mis-keyed) cache.
        eval.set_opt_level(OptLevel::None);
        assert_eq!(eval.opt_level(), OptLevel::None);
        let plain = eval.evaluate_bindings(chromosome).unwrap();
        assert_eq!(a, plain, "opt levels must agree on the outcome");
        assert_eq!((eval.compiles, eval.compile_hits), (3, 1));
    }

    #[test]
    fn vm_path_matches_interpreter_reference_path() {
        // End-to-end oracle check at the evaluator level: bytecode VM
        // execution and the tree-walking reference must produce the same
        // EvalOutcome (same trace => same replay => same errors).
        let mut eval = evaluator(Metric::CeAverage);
        let chromosome: HashMap<String, BoundValue> = [(
            "PATTERN".to_string(),
            BoundValue::Scalar(0x3333_3333_3333_3333),
        )]
        .into();
        let vm = eval.evaluate_bindings(chromosome.clone()).unwrap();
        let reference = eval.evaluate_bindings_reference(chromosome).unwrap();
        assert_eq!(vm, reference);
    }

    #[test]
    fn parallel_adapter_replicates_and_absorbs_failures() {
        let mut fit = ParallelBitFitness {
            evaluator: evaluator(Metric::CeAverage),
            codec: BitCodec::Word64 {
                param: "PATTERN".into(),
            },
        };
        let g = BitGenome::from_words(&[0x3333_3333_3333_3333], 64);
        let direct = fit.evaluate(&g);
        let mut replica = fit.replicate();
        assert_eq!(
            replica.evaluate(&g),
            direct,
            "replica must score identically"
        );
        replica.evaluator.failed_evaluations = 3;
        fit.absorb(replica);
        assert_eq!(fit.evaluator.failed_evaluations, 3);
    }

    #[test]
    fn missing_binding_is_an_error_and_scores_zero() {
        let mut eval = evaluator(Metric::CeAverage);
        assert!(eval.evaluate_bindings(HashMap::new()).is_err());
        assert_eq!(eval.fitness_of(HashMap::new()), 0.0);
        assert_eq!(eval.failed_evaluations, 1);
    }

    #[test]
    fn try_fitness_classifies_template_failures_as_permanent() {
        use dstress_ga::FaultKind;
        let mut eval = evaluator(Metric::CeAverage);
        let fault = eval.try_fitness_of(HashMap::new()).unwrap_err();
        assert_eq!(fault.kind, FaultKind::Permanent);
        assert!(!fault.is_retryable());
        assert_eq!(eval.failed_evaluations, 1);
        // A well-formed chromosome still scores through the fallible path.
        let score = eval
            .try_fitness_of(
                [(
                    "PATTERN".to_string(),
                    BoundValue::Scalar(0x3333_3333_3333_3333),
                )]
                .into(),
            )
            .unwrap();
        assert!(score > 0.0);
    }

    #[test]
    fn step_budget_blowout_is_a_budget_fault() {
        use dstress_ga::FaultKind;
        let mut eval = evaluator(Metric::CeAverage);
        // A budget no real virus fits in: the watchdog fires
        // deterministically, and the fault is classified non-retryable.
        eval.set_step_budget(10);
        assert_eq!(eval.step_budget(), 10);
        let chromosome: HashMap<String, BoundValue> = [(
            "PATTERN".to_string(),
            BoundValue::Scalar(0x3333_3333_3333_3333),
        )]
        .into();
        let fault = eval.try_fitness_of(chromosome.clone()).unwrap_err();
        assert_eq!(fault.kind, FaultKind::BudgetExhausted);
        assert!(fault.message.contains("10-step budget"));
        let again = eval.try_fitness_of(chromosome).unwrap_err();
        assert_eq!(fault, again, "the watchdog is deterministic");
        assert_eq!(eval.failed_evaluations, 2);
    }

    #[test]
    fn parallel_adapter_try_evaluate_routes_through_the_evaluator() {
        let mut fit = ParallelBitFitness {
            evaluator: evaluator(Metric::CeAverage),
            codec: BitCodec::Word64 {
                param: "PATTERN".into(),
            },
        };
        let g = BitGenome::from_words(&[0x3333_3333_3333_3333], 64);
        let direct = fit.evaluate(&g);
        assert_eq!(fit.try_evaluate(&g), Ok(direct));
        fit.evaluator.set_step_budget(10);
        let fault = fit.try_evaluate(&g).unwrap_err();
        assert_eq!(fault.kind, dstress_ga::FaultKind::BudgetExhausted);
    }

    #[test]
    fn ue_metric_counts_runs() {
        let mut eval = evaluator(Metric::UeRuns);
        eval.server_mut().set_dimm_temperature(2, 70.0).unwrap();
        let outcome = eval
            .evaluate_bindings(
                [(
                    "PATTERN".to_string(),
                    BoundValue::Scalar(0x3333_3333_3333_3333),
                )]
                .into(),
            )
            .unwrap();
        assert!(outcome.ue_runs > 0, "70C must raise UEs");
        assert_eq!(outcome.fitness, outcome.ue_runs as f64);
    }

    #[test]
    fn ce_in_rows_metric_filters() {
        let mut eval = evaluator(Metric::CeAverage);
        let all = eval
            .evaluate_bindings(
                [(
                    "PATTERN".to_string(),
                    BoundValue::Scalar(0x3333_3333_3333_3333),
                )]
                .into(),
            )
            .unwrap()
            .fitness;
        // Focus on a single row: strictly less than the whole-DIMM count.
        eval.set_metric(Metric::CeInRows(vec![RowKey::new(0, 0, 0)]));
        let one_row = eval
            .evaluate_bindings(
                [(
                    "PATTERN".to_string(),
                    BoundValue::Scalar(0x3333_3333_3333_3333),
                )]
                .into(),
            )
            .unwrap()
            .fitness;
        assert!(
            one_row <= all,
            "one-row count {one_row} vs whole-DIMM {all}"
        );
    }
}
