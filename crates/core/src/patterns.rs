//! Chromosome ↔ template-binding codecs.
//!
//! The GA works on genomes; the template interpreter works on
//! [`BoundValue`] bindings. Each search family has a codec mapping one to
//! the other, in the parameter order the template declares (which defines
//! the chromosome layout, §III-D).

use dstress_ga::{BitGenome, Genome, IntGenome};
use dstress_vpl::BoundValue;
use std::collections::HashMap;

/// How a [`BitGenome`] maps onto template parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitCodec {
    /// A single 64-bit word bound to one scalar parameter (the 64-bit
    /// data-pattern search, Fig. 8).
    Word64 {
        /// Parameter name (`PATTERN`).
        param: String,
    },
    /// The genome split into equal word-array segments bound to several
    /// array parameters in order (the 24 KB row-triple patterns, Fig. 9,
    /// and the chunk-span patterns, Fig. 10).
    WordArrays {
        /// `(parameter name, length in 64-bit words)` per segment.
        segments: Vec<(String, usize)>,
    },
    /// Each bit becomes one 0/1 element of an integer array parameter (the
    /// row-selection access virus, Fig. 11).
    BitFlags {
        /// Parameter name (`SEL`).
        param: String,
    },
}

impl BitCodec {
    /// Chromosome length in bits for this codec.
    pub fn genome_bits(&self) -> usize {
        match self {
            BitCodec::Word64 { .. } => 64,
            BitCodec::WordArrays { segments } => segments.iter().map(|(_, words)| words * 64).sum(),
            BitCodec::BitFlags { .. } => 64,
        }
    }

    /// Converts a chromosome into template bindings.
    ///
    /// # Panics
    ///
    /// Panics if the genome length does not match [`Self::genome_bits`].
    pub fn bindings(&self, genome: &BitGenome) -> HashMap<String, BoundValue> {
        assert_eq!(
            genome.len(),
            self.genome_bits(),
            "genome length mismatch for {self:?}"
        );
        let mut out = HashMap::new();
        match self {
            BitCodec::Word64 { param } => {
                out.insert(param.clone(), BoundValue::Scalar(genome.to_words()[0]));
            }
            BitCodec::WordArrays { segments } => {
                let words = genome.to_words();
                let mut cursor = 0usize;
                for (name, len) in segments {
                    out.insert(
                        name.clone(),
                        BoundValue::Array(words[cursor..cursor + len].to_vec()),
                    );
                    cursor += len;
                }
            }
            BitCodec::BitFlags { param } => {
                let flags: Vec<u64> = (0..genome.len()).map(|i| genome.bit(i) as u64).collect();
                out.insert(param.clone(), BoundValue::Array(flags));
            }
        }
        out
    }
}

/// Maps an [`IntGenome`] onto one integer-array parameter (the stride
/// coefficients of access template 2, Fig. 12).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntCodec {
    /// Parameter name (`COEFFS`).
    pub param: String,
}

impl IntCodec {
    /// Converts a chromosome into template bindings.
    pub fn bindings(&self, genome: &IntGenome) -> HashMap<String, BoundValue> {
        let mut out = HashMap::new();
        out.insert(
            self.param.clone(),
            BoundValue::Array(genome.values().to_vec()),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn word64_codec_roundtrip() {
        let codec = BitCodec::Word64 {
            param: "PATTERN".into(),
        };
        assert_eq!(codec.genome_bits(), 64);
        let g = BitGenome::from_words(&[0x3333_3333_3333_3333], 64);
        let b = codec.bindings(&g);
        assert_eq!(b["PATTERN"], BoundValue::Scalar(0x3333_3333_3333_3333));
    }

    #[test]
    fn word_arrays_codec_splits_in_order() {
        let codec = BitCodec::WordArrays {
            segments: vec![("A".into(), 2), ("B".into(), 1)],
        };
        assert_eq!(codec.genome_bits(), 192);
        let g = BitGenome::from_words(&[1, 2, 3], 192);
        let b = codec.bindings(&g);
        assert_eq!(b["A"], BoundValue::Array(vec![1, 2]));
        assert_eq!(b["B"], BoundValue::Array(vec![3]));
    }

    #[test]
    fn bit_flags_codec_exposes_bits() {
        let codec = BitCodec::BitFlags {
            param: "SEL".into(),
        };
        let g = BitGenome::from_words(&[0b1010], 64);
        let b = codec.bindings(&g);
        match &b["SEL"] {
            BoundValue::Array(flags) => {
                assert_eq!(flags.len(), 64);
                assert_eq!(&flags[..4], &[0, 1, 0, 1]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "genome length mismatch")]
    fn codec_validates_length() {
        let codec = BitCodec::Word64 { param: "P".into() };
        codec.bindings(&BitGenome::zeros(32));
    }

    #[test]
    fn int_codec_copies_values() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = IntGenome::random(&mut rng, 32, 0, 20);
        let codec = IntCodec {
            param: "COEFFS".into(),
        };
        let b = codec.bindings(&g);
        assert_eq!(b["COEFFS"], BoundValue::Array(g.values().to_vec()));
    }
}
