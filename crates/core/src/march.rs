//! Classic MARCH / MATS memory tests (paper §II "DRAM errors", §VII).
//!
//! Vendors test DRAM with MARCH-family algorithms: sequences of *march
//! elements*, each sweeping the address space in a direction while applying
//! read-verify and write operations. The paper's critique (§II, §VII) is
//! that these tests (a) assume the physical layout is known and (b) use
//! simple data backgrounds, so they miss the pattern-sensitive faults
//! DStress discovers. This module implements the standard algorithms so the
//! claim can be measured: the march experiments compare the CEs each test
//! manifests against the synthesized viruses.
//!
//! Notation (van de Goor): `⇕(w0); ⇑(r0,w1); ⇓(r1,w0)` — `⇑` ascending
//! sweep, `⇓` descending, `⇕` either; `w0/w1` write the 0/1 background,
//! `r0/r1` read and verify it.

use crate::error::DStressError;
use crate::evaluate::EvalOutcome;
use crate::scale::ExperimentScale;
use crate::search::DStress;
use dstress_platform::session::{MemoryBus, SessionError};
use serde::{Deserialize, Serialize};

/// One operation of a march element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MarchOp {
    /// Read the word and verify it holds the given background (false = the
    /// all-0 background, true = all-1).
    Read(bool),
    /// Write the given background.
    Write(bool),
}

/// Sweep direction of a march element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Ascending addresses (`⇑`).
    Up,
    /// Descending addresses (`⇓`).
    Down,
    /// Direction irrelevant (`⇕`); executed ascending.
    Either,
}

/// One march element: a direction and an operation sequence applied to
/// every word before moving to the next.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarchElement {
    /// Sweep direction.
    pub direction: Direction,
    /// Operations applied per word.
    pub ops: Vec<MarchOp>,
}

impl MarchElement {
    /// Builds an element from a compact spec string like `"r0,w1"`.
    ///
    /// # Panics
    ///
    /// Panics on malformed specs (these are compile-time constants in
    /// practice).
    pub fn parse(direction: Direction, spec: &str) -> Self {
        let ops = spec
            .split(',')
            .map(|op| match op.trim() {
                "r0" => MarchOp::Read(false),
                "r1" => MarchOp::Read(true),
                "w0" => MarchOp::Write(false),
                "w1" => MarchOp::Write(true),
                other => panic!("unknown march op `{other}`"),
            })
            .collect();
        MarchElement { direction, ops }
    }
}

/// A complete march test.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarchTest {
    /// Conventional name (e.g. `MARCH C-`).
    pub name: String,
    /// The march elements, in order.
    pub elements: Vec<MarchElement>,
}

/// The result of executing a march test.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarchRunReport {
    /// Read-verify mismatches observed by the test program itself.
    pub mismatches: u64,
    /// Words swept.
    pub words: u64,
    /// Total session operations issued.
    pub operations: u64,
}

impl MarchTest {
    /// MATS+ — the minimal test for address decoder + stuck-at faults:
    /// `⇕(w0); ⇑(r0,w1); ⇓(r1,w0)`.
    pub fn mats_plus() -> Self {
        MarchTest {
            name: "MATS+".into(),
            elements: vec![
                MarchElement::parse(Direction::Either, "w0"),
                MarchElement::parse(Direction::Up, "r0,w1"),
                MarchElement::parse(Direction::Down, "r1,w0"),
            ],
        }
    }

    /// MARCH X — adds coupling-fault coverage:
    /// `⇕(w0); ⇑(r0,w1); ⇓(r1,w0); ⇕(r0)`.
    pub fn march_x() -> Self {
        MarchTest {
            name: "MARCH X".into(),
            elements: vec![
                MarchElement::parse(Direction::Either, "w0"),
                MarchElement::parse(Direction::Up, "r0,w1"),
                MarchElement::parse(Direction::Down, "r1,w0"),
                MarchElement::parse(Direction::Either, "r0"),
            ],
        }
    }

    /// MARCH C- — the industry workhorse for unlinked idempotent coupling
    /// faults: `⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)`.
    pub fn march_cminus() -> Self {
        MarchTest {
            name: "MARCH C-".into(),
            elements: vec![
                MarchElement::parse(Direction::Either, "w0"),
                MarchElement::parse(Direction::Up, "r0,w1"),
                MarchElement::parse(Direction::Up, "r1,w0"),
                MarchElement::parse(Direction::Down, "r0,w1"),
                MarchElement::parse(Direction::Down, "r1,w0"),
                MarchElement::parse(Direction::Either, "r0"),
            ],
        }
    }

    /// MSCAN — the simple scan the paper's BIST discussion mentions:
    /// `⇕(w0); ⇕(r0); ⇕(w1); ⇕(r1)`.
    pub fn mscan() -> Self {
        MarchTest {
            name: "MSCAN".into(),
            elements: vec![
                MarchElement::parse(Direction::Either, "w0"),
                MarchElement::parse(Direction::Either, "r0"),
                MarchElement::parse(Direction::Either, "w1"),
                MarchElement::parse(Direction::Either, "r1"),
            ],
        }
    }

    /// All implemented tests.
    pub fn all() -> Vec<MarchTest> {
        vec![
            MarchTest::mscan(),
            MarchTest::mats_plus(),
            MarchTest::march_x(),
            MarchTest::march_cminus(),
        ]
    }

    /// The background word for a 0/1 march background.
    fn background(bit: bool) -> u64 {
        if bit {
            u64::MAX
        } else {
            0
        }
    }

    /// Executes the test over `words` 64-bit words starting at `base`,
    /// issuing every operation through the session (so the access trace is
    /// recorded like any workload's).
    ///
    /// # Errors
    ///
    /// Propagates session memory errors.
    pub fn execute(
        &self,
        session: &mut dyn MemoryBus,
        base: u64,
        words: u64,
    ) -> Result<MarchRunReport, SessionError> {
        let mut mismatches = 0u64;
        let mut operations = 0u64;
        for element in &self.elements {
            let indices: Box<dyn Iterator<Item = u64>> = match element.direction {
                Direction::Up | Direction::Either => Box::new(0..words),
                Direction::Down => Box::new((0..words).rev()),
            };
            for w in indices {
                let addr = base + w * 8;
                for op in &element.ops {
                    operations += 1;
                    match op {
                        MarchOp::Read(expected) => {
                            let value = session.read_u64(addr)?;
                            if value != Self::background(*expected) {
                                mismatches += 1;
                            }
                        }
                        MarchOp::Write(bit) => {
                            session.write_u64(addr, Self::background(*bit))?;
                        }
                    }
                }
            }
        }
        Ok(MarchRunReport {
            mismatches,
            words,
            operations,
        })
    }

    /// Theoretical complexity in operations per word (the conventional
    /// `xN` rating: MATS+ is 5N, MARCH C- is 10N…).
    pub fn ops_per_word(&self) -> usize {
        self.elements.iter().map(|e| e.ops.len()).sum()
    }
}

/// Runs a march test as a stress workload on the target DIMM and measures
/// the ECC errors it manifests (the march analogue of the Fig. 8e
/// micro-benchmark comparison).
///
/// # Errors
///
/// Propagates session and evaluation failures.
pub fn measure_march(
    dstress: &DStress,
    test: &MarchTest,
    temp_c: f64,
) -> Result<(EvalOutcome, MarchRunReport), DStressError> {
    let scale: &ExperimentScale = &dstress.scale;
    let mut server = dstress.server_at(temp_c)?;
    server.reset_memory();
    let words = scale.dimm_words();
    let mut session = server.session(2);
    let base = session
        .alloc(words * 8)
        .map_err(|e| DStressError::Experiment(format!("march allocation failed: {e}")))?;
    let report = test
        .execute(&mut session, base, words)
        .map_err(|e| DStressError::Experiment(format!("march execution failed: {e}")))?;
    let run = session.finish();
    let outcomes = server.evaluate_runs(&run, scale.runs_per_virus, 0x3A6C)?;
    let total_ce: u64 = outcomes.iter().map(|o| o.totals.ce).sum();
    let total_ue: u64 = outcomes.iter().map(|o| o.totals.ue).sum();
    let ue_runs = outcomes.iter().filter(|o| o.stopped_on_ue).count() as u32;
    let outcome = EvalOutcome {
        fitness: total_ce as f64 / outcomes.len().max(1) as f64,
        total_ce,
        total_ue,
        ue_runs,
        trace_len: run.len(),
    };
    Ok((outcome, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ExperimentScale;
    use std::collections::HashMap;

    /// Minimal in-memory bus for element-semantics tests.
    #[derive(Default)]
    struct MockBus {
        memory: HashMap<u64, u64>,
        cursor: u64,
        log: Vec<(u64, bool)>,
    }

    impl MemoryBus for MockBus {
        fn alloc(&mut self, bytes: u64) -> Result<u64, SessionError> {
            let base = self.cursor;
            self.cursor += bytes;
            Ok(base)
        }
        fn read_u64(&mut self, addr: u64) -> Result<u64, SessionError> {
            self.log.push((addr, false));
            Ok(self.memory.get(&addr).copied().unwrap_or(0))
        }
        fn write_u64(&mut self, addr: u64, value: u64) -> Result<(), SessionError> {
            self.log.push((addr, true));
            self.memory.insert(addr, value);
            Ok(())
        }
    }

    #[test]
    fn element_parsing() {
        let e = MarchElement::parse(Direction::Up, "r0,w1");
        assert_eq!(e.ops, vec![MarchOp::Read(false), MarchOp::Write(true)]);
    }

    #[test]
    #[should_panic(expected = "unknown march op")]
    fn bad_spec_panics() {
        MarchElement::parse(Direction::Up, "r2");
    }

    #[test]
    fn complexity_ratings_match_the_literature() {
        assert_eq!(MarchTest::mats_plus().ops_per_word(), 5);
        assert_eq!(MarchTest::march_x().ops_per_word(), 6);
        assert_eq!(MarchTest::march_cminus().ops_per_word(), 10);
        assert_eq!(MarchTest::mscan().ops_per_word(), 4);
    }

    #[test]
    fn march_cminus_passes_on_healthy_memory() {
        let mut bus = MockBus::default();
        let report = MarchTest::march_cminus().execute(&mut bus, 0, 32).unwrap();
        assert_eq!(report.mismatches, 0);
        assert_eq!(report.operations, 10 * 32);
        assert_eq!(report.words, 32);
    }

    #[test]
    fn march_detects_a_planted_stuck_at_fault() {
        // Plant a stuck-at-1 bit: a write of 0 leaves bit 5 set.
        struct StuckBus {
            inner: MockBus,
            fault_addr: u64,
        }
        impl MemoryBus for StuckBus {
            fn alloc(&mut self, bytes: u64) -> Result<u64, SessionError> {
                self.inner.alloc(bytes)
            }
            fn read_u64(&mut self, addr: u64) -> Result<u64, SessionError> {
                let v = self.inner.read_u64(addr)?;
                Ok(if addr == self.fault_addr {
                    v | (1 << 5)
                } else {
                    v
                })
            }
            fn write_u64(&mut self, addr: u64, value: u64) -> Result<(), SessionError> {
                self.inner.write_u64(addr, value)
            }
        }
        let mut bus = StuckBus {
            inner: MockBus::default(),
            fault_addr: 8 * 3,
        };
        let report = MarchTest::mats_plus().execute(&mut bus, 0, 16).unwrap();
        // r0 sees the stuck bit in elements reading the 0 background.
        assert!(report.mismatches > 0, "stuck-at fault must be detected");
    }

    #[test]
    fn descending_elements_sweep_downward() {
        let mut bus = MockBus::default();
        MarchTest::mats_plus().execute(&mut bus, 0, 4).unwrap();
        // Element 3 (⇓ r1,w0) must touch addresses in descending order:
        // find the last 8 log entries (4 words x r+w).
        let tail: Vec<u64> = bus.log[bus.log.len() - 8..]
            .iter()
            .map(|(a, _)| *a)
            .collect();
        assert_eq!(tail, vec![24, 24, 16, 16, 8, 8, 0, 0]);
    }

    #[test]
    fn march_as_stress_workload_manifests_fewer_ces_than_the_worst_virus() {
        // The paper's point (§VII): MARCH tests use simple backgrounds, so
        // they under-stress pattern-sensitive cells.
        let dstress = DStress::new(ExperimentScale::quick(), 21);
        let (march, report) = measure_march(&dstress, &MarchTest::march_cminus(), 60.0).unwrap();
        assert_eq!(report.mismatches, 0);
        let virus = dstress
            .measure(
                &crate::search::EnvKind::Word64,
                [(
                    "PATTERN".to_string(),
                    dstress_vpl::BoundValue::Scalar(crate::search::WORST_WORD),
                )]
                .into(),
                60.0,
                crate::evaluate::Metric::CeAverage,
            )
            .unwrap();
        assert!(
            virus.fitness > march.fitness,
            "virus {} must beat MARCH C- {}",
            virus.fitness,
            march.fitness
        );
    }
}

/// How well each MARCH test detects a set of injected classic faults
/// (stuck-at, transition, coupling) — the fault classes the MARCH
/// literature designs for. Pattern-sensitive *retention* weaknesses are a
/// different population: no MARCH background reaches them (that is the
/// paper's thesis, and the [`measure_march`] comparison shows it).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectionReport {
    /// Faults injected per class: (stuck-at, transition, coupling).
    pub injected: (usize, usize, usize),
    /// `(test name, read-verify mismatches)` per MARCH algorithm.
    pub detections: Vec<(String, u64)>,
}

/// Injects a deterministic set of classic faults into DIMM2 and runs every
/// MARCH algorithm against them.
///
/// # Errors
///
/// Propagates session failures.
pub fn fault_detection(
    dstress: &DStress,
    stuck: usize,
    transition: usize,
    coupling: usize,
) -> Result<DetectionReport, DStressError> {
    use dstress_dram::{Location, LogicalFault};
    let scale = &dstress.scale;
    let geo = scale.server.dimm.geometry;
    let words = scale.dimm_words();
    let mut detections = Vec::new();
    for test in MarchTest::all() {
        // A fresh server per test so earlier sweeps don't mask faults.
        let mut server = dstress.server_at(scale.server.ambient_c)?;
        let place = |i: usize, salt: u32| -> Location {
            // Deterministic spread across the DIMM.
            let idx = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
            Location::new(
                (idx % geo.ranks as u32) as u8,
                ((idx >> 3) % geo.banks as u32) as u8,
                (idx >> 7) % geo.rows_per_bank,
                (idx >> 12) % geo.words_per_row() as u32,
            )
        };
        for i in 0..stuck {
            server.dimm_mut(2).inject_fault(LogicalFault::StuckAt {
                loc: place(i, 1),
                bit: (i % 64) as u8,
                value: i % 2 == 0,
            });
        }
        for i in 0..transition {
            server.dimm_mut(2).inject_fault(LogicalFault::Transition {
                loc: place(i, 2),
                bit: (i % 64) as u8,
                to: i % 2 == 0,
            });
        }
        for i in 0..coupling {
            server.dimm_mut(2).inject_fault(LogicalFault::Coupling {
                aggressor: place(i, 3),
                aggressor_bit: (i % 64) as u8,
                trigger: true,
                victim: place(i, 4),
                victim_bit: ((i + 13) % 64) as u8,
                victim_value: i % 2 == 1,
            });
        }
        let mut session = server.session(2);
        let base = session
            .alloc(words * 8)
            .map_err(|e| DStressError::Experiment(format!("march allocation failed: {e}")))?;
        let report = test
            .execute(&mut session, base, words)
            .map_err(|e| DStressError::Experiment(format!("march execution failed: {e}")))?;
        detections.push((test.name.clone(), report.mismatches));
    }
    Ok(DetectionReport {
        injected: (stuck, transition, coupling),
        detections,
    })
}

#[cfg(test)]
mod detection_tests {
    use super::*;
    use crate::scale::ExperimentScale;

    #[test]
    fn march_cminus_is_the_strongest_detector() {
        let dstress = DStress::new(ExperimentScale::quick(), 61);
        let report = fault_detection(&dstress, 6, 6, 6).unwrap();
        let get = |name: &str| -> u64 {
            report
                .detections
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, d)| *d)
                .expect("test present")
        };
        // Every algorithm sees the stuck-at faults.
        for (name, d) in &report.detections {
            assert!(*d > 0, "{name} detected nothing");
        }
        // MARCH C- (10N, both directions) dominates the simple scans.
        assert!(get("MARCH C-") >= get("MSCAN"), "C- must dominate MSCAN");
        assert!(get("MARCH C-") >= get("MATS+"), "C- must dominate MATS+");
    }

    #[test]
    fn healthy_memory_yields_no_detections() {
        let dstress = DStress::new(ExperimentScale::quick(), 62);
        let report = fault_detection(&dstress, 0, 0, 0).unwrap();
        for (name, d) in &report.detections {
            assert_eq!(*d, 0, "{name} mismatched on a healthy DIMM");
        }
    }
}
