//! SECDED (72,64) ECC, as implemented by server-grade memory controllers.
//!
//! The paper's fitness signal is the ECC hardware of the X-Gene 2 server:
//! single-bit errors per 64-bit word are corrected and counted as CEs
//! (Correctable Errors), 2-bit errors are detected and counted as UEs
//! (Uncorrectable Errors), and words with more than two flipped bits may
//! escape detection or be miscorrected — Silent Data Corruption (§III-C).
//!
//! This crate implements a real extended Hamming (72,64) code rather than a
//! lookup-table stub, so multi-bit behaviour (the 100 % 2-bit detection
//! guarantee and the probabilistic fate of ≥3-bit words) is faithful.
//!
//! * [`hamming`] — code construction, encode, syndrome decode.
//! * [`classify`] — mapping raw in-DRAM bit flips to ECC events.
//! * [`counters`] — EDAC-style CE/UE/SDC counters.
//!
//! # Examples
//!
//! ```
//! use dstress_ecc::{Codeword, EccEvent};
//!
//! let cw = Codeword::encode(0xDEAD_BEEF_0123_4567);
//! // Flip one data bit in "DRAM":
//! let faulty = cw.with_data_flips(1 << 17);
//! match faulty.decode() {
//!     EccEvent::Corrected { data, .. } => assert_eq!(data, 0xDEAD_BEEF_0123_4567),
//!     other => panic!("expected correction, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod counters;
pub mod hamming;

pub use classify::{classify_flips, EventKind};
pub use counters::{CounterSnapshot, EccCounters};
pub use hamming::{Codeword, EccEvent, CHECK_BITS, DATA_BITS, TOTAL_BITS};
