//! EDAC-style error counters.
//!
//! Linux exposes per-DIMM/rank CE/UE counts through the EDAC subsystem; the
//! paper reads those to drive the GA fitness function and to draw the polar
//! distribution of Fig. 1b. [`EccCounters`] is the simulated equivalent:
//! thread-safe tallies of each [`EventKind`] that can be snapshotted and
//! diffed around a virus run.

use crate::classify::EventKind;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Correctable (single-bit) errors.
    pub ce: u64,
    /// Detected uncorrectable errors.
    pub ue: u64,
    /// Silent miscorrections (≥3-bit words "corrected" to wrong data).
    pub sdc_miscorrected: u64,
    /// Undetected multi-bit errors.
    pub sdc_undetected: u64,
    /// Clean reads observed.
    pub clean: u64,
}

impl CounterSnapshot {
    /// Total visible errors (CE + UE) — what real EDAC hardware can report.
    pub fn visible(&self) -> u64 {
        self.ce + self.ue
    }

    /// Total silent corruptions — observable only in simulation, where
    /// ground truth is known.
    pub fn silent(&self) -> u64 {
        self.sdc_miscorrected + self.sdc_undetected
    }

    /// Tallies one decode outcome into this snapshot. The lock-free local
    /// accumulator behind per-run deltas: callers that already know which
    /// events a run produced can count them here instead of diffing two
    /// full [`EccCounters`] snapshots around the run.
    pub fn count(&mut self, kind: EventKind) {
        match kind {
            EventKind::None => self.clean += 1,
            EventKind::Ce => self.ce += 1,
            EventKind::Ue => self.ue += 1,
            EventKind::SdcMiscorrected => self.sdc_miscorrected += 1,
            EventKind::SdcUndetected => self.sdc_undetected += 1,
        }
    }

    /// Element-wise difference `self - earlier`, saturating at zero.
    #[must_use]
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            ce: self.ce.saturating_sub(earlier.ce),
            ue: self.ue.saturating_sub(earlier.ue),
            sdc_miscorrected: self
                .sdc_miscorrected
                .saturating_sub(earlier.sdc_miscorrected),
            sdc_undetected: self.sdc_undetected.saturating_sub(earlier.sdc_undetected),
            clean: self.clean.saturating_sub(earlier.clean),
        }
    }
}

impl std::ops::Add for CounterSnapshot {
    type Output = CounterSnapshot;

    fn add(self, rhs: CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            ce: self.ce + rhs.ce,
            ue: self.ue + rhs.ue,
            sdc_miscorrected: self.sdc_miscorrected + rhs.sdc_miscorrected,
            sdc_undetected: self.sdc_undetected + rhs.sdc_undetected,
            clean: self.clean + rhs.clean,
        }
    }
}

/// Thread-safe CE/UE/SDC tallies for one error domain (a DIMM rank, an MCU…).
///
/// # Examples
///
/// ```
/// use dstress_ecc::{EccCounters, EventKind};
///
/// let counters = EccCounters::new();
/// counters.record(EventKind::Ce);
/// counters.record(EventKind::Ue);
/// let snap = counters.snapshot();
/// assert_eq!(snap.ce, 1);
/// assert_eq!(snap.visible(), 2);
/// ```
#[derive(Debug, Default)]
pub struct EccCounters {
    inner: Mutex<CounterSnapshot>,
}

impl Clone for EccCounters {
    /// Clones by snapshotting: the replica starts with the same counts but
    /// its own lock, so parallel evaluation workers can own independent
    /// copies of a server.
    fn clone(&self) -> Self {
        EccCounters {
            inner: Mutex::new(self.snapshot()),
        }
    }
}

impl EccCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        EccCounters::default()
    }

    /// Records one decode outcome.
    pub fn record(&self, kind: EventKind) {
        let mut c = self.inner.lock();
        match kind {
            EventKind::None => c.clean += 1,
            EventKind::Ce => c.ce += 1,
            EventKind::Ue => c.ue += 1,
            EventKind::SdcMiscorrected => c.sdc_miscorrected += 1,
            EventKind::SdcUndetected => c.sdc_undetected += 1,
        }
    }

    /// Records many outcomes of the same kind at once (bulk scrub results).
    pub fn record_many(&self, kind: EventKind, count: u64) {
        let mut c = self.inner.lock();
        match kind {
            EventKind::None => c.clean += count,
            EventKind::Ce => c.ce += count,
            EventKind::Ue => c.ue += count,
            EventKind::SdcMiscorrected => c.sdc_miscorrected += count,
            EventKind::SdcUndetected => c.sdc_undetected += count,
        }
    }

    /// Returns a copy of the current tallies.
    pub fn snapshot(&self) -> CounterSnapshot {
        *self.inner.lock()
    }

    /// Resets all tallies to zero (the paper clears EDAC counters between
    /// virus runs).
    pub fn reset(&self) {
        *self.inner.lock() = CounterSnapshot::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn records_each_kind() {
        let c = EccCounters::new();
        c.record(EventKind::None);
        c.record(EventKind::Ce);
        c.record(EventKind::Ce);
        c.record(EventKind::Ue);
        c.record(EventKind::SdcMiscorrected);
        c.record(EventKind::SdcUndetected);
        let s = c.snapshot();
        assert_eq!(s.clean, 1);
        assert_eq!(s.ce, 2);
        assert_eq!(s.ue, 1);
        assert_eq!(s.sdc_miscorrected, 1);
        assert_eq!(s.sdc_undetected, 1);
        assert_eq!(s.visible(), 3);
        assert_eq!(s.silent(), 2);
    }

    #[test]
    fn record_many_bulk() {
        let c = EccCounters::new();
        c.record_many(EventKind::Ce, 1000);
        assert_eq!(c.snapshot().ce, 1000);
    }

    #[test]
    fn reset_zeroes() {
        let c = EccCounters::new();
        c.record(EventKind::Ce);
        c.reset();
        assert_eq!(c.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn since_diffs_and_saturates() {
        let a = CounterSnapshot {
            ce: 10,
            ue: 1,
            sdc_miscorrected: 0,
            sdc_undetected: 0,
            clean: 5,
        };
        let b = CounterSnapshot {
            ce: 4,
            ue: 2,
            sdc_miscorrected: 0,
            sdc_undetected: 0,
            clean: 1,
        };
        let d = a.since(&b);
        assert_eq!(d.ce, 6);
        assert_eq!(d.ue, 0, "saturating subtraction");
        assert_eq!(d.clean, 4);
    }

    #[test]
    fn add_is_elementwise() {
        let a = CounterSnapshot {
            ce: 1,
            ue: 2,
            sdc_miscorrected: 3,
            sdc_undetected: 4,
            clean: 5,
        };
        let sum = a + a;
        assert_eq!(sum.ce, 2);
        assert_eq!(sum.ue, 4);
        assert_eq!(sum.sdc_miscorrected, 6);
        assert_eq!(sum.sdc_undetected, 8);
        assert_eq!(sum.clean, 10);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let c = Arc::new(EccCounters::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.record(EventKind::Ce);
                }
            }));
        }
        for h in handles {
            h.join().expect("thread panicked");
        }
        assert_eq!(c.snapshot().ce, 8000);
    }
}
