//! Extended Hamming (72,64) SECDED code.
//!
//! The code stores 64 data bits plus 8 check bits per word: seven Hamming
//! check bits (placed at power-of-two syndrome positions) and one overall
//! parity bit. Single-bit errors produce a non-zero syndrome *and* odd
//! overall parity and are correctable; double-bit errors produce a non-zero
//! syndrome with even parity and are detected-uncorrectable; three or more
//! flipped bits may alias onto a valid single-bit syndrome (miscorrection) or
//! onto the zero syndrome (undetected) — silent data corruption.

use serde::{Deserialize, Serialize};

/// Number of data bits per ECC word.
pub const DATA_BITS: usize = 64;
/// Number of check bits per ECC word (7 Hamming + 1 overall parity).
pub const CHECK_BITS: usize = 8;
/// Total stored bits per ECC word.
pub const TOTAL_BITS: usize = DATA_BITS + CHECK_BITS;

/// Syndrome position assigned to each data bit: the `i`-th positive integer
/// that is not a power of two (Hamming positions 3, 5, 6, 7, 9, …).
const fn data_positions() -> [u8; DATA_BITS] {
    let mut positions = [0u8; DATA_BITS];
    let mut pos: u8 = 1;
    let mut i = 0;
    while i < DATA_BITS {
        pos += 1;
        if pos & (pos - 1) != 0 {
            positions[i] = pos;
            i += 1;
        }
    }
    positions
}

/// Hamming positions of the 64 data bits (data bit `i` ↔ position
/// `DATA_POSITIONS[i]`).
pub const DATA_POSITIONS: [u8; DATA_BITS] = data_positions();

/// Inverse map: syndrome value → data bit index (or `u8::MAX` when the
/// syndrome does not address a data bit).
const fn syndrome_to_data() -> [u8; 128] {
    let mut map = [u8::MAX; 128];
    let positions = data_positions();
    let mut i = 0;
    while i < DATA_BITS {
        map[positions[i] as usize] = i as u8;
        i += 1;
    }
    map
}

const SYNDROME_TO_DATA: [u8; 128] = syndrome_to_data();

/// A stored 72-bit ECC word: 64 data bits plus the 8-bit check byte.
///
/// Bit 7 of [`Self::check`] is the overall parity bit; bits 0–6 are the
/// Hamming check bits `c_j` (position `2^j`).
///
/// # Examples
///
/// ```
/// use dstress_ecc::Codeword;
///
/// let cw = Codeword::encode(42);
/// assert_eq!(cw.data(), 42);
/// assert!(matches!(cw.decode(), dstress_ecc::EccEvent::Clean { data: 42 }));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Codeword {
    data: u64,
    check: u8,
}

/// What the memory controller observes when reading a (possibly corrupted)
/// ECC word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EccEvent {
    /// Zero syndrome, even parity: the word is accepted as error-free.
    Clean {
        /// The data returned to the reader.
        data: u64,
    },
    /// A single-bit error was corrected (in a data bit, a check bit, or the
    /// parity bit itself).
    Corrected {
        /// The data returned to the reader after correction.
        data: u64,
        /// Which stored bit was corrected: `0..64` = data bit, `64..71` =
        /// Hamming check bit, `71` = overall parity bit.
        bit: u8,
    },
    /// Non-zero syndrome with even overall parity (or a syndrome addressing
    /// no stored bit): detected but uncorrectable. Server firmware typically
    /// raises a machine-check; the paper's framework stops the virus run.
    DetectedUncorrectable,
}

impl Codeword {
    /// Encodes 64 data bits into a SECDED codeword.
    pub fn encode(data: u64) -> Self {
        let mut syndrome = 0u8;
        let mut bits = data;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            syndrome ^= DATA_POSITIONS[i];
            bits &= bits - 1;
        }
        // Hamming check bits cancel the data syndrome (c_j = syndrome bit j).
        let hamming = syndrome & 0x7F;
        // Overall parity covers all 71 Hamming-position bits; choose the
        // parity bit so the total number of ones is even.
        let ones = data.count_ones() + (hamming as u32).count_ones();
        let parity = (ones & 1) as u8;
        Codeword {
            data,
            check: hamming | (parity << 7),
        }
    }

    /// Reconstructs a codeword from raw stored bits (e.g. read back from the
    /// simulated DRAM array) without any checking.
    pub fn from_raw(data: u64, check: u8) -> Self {
        Codeword { data, check }
    }

    /// The stored data bits (as stored, before any decode/correction).
    pub fn data(&self) -> u64 {
        self.data
    }

    /// The stored check byte (bits 0–6 Hamming, bit 7 overall parity).
    pub fn check(&self) -> u8 {
        self.check
    }

    /// Returns a copy with the given data bits flipped (a fault-injection
    /// helper modelling in-array retention errors).
    #[must_use]
    pub fn with_data_flips(&self, mask: u64) -> Self {
        Codeword {
            data: self.data ^ mask,
            check: self.check,
        }
    }

    /// Returns a copy with the given check bits flipped (faults in the ECC
    /// chip of the DIMM).
    #[must_use]
    pub fn with_check_flips(&self, mask: u8) -> Self {
        Codeword {
            data: self.data,
            check: self.check ^ mask,
        }
    }

    /// Total number of flipped bits relative to a reference codeword.
    pub fn distance(&self, other: &Codeword) -> u32 {
        (self.data ^ other.data).count_ones() + (self.check ^ other.check).count_ones()
    }

    /// Computes the 7-bit Hamming syndrome of the stored word.
    fn syndrome(&self) -> u8 {
        let mut syndrome = 0u8;
        let mut bits = self.data;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            syndrome ^= DATA_POSITIONS[i];
            bits &= bits - 1;
        }
        // Check bit j sits at position 2^j and contributes itself.
        syndrome ^ (self.check & 0x7F)
    }

    /// Overall parity of all 72 stored bits (0 = even, as encoded).
    fn overall_parity(&self) -> u8 {
        ((self.data.count_ones() + (self.check as u32).count_ones()) & 1) as u8
    }

    /// Syndrome-decodes the stored word, exactly as a SECDED memory
    /// controller would.
    pub fn decode(&self) -> EccEvent {
        let syndrome = self.syndrome();
        let parity = self.overall_parity();
        match (syndrome, parity == 1) {
            (0, false) => EccEvent::Clean { data: self.data },
            (0, true) => {
                // Only the overall parity bit disagrees: correct it.
                EccEvent::Corrected {
                    data: self.data,
                    bit: 71,
                }
            }
            (s, true) => {
                // Odd parity, non-zero syndrome: single-bit error at
                // position `s` (if that position is in use).
                if s.count_ones() == 1 {
                    let j = s.trailing_zeros() as u8;
                    EccEvent::Corrected {
                        data: self.data,
                        bit: 64 + j,
                    }
                } else {
                    let idx = SYNDROME_TO_DATA[s as usize];
                    if idx == u8::MAX {
                        // Syndrome addresses an unused (shortened) position:
                        // cannot be a single-bit error.
                        EccEvent::DetectedUncorrectable
                    } else {
                        EccEvent::Corrected {
                            data: self.data ^ (1u64 << idx),
                            bit: idx,
                        }
                    }
                }
            }
            (_, false) => {
                // Even parity with a non-zero syndrome: an even number of
                // bits (>= 2) flipped. Always detected, never corrected.
                EccEvent::DetectedUncorrectable
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn data_positions_are_distinct_non_powers_of_two() {
        let mut seen = [false; 128];
        for &p in DATA_POSITIONS.iter() {
            assert!(p >= 3);
            assert_ne!(p & (p - 1), 0, "position {p} is a power of two");
            assert!(!seen[p as usize], "duplicate position {p}");
            seen[p as usize] = true;
        }
    }

    #[test]
    fn clean_roundtrip() {
        for data in [0u64, u64::MAX, 0xDEAD_BEEF_CAFE_F00D, 1, 1 << 63] {
            let cw = Codeword::encode(data);
            assert_eq!(cw.decode(), EccEvent::Clean { data });
        }
    }

    #[test]
    fn every_single_data_bit_flip_is_corrected() {
        let data = 0xA5A5_5A5A_0FF0_1234u64;
        let cw = Codeword::encode(data);
        for i in 0..64 {
            let faulty = cw.with_data_flips(1u64 << i);
            match faulty.decode() {
                EccEvent::Corrected { data: d, bit } => {
                    assert_eq!(d, data, "bit {i} not restored");
                    assert_eq!(bit, i as u8);
                }
                other => panic!("bit {i}: expected correction, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_check_bit_flip_is_corrected() {
        let cw = Codeword::encode(0x0123_4567_89AB_CDEF);
        for j in 0..8u8 {
            let faulty = cw.with_check_flips(1 << j);
            match faulty.decode() {
                EccEvent::Corrected { data, bit } => {
                    assert_eq!(data, 0x0123_4567_89AB_CDEF);
                    assert_eq!(bit, 64 + j.min(7), "check bit {j}");
                    if j == 7 {
                        assert_eq!(bit, 71);
                    }
                }
                other => panic!("check bit {j}: expected correction, got {other:?}"),
            }
        }
    }

    #[test]
    fn all_double_data_bit_flips_are_detected() {
        // SECDED guarantees 100 % detection of 2-bit errors (paper §III-C).
        let data = 0xFEDC_BA98_7654_3210u64;
        let cw = Codeword::encode(data);
        for i in 0..64 {
            for j in (i + 1)..64 {
                let faulty = cw.with_data_flips((1u64 << i) | (1u64 << j));
                assert_eq!(
                    faulty.decode(),
                    EccEvent::DetectedUncorrectable,
                    "bits ({i},{j}) escaped detection"
                );
            }
        }
    }

    #[test]
    fn mixed_data_check_double_flips_are_detected() {
        let cw = Codeword::encode(0x1122_3344_5566_7788);
        for i in 0..64 {
            for j in 0..8 {
                let faulty = cw.with_data_flips(1u64 << i).with_check_flips(1 << j);
                assert_eq!(
                    faulty.decode(),
                    EccEvent::DetectedUncorrectable,
                    "data {i} + check {j}"
                );
            }
        }
    }

    #[test]
    fn triple_flips_never_decode_clean_silently_as_clean_with_wrong_data() {
        // A 3-bit error has odd parity, so it is never reported Clean; it is
        // either miscorrected (SDC) or flagged via an invalid syndrome.
        let data = 0x0F0F_F0F0_3C3C_C3C3u64;
        let cw = Codeword::encode(data);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..2000 {
            let mut mask = 0u64;
            while mask.count_ones() < 3 {
                mask |= 1u64 << rng.gen_range(0..64);
            }
            let faulty = cw.with_data_flips(mask);
            match faulty.decode() {
                EccEvent::Clean { .. } => panic!("3-bit error decoded Clean"),
                EccEvent::Corrected { data: d, .. } => {
                    // Miscorrection: returned data differs from the original.
                    assert_ne!(d, data, "3-bit error cannot be truly corrected");
                }
                EccEvent::DetectedUncorrectable => {}
            }
        }
    }

    #[test]
    fn from_raw_preserves_bits() {
        let cw = Codeword::from_raw(0xABCD, 0x5A);
        assert_eq!(cw.data(), 0xABCD);
        assert_eq!(cw.check(), 0x5A);
    }

    #[test]
    fn distance_counts_all_differing_bits() {
        let a = Codeword::from_raw(0b1010, 0x01);
        let b = Codeword::from_raw(0b0110, 0x03);
        assert_eq!(a.distance(&b), 3);
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(data in any::<u64>()) {
            prop_assert_eq!(Codeword::encode(data).decode(), EccEvent::Clean { data });
        }

        #[test]
        fn single_flip_always_corrects_to_original(data in any::<u64>(), bit in 0usize..72) {
            let cw = Codeword::encode(data);
            let faulty = if bit < 64 {
                cw.with_data_flips(1u64 << bit)
            } else {
                cw.with_check_flips(1u8 << (bit - 64))
            };
            match faulty.decode() {
                EccEvent::Corrected { data: d, .. } => prop_assert_eq!(d, data),
                other => prop_assert!(false, "expected correction, got {:?}", other),
            }
        }

        #[test]
        fn double_flip_always_detected(data in any::<u64>(), a in 0usize..72, b in 0usize..72) {
            prop_assume!(a != b);
            let cw = Codeword::encode(data);
            let mut faulty = cw;
            for &bit in &[a, b] {
                faulty = if bit < 64 {
                    faulty.with_data_flips(1u64 << bit)
                } else {
                    faulty.with_check_flips(1u8 << (bit - 64))
                };
            }
            prop_assert_eq!(faulty.decode(), EccEvent::DetectedUncorrectable);
        }

        #[test]
        fn encoded_words_have_even_total_parity(data in any::<u64>()) {
            let cw = Codeword::encode(data);
            let ones = cw.data().count_ones() + (cw.check() as u32).count_ones();
            prop_assert_eq!(ones % 2, 0);
        }
    }
}
