//! Classification of raw in-DRAM bit flips into ECC events.
//!
//! The DRAM simulator reports which stored bits of a word leaked; this module
//! answers "what does the platform observe": a correctable error (CE), an
//! uncorrectable error (UE), or silent data corruption (SDC) — either an
//! undetected multi-bit error or a miscorrection that *changes* the data.

use crate::hamming::{Codeword, EccEvent};
use serde::{Deserialize, Serialize};

/// The observable outcome of reading one ECC word that suffered bit flips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// No bits flipped; the read is clean.
    None,
    /// Correctable error: the controller restored the original data
    /// (single-bit error, counted as a CE by the paper's fitness function).
    Ce,
    /// Detected uncorrectable error (2-bit, or an invalid syndrome). The
    /// paper's framework stops the virus run when a UE is raised (§V-A.1).
    Ue,
    /// The decoder "corrected" the word to something other than the original
    /// data: silent data corruption by miscorrection (≥3 flips).
    SdcMiscorrected,
    /// The flips formed another valid codeword and passed undetected (≥4
    /// flips): silent data corruption.
    SdcUndetected,
}

impl EventKind {
    /// Whether this event is visible to the platform's error counters at all
    /// (SDCs by definition are not).
    pub fn is_visible(&self) -> bool {
        matches!(self, EventKind::Ce | EventKind::Ue)
    }

    /// Whether the delivered data differs from what was written.
    pub fn corrupts_data(&self) -> bool {
        matches!(self, EventKind::SdcMiscorrected | EventKind::SdcUndetected)
    }
}

impl std::fmt::Display for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EventKind::None => "none",
            EventKind::Ce => "CE",
            EventKind::Ue => "UE",
            EventKind::SdcMiscorrected => "SDC(miscorrected)",
            EventKind::SdcUndetected => "SDC(undetected)",
        };
        f.write_str(s)
    }
}

/// Classifies the flips suffered by one stored word.
///
/// `data` is the originally written 64-bit value; `data_flips` / `check_flips`
/// are masks of the bits that leaked in the array (data bits and ECC-chip
/// bits respectively).
///
/// # Examples
///
/// ```
/// use dstress_ecc::{classify_flips, EventKind};
///
/// assert_eq!(classify_flips(0xFFFF, 0, 0), EventKind::None);
/// assert_eq!(classify_flips(0xFFFF, 0b1, 0), EventKind::Ce);
/// assert_eq!(classify_flips(0xFFFF, 0b11, 0), EventKind::Ue);
/// ```
pub fn classify_flips(data: u64, data_flips: u64, check_flips: u8) -> EventKind {
    if data_flips == 0 && check_flips == 0 {
        return EventKind::None;
    }
    let stored = Codeword::encode(data)
        .with_data_flips(data_flips)
        .with_check_flips(check_flips);
    match stored.decode() {
        EccEvent::Clean { data: d } => {
            if d == data {
                // Flips cancelled out inside check bits only and parity —
                // impossible for a non-zero mask in a linear code, but keep
                // the honest classification.
                EventKind::None
            } else {
                EventKind::SdcUndetected
            }
        }
        EccEvent::Corrected { data: d, .. } => {
            if d == data {
                EventKind::Ce
            } else {
                EventKind::SdcMiscorrected
            }
        }
        EccEvent::DetectedUncorrectable => EventKind::Ue,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn no_flips_is_none() {
        assert_eq!(classify_flips(123, 0, 0), EventKind::None);
    }

    #[test]
    fn one_data_flip_is_ce() {
        for i in [0, 17, 63] {
            assert_eq!(
                classify_flips(u64::MAX, 1 << i, 0),
                EventKind::Ce,
                "bit {i}"
            );
        }
    }

    #[test]
    fn one_check_flip_is_ce() {
        for j in 0..8 {
            assert_eq!(
                classify_flips(0xABCD, 0, 1 << j),
                EventKind::Ce,
                "check {j}"
            );
        }
    }

    #[test]
    fn two_flips_are_ue() {
        assert_eq!(classify_flips(0, 0b101, 0), EventKind::Ue);
        assert_eq!(classify_flips(0, 0b1, 0b1), EventKind::Ue);
        assert_eq!(classify_flips(0, 0, 0b11), EventKind::Ue);
    }

    #[test]
    fn triple_flips_are_never_ce_or_none() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5000 {
            let data: u64 = rng.gen();
            let mut mask = 0u64;
            while mask.count_ones() < 3 {
                mask |= 1u64 << rng.gen_range(0..64);
            }
            let kind = classify_flips(data, mask, 0);
            assert!(
                matches!(kind, EventKind::Ue | EventKind::SdcMiscorrected),
                "3 flips gave {kind}"
            );
        }
    }

    #[test]
    fn some_triple_flips_miscorrect() {
        // Find at least one miscorrecting triple: flip two data bits plus the
        // bit the decoder would blame. Exhaustively scan a few words.
        let mut found = false;
        'outer: for a in 0..16u32 {
            for b in (a + 1)..24 {
                for c in (b + 1)..32 {
                    let mask = (1u64 << a) | (1u64 << b) | (1u64 << c);
                    if classify_flips(0, mask, 0) == EventKind::SdcMiscorrected {
                        found = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(found, "no miscorrecting 3-bit pattern found in scan");
    }

    #[test]
    fn quadruple_flips_can_be_undetected() {
        // Two pairs of data bits whose positions XOR to zero form a valid
        // codeword offset -> undetected. Search exhaustively over small bits.
        let mut found = false;
        'outer: for a in 0..20u32 {
            for b in (a + 1)..24 {
                for c in (b + 1)..28 {
                    for d in (c + 1)..32 {
                        let mask = (1u64 << a) | (1u64 << b) | (1u64 << c) | (1u64 << d);
                        if classify_flips(0, mask, 0) == EventKind::SdcUndetected {
                            found = true;
                            break 'outer;
                        }
                    }
                }
            }
        }
        assert!(found, "no undetected 4-bit pattern found in scan");
    }

    #[test]
    fn visibility_and_corruption_flags() {
        assert!(!EventKind::None.is_visible());
        assert!(EventKind::Ce.is_visible());
        assert!(EventKind::Ue.is_visible());
        assert!(!EventKind::SdcUndetected.is_visible());
        assert!(EventKind::SdcUndetected.corrupts_data());
        assert!(EventKind::SdcMiscorrected.corrupts_data());
        assert!(!EventKind::Ce.corrupts_data());
    }

    #[test]
    fn display_is_nonempty() {
        for k in [
            EventKind::None,
            EventKind::Ce,
            EventKind::Ue,
            EventKind::SdcMiscorrected,
            EventKind::SdcUndetected,
        ] {
            assert!(!k.to_string().is_empty());
        }
    }

    proptest! {
        #[test]
        fn classification_matches_flip_count_for_0_to_2(data in any::<u64>(),
                                                        a in 0usize..64, b in 0usize..64) {
            prop_assert_eq!(classify_flips(data, 0, 0), EventKind::None);
            prop_assert_eq!(classify_flips(data, 1 << a, 0), EventKind::Ce);
            if a != b {
                prop_assert_eq!(classify_flips(data, (1u64 << a) | (1u64 << b), 0), EventKind::Ue);
            }
        }
    }
}
