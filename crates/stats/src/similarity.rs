//! Similarity measures used as GA convergence criteria.
//!
//! The paper (§III-E) stops a search when the mean pairwise similarity of the
//! final offspring exceeds 0.85. Binary chromosomes use the Sokal & Michener
//! simple-matching function built from Operational Taxonomic Units (OTUs,
//! Table I); integer/real chromosomes (memory access patterns) use the
//! weighted Jaccard similarity.

use serde::{Deserialize, Serialize};

/// Operational Taxonomic Units for a pair of binary feature vectors
/// (paper Table I).
///
/// For chromosomes `X` and `Y` with features `x_i`, `y_i`:
///
/// * `a` — count of positions where both are `1`,
/// * `b` — count where `x_i = 0`, `y_i = 1`,
/// * `c` — count where `x_i = 1`, `y_i = 0`,
/// * `d` — count where both are `0`.
///
/// # Examples
///
/// ```
/// use dstress_stats::Otu;
///
/// let otu = Otu::from_features(&[true, false, true], &[true, true, false]);
/// assert_eq!((otu.a, otu.b, otu.c, otu.d), (1, 1, 1, 0));
/// assert!((otu.sokal_michener() - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Otu {
    /// Positions where both features are `1`.
    pub a: usize,
    /// Positions where `x` is `0` and `y` is `1`.
    pub b: usize,
    /// Positions where `x` is `1` and `y` is `0`.
    pub c: usize,
    /// Positions where both features are `0`.
    pub d: usize,
}

impl Otu {
    /// Builds the contingency table for two equal-length binary vectors.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` have different lengths.
    pub fn from_features(x: &[bool], y: &[bool]) -> Self {
        assert_eq!(
            x.len(),
            y.len(),
            "OTU requires equal-length feature vectors"
        );
        let mut otu = Otu::default();
        for (&xi, &yi) in x.iter().zip(y) {
            match (xi, yi) {
                (true, true) => otu.a += 1,
                (false, true) => otu.b += 1,
                (true, false) => otu.c += 1,
                (false, false) => otu.d += 1,
            }
        }
        otu
    }

    /// Total number of features (`a + b + c + d`).
    pub fn total(&self) -> usize {
        self.a + self.b + self.c + self.d
    }

    /// The Sokal & Michener simple-matching function (paper Eq. 2):
    /// `(a + d) / (a + b + c + d)` — the fraction of matching features.
    ///
    /// Returns `1.0` for empty vectors (two empty chromosomes are identical).
    pub fn sokal_michener(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        (self.a + self.d) as f64 / total as f64
    }
}

/// The Sokal & Michener similarity of two binary feature vectors
/// (paper Eq. 2): the ratio of matching positions.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
///
/// # Examples
///
/// ```
/// use dstress_stats::sokal_michener;
///
/// assert_eq!(sokal_michener(&[true, true], &[true, true]), 1.0);
/// assert_eq!(sokal_michener(&[true, false], &[false, true]), 0.0);
/// ```
pub fn sokal_michener(x: &[bool], y: &[bool]) -> f64 {
    Otu::from_features(x, y).sokal_michener()
}

/// The weighted Jaccard similarity of two non-negative real vectors
/// (paper Eq. 3): `sum(min(x_i, y_i)) / sum(max(x_i, y_i))`.
///
/// Returns `1.0` when both vectors are all zero (identical chromosomes).
///
/// # Panics
///
/// Panics if the vectors have different lengths, or if any feature is
/// negative or non-finite (the measure is only defined for non-negative
/// features).
///
/// # Examples
///
/// ```
/// use dstress_stats::weighted_jaccard;
///
/// let sim = weighted_jaccard(&[1.0, 2.0], &[2.0, 2.0]);
/// assert!((sim - 0.75).abs() < 1e-12);
/// ```
pub fn weighted_jaccard(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(
        x.len(),
        y.len(),
        "weighted Jaccard requires equal-length vectors"
    );
    let mut num = 0.0;
    let mut den = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        assert!(
            xi >= 0.0 && yi >= 0.0 && xi.is_finite() && yi.is_finite(),
            "weighted Jaccard requires finite non-negative features, got ({xi}, {yi})"
        );
        num += xi.min(yi);
        den += xi.max(yi);
    }
    if den == 0.0 {
        1.0
    } else {
        num / den
    }
}

/// Mean pairwise similarity over a population, given any pairwise measure.
///
/// This is how the paper aggregates similarity over the final offspring: the
/// measure is estimated "for each possible pair of chromosomes in an
/// offspring" and averaged (§III-E). Populations of fewer than two members
/// are trivially converged and yield `1.0`.
///
/// # Examples
///
/// ```
/// use dstress_stats::{mean_pairwise, sokal_michener};
///
/// let pop = vec![vec![true, true], vec![true, true], vec![true, false]];
/// let avg = mean_pairwise(&pop, |a, b| sokal_michener(a, b));
/// // pairs: (0,1)=1.0, (0,2)=0.5, (1,2)=0.5 -> 2/3
/// assert!((avg - 2.0 / 3.0).abs() < 1e-12);
/// ```
pub fn mean_pairwise<T, F>(population: &[T], mut measure: F) -> f64
where
    F: FnMut(&T, &T) -> f64,
{
    let n = population.len();
    if n < 2 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            sum += measure(&population[i], &population[j]);
            pairs += 1;
        }
    }
    sum / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn otu_counts_all_quadrants() {
        let x = [true, true, false, false, true];
        let y = [true, false, true, false, true];
        let otu = Otu::from_features(&x, &y);
        assert_eq!(
            otu,
            Otu {
                a: 2,
                b: 1,
                c: 1,
                d: 1
            }
        );
        assert_eq!(otu.total(), 5);
    }

    #[test]
    fn smf_identical_is_one() {
        let x = [true, false, true, false];
        assert_eq!(sokal_michener(&x, &x), 1.0);
    }

    #[test]
    fn smf_complement_is_zero() {
        let x = [true, false, true];
        let y = [false, true, false];
        assert_eq!(sokal_michener(&x, &y), 0.0);
    }

    #[test]
    fn smf_empty_is_one() {
        assert_eq!(sokal_michener(&[], &[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn smf_length_mismatch_panics() {
        sokal_michener(&[true], &[true, false]);
    }

    #[test]
    fn jaccard_identical_is_one() {
        let x = [0.5, 2.0, 7.0];
        assert!((weighted_jaccard(&x, &x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_disjoint_support_is_zero() {
        assert_eq!(weighted_jaccard(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
    }

    #[test]
    fn jaccard_all_zero_is_one() {
        assert_eq!(weighted_jaccard(&[0.0, 0.0], &[0.0, 0.0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn jaccard_rejects_negative() {
        weighted_jaccard(&[-1.0], &[1.0]);
    }

    #[test]
    fn mean_pairwise_single_member_is_converged() {
        let pop = vec![vec![true]];
        assert_eq!(mean_pairwise(&pop, |a, b| sokal_michener(a, b)), 1.0);
    }

    proptest! {
        #[test]
        fn smf_is_symmetric(x in proptest::collection::vec(any::<bool>(), 0..64),
                            y_seed in any::<u64>()) {
            // Build y as a pseudo-random vector of the same length.
            let y: Vec<bool> = x.iter().enumerate()
                .map(|(i, _)| (y_seed >> (i % 64)) & 1 == 1)
                .collect();
            let ab = sokal_michener(&x, &y);
            let ba = sokal_michener(&y, &x);
            prop_assert!((ab - ba).abs() < 1e-15);
        }

        #[test]
        fn smf_is_bounded(x in proptest::collection::vec(any::<bool>(), 1..64),
                          flips in any::<u64>()) {
            let y: Vec<bool> = x.iter().enumerate()
                .map(|(i, &b)| b ^ ((flips >> (i % 64)) & 1 == 1))
                .collect();
            let s = sokal_michener(&x, &y);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn jaccard_is_symmetric_and_bounded(
            x in proptest::collection::vec(0.0f64..100.0, 1..32),
            y in proptest::collection::vec(0.0f64..100.0, 1..32),
        ) {
            let n = x.len().min(y.len());
            let (x, y) = (&x[..n], &y[..n]);
            let ab = weighted_jaccard(x, y);
            let ba = weighted_jaccard(y, x);
            prop_assert!((ab - ba).abs() < 1e-12);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&ab));
        }

        #[test]
        fn otu_quadrants_partition_the_features(
            x in proptest::collection::vec(any::<bool>(), 0..128),
            seed in any::<u64>(),
        ) {
            let y: Vec<bool> = x.iter().enumerate()
                .map(|(i, _)| seed.rotate_left(i as u32) & 1 == 1)
                .collect();
            let otu = Otu::from_features(&x, &y);
            prop_assert_eq!(otu.total(), x.len());
        }
    }
}
