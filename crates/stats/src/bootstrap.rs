//! Percentile bootstrap for confidence intervals.
//!
//! Fig. 13's tail probabilities (`P(a better pattern exists)`) come from a
//! Gaussian fitted to a few hundred random-virus samples; the point
//! estimate deserves an uncertainty. The percentile bootstrap resamples the
//! data with replacement and reports the empirical quantiles of any
//! statistic computed on the resamples.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// The statistic on the original sample.
    pub point: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// The confidence level the bounds correspond to (e.g. 0.95).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Whether a value lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo && value <= self.hi
    }

    /// The interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Error running a bootstrap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BootstrapError {
    /// The sample was empty.
    EmptySample,
    /// Zero resamples requested or a level outside `(0, 1)`.
    BadParameters,
}

impl std::fmt::Display for BootstrapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BootstrapError::EmptySample => write!(f, "bootstrap requires a non-empty sample"),
            BootstrapError::BadParameters => {
                write!(f, "bootstrap needs resamples > 0 and a level in (0, 1)")
            }
        }
    }
}

impl std::error::Error for BootstrapError {}

/// Percentile-bootstrap confidence interval for an arbitrary statistic.
///
/// # Errors
///
/// Returns [`BootstrapError`] for empty samples or bad parameters.
///
/// # Examples
///
/// ```
/// use dstress_stats::bootstrap::bootstrap_ci;
///
/// let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
/// let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
/// let ci = bootstrap_ci(&data, mean, 500, 0.95, 7)?;
/// assert!(ci.contains(49.5));
/// assert!(ci.width() < 15.0);
/// # Ok::<(), dstress_stats::bootstrap::BootstrapError>(())
/// ```
pub fn bootstrap_ci<F>(
    data: &[f64],
    statistic: F,
    resamples: usize,
    level: f64,
    seed: u64,
) -> Result<ConfidenceInterval, BootstrapError>
where
    F: Fn(&[f64]) -> f64,
{
    if data.is_empty() {
        return Err(BootstrapError::EmptySample);
    }
    if resamples == 0 || !(0.0..1.0).contains(&level) || level <= 0.0 {
        return Err(BootstrapError::BadParameters);
    }
    let point = statistic(data);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = Vec::with_capacity(resamples);
    let mut resample = vec![0.0; data.len()];
    for _ in 0..resamples {
        for slot in resample.iter_mut() {
            *slot = data[rng.gen_range(0..data.len())];
        }
        stats.push(statistic(&resample));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("finite statistics"));
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((stats.len() as f64 * alpha) as usize).min(stats.len() - 1);
    let hi_idx = ((stats.len() as f64 * (1.0 - alpha)) as usize).min(stats.len() - 1);
    Ok(ConfidenceInterval {
        point,
        lo: stats[lo_idx],
        hi: stats[hi_idx],
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn interval_covers_the_true_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<f64> = (0..400)
            .map(|_| 50.0 + 10.0 * ((0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0))
            .collect();
        let ci = bootstrap_ci(&data, mean, 1000, 0.95, 2).unwrap();
        assert!(
            ci.contains(50.0),
            "CI [{}, {}] should cover 50",
            ci.lo,
            ci.hi
        );
        assert!(ci.lo < ci.point && ci.point < ci.hi);
    }

    #[test]
    fn wider_level_gives_wider_interval() {
        let data: Vec<f64> = (0..200).map(|i| (i % 17) as f64).collect();
        let narrow = bootstrap_ci(&data, mean, 800, 0.80, 3).unwrap();
        let wide = bootstrap_ci(&data, mean, 800, 0.99, 3).unwrap();
        assert!(wide.width() > narrow.width());
    }

    #[test]
    fn degenerate_sample_gives_zero_width() {
        let data = vec![7.0; 50];
        let ci = bootstrap_ci(&data, mean, 200, 0.95, 4).unwrap();
        assert_eq!(ci.lo, 7.0);
        assert_eq!(ci.hi, 7.0);
        assert_eq!(ci.width(), 0.0);
    }

    #[test]
    fn parameter_validation() {
        assert_eq!(
            bootstrap_ci(&[], mean, 10, 0.9, 1).unwrap_err(),
            BootstrapError::EmptySample
        );
        assert_eq!(
            bootstrap_ci(&[1.0], mean, 0, 0.9, 1).unwrap_err(),
            BootstrapError::BadParameters
        );
        assert_eq!(
            bootstrap_ci(&[1.0], mean, 10, 1.5, 1).unwrap_err(),
            BootstrapError::BadParameters
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let data: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let a = bootstrap_ci(&data, mean, 300, 0.95, 9).unwrap();
        let b = bootstrap_ci(&data, mean, 300, 0.95, 9).unwrap();
        assert_eq!(a, b);
    }
}
