//! The D'Agostino–Pearson K² omnibus test for departure from normality.
//!
//! The paper confirms that the distribution of CE counts obtained from random
//! data patterns "follows the normal distribution" using the
//! D'Agostino–Pearson test (§V-A.5, citing D'Agostino & Pearson 1973). The
//! omnibus statistic combines a transformed skewness statistic `Z(√b₁)`
//! (D'Agostino 1970) with a transformed kurtosis statistic `Z(b₂)`
//! (Anscombe & Glynn 1983):
//!
//! `K² = Z(√b₁)² + Z(b₂)²` which is χ²(2) under normality.

use crate::descriptive::Moments;
use serde::{Deserialize, Serialize};

/// The result of a D'Agostino–Pearson K² normality test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DagostinoPearson {
    /// Transformed skewness statistic (standard normal under H₀).
    pub z_skew: f64,
    /// Transformed kurtosis statistic (standard normal under H₀).
    pub z_kurt: f64,
    /// The omnibus statistic `K² = z_skew² + z_kurt²` (χ²(2) under H₀).
    pub k2: f64,
    /// Two-sided p-value of `K²` against χ²(2): `exp(-K²/2)`.
    pub p_value: f64,
    /// Number of observations the test was computed from.
    pub n: u64,
}

impl DagostinoPearson {
    /// Whether normality is *not* rejected at the given significance level
    /// (i.e. the data is consistent with a Gaussian).
    ///
    /// # Examples
    ///
    /// ```
    /// use dstress_stats::{dagostino_pearson, Moments};
    ///
    /// // A coarse triangular-ish sample: not enough evidence against normality.
    /// let m: Moments = [1.0, 2.0, 2.0, 3.0, 3.0, 3.0, 4.0, 4.0, 5.0, 2.5, 3.5]
    ///     .iter().copied().collect();
    /// let t = dagostino_pearson(&m)?;
    /// assert!(t.is_normal(0.05));
    /// # Ok::<(), dstress_stats::dagostino::NormalityTestError>(())
    /// ```
    pub fn is_normal(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

/// Error performing a normality test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalityTestError {
    /// The test requires at least 9 observations (below that the Anscombe &
    /// Glynn kurtosis transform is undefined).
    TooFewObservations,
    /// All observations were identical; normality is undefined.
    DegenerateData,
}

impl std::fmt::Display for NormalityTestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalityTestError::TooFewObservations => {
                write!(
                    f,
                    "D'Agostino-Pearson test requires at least 9 observations"
                )
            }
            NormalityTestError::DegenerateData => {
                write!(f, "normality test is undefined for zero-variance data")
            }
        }
    }
}

impl std::error::Error for NormalityTestError {}

/// Runs the D'Agostino–Pearson K² test on accumulated moments.
///
/// # Errors
///
/// Returns [`NormalityTestError::TooFewObservations`] for `n < 9` and
/// [`NormalityTestError::DegenerateData`] for zero-variance samples.
pub fn dagostino_pearson(moments: &Moments) -> Result<DagostinoPearson, NormalityTestError> {
    let n_u = moments.count();
    if n_u < 9 {
        return Err(NormalityTestError::TooFewObservations);
    }
    if moments.population_variance() <= 0.0 {
        return Err(NormalityTestError::DegenerateData);
    }
    let n = n_u as f64;
    let z_skew = skewness_z(moments.skewness(), n);
    let z_kurt = kurtosis_z(moments.kurtosis(), n);
    let k2 = z_skew * z_skew + z_kurt * z_kurt;
    // Survival function of chi-square with 2 dof: exp(-x/2).
    let p_value = (-k2 / 2.0).exp();
    Ok(DagostinoPearson {
        z_skew,
        z_kurt,
        k2,
        p_value,
        n: n_u,
    })
}

/// D'Agostino (1970) transformation of sample skewness `√b₁` to an
/// approximately standard normal `Z`.
fn skewness_z(sqrt_b1: f64, n: f64) -> f64 {
    let y = sqrt_b1 * ((n + 1.0) * (n + 3.0) / (6.0 * (n - 2.0))).sqrt();
    let beta2 = 3.0 * (n * n + 27.0 * n - 70.0) * (n + 1.0) * (n + 3.0)
        / ((n - 2.0) * (n + 5.0) * (n + 7.0) * (n + 9.0));
    let w2 = -1.0 + (2.0 * (beta2 - 1.0)).sqrt();
    let w = w2.max(1.0 + 1e-12).sqrt();
    let delta = 1.0 / w.ln().sqrt();
    let alpha = (2.0 / (w2 - 1.0)).sqrt();
    let y_over_alpha = y / alpha;
    delta * (y_over_alpha + (y_over_alpha * y_over_alpha + 1.0).sqrt()).ln()
}

/// Anscombe & Glynn (1983) transformation of sample kurtosis `b₂` to an
/// approximately standard normal `Z`.
fn kurtosis_z(b2: f64, n: f64) -> f64 {
    let e_b2 = 3.0 * (n - 1.0) / (n + 1.0);
    let var_b2 = 24.0 * n * (n - 2.0) * (n - 3.0) / ((n + 1.0).powi(2) * (n + 3.0) * (n + 5.0));
    let x = (b2 - e_b2) / var_b2.sqrt();
    let sqrt_beta1 = 6.0 * (n * n - 5.0 * n + 2.0) / ((n + 7.0) * (n + 9.0))
        * (6.0 * (n + 3.0) * (n + 5.0) / (n * (n - 2.0) * (n - 3.0))).sqrt();
    let a = 6.0
        + 8.0 / sqrt_beta1 * (2.0 / sqrt_beta1 + (1.0 + 4.0 / (sqrt_beta1 * sqrt_beta1)).sqrt());
    let t = (1.0 - 2.0 / a) / (1.0 + x * (2.0 / (a - 4.0)).sqrt());
    // Guard against numerically negative cube-root argument for tiny samples.
    let t = t.max(1e-300);
    (1.0 - 2.0 / (9.0 * a) - t.powf(1.0 / 3.0)) * (9.0 * a / 2.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Samples an approximately standard-normal value via the sum of 12
    /// uniforms (Irwin–Hall) — plenty for these tests.
    fn normal_sample(rng: &mut StdRng) -> f64 {
        (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0
    }

    #[test]
    fn accepts_gaussian_data() {
        let mut rng = StdRng::seed_from_u64(7);
        let m: Moments = (0..5000)
            .map(|_| 100.0 + 15.0 * normal_sample(&mut rng))
            .collect();
        let test = dagostino_pearson(&m).unwrap();
        assert!(
            test.is_normal(0.01),
            "K2 = {}, p = {}",
            test.k2,
            test.p_value
        );
    }

    #[test]
    fn rejects_heavily_skewed_data() {
        let mut rng = StdRng::seed_from_u64(8);
        // Exponential-ish data: -ln(U) is strongly right-skewed.
        let m: Moments = (0..5000)
            .map(|_| -(rng.gen::<f64>().max(1e-12)).ln())
            .collect();
        let test = dagostino_pearson(&m).unwrap();
        assert!(
            !test.is_normal(0.05),
            "expected rejection, p = {}",
            test.p_value
        );
        assert!(test.z_skew > 3.0);
    }

    #[test]
    fn rejects_uniform_data_on_kurtosis() {
        let mut rng = StdRng::seed_from_u64(9);
        let m: Moments = (0..5000).map(|_| rng.gen::<f64>()).collect();
        let test = dagostino_pearson(&m).unwrap();
        // Uniform is symmetric (skew ~ 0) but platykurtic (b2 ~ 1.8).
        assert!(test.z_skew.abs() < 3.0);
        assert!(test.z_kurt.abs() > 3.0);
        assert!(!test.is_normal(0.05));
    }

    #[test]
    fn too_few_observations_is_an_error() {
        let m: Moments = (0..8).map(|i| i as f64).collect();
        assert_eq!(
            dagostino_pearson(&m).unwrap_err(),
            NormalityTestError::TooFewObservations
        );
    }

    #[test]
    fn degenerate_data_is_an_error() {
        let m: Moments = (0..20).map(|_| 5.0).collect();
        assert_eq!(
            dagostino_pearson(&m).unwrap_err(),
            NormalityTestError::DegenerateData
        );
    }

    #[test]
    fn k2_is_sum_of_squares() {
        let mut rng = StdRng::seed_from_u64(10);
        let m: Moments = (0..500).map(|_| normal_sample(&mut rng)).collect();
        let t = dagostino_pearson(&m).unwrap();
        assert!((t.k2 - (t.z_skew.powi(2) + t.z_kurt.powi(2))).abs() < 1e-12);
        assert!((t.p_value - (-t.k2 / 2.0).exp()).abs() < 1e-12);
    }
}
