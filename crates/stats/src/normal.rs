//! The normal (Gaussian) distribution.
//!
//! The paper fits a Gaussian to the distribution of CE counts manifested by
//! randomized data patterns and uses its upper tail to estimate the
//! probability that a pattern better than the GA-discovered one exists
//! (§V-A.5, Fig. 13). This module provides the PDF, CDF, quantile function and
//! a moment fit, with `erf`/`erfc` implemented from scratch (no external math
//! crates are available offline).

use crate::descriptive::Moments;
use serde::{Deserialize, Serialize};

/// A normal distribution `N(mean, std_dev²)`.
///
/// # Examples
///
/// ```
/// use dstress_stats::Normal;
///
/// let n = Normal::new(0.0, 1.0)?;
/// assert!((n.cdf(0.0) - 0.5).abs() < 1e-12);
/// assert!((n.cdf(1.96) - 0.975).abs() < 1e-4);
/// # Ok::<(), dstress_stats::normal::NormalError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

/// Error constructing a [`Normal`] distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation was zero, negative, NaN or infinite.
    InvalidStdDev,
    /// The mean was NaN or infinite.
    InvalidMean,
    /// A fit was requested over fewer than two observations.
    NotEnoughData,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::InvalidStdDev => {
                write!(f, "standard deviation must be finite and positive")
            }
            NormalError::InvalidMean => write!(f, "mean must be finite"),
            NormalError::NotEnoughData => {
                write!(f, "fitting a normal requires at least two observations")
            }
        }
    }
}

impl std::error::Error for NormalError {}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Errors
    ///
    /// Returns [`NormalError::InvalidStdDev`] unless `std_dev` is finite and
    /// strictly positive, and [`NormalError::InvalidMean`] unless `mean` is
    /// finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::InvalidMean);
        }
        if !std_dev.is_finite() || std_dev <= 0.0 {
            return Err(NormalError::InvalidStdDev);
        }
        Ok(Normal { mean, std_dev })
    }

    /// Standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Normal {
            mean: 0.0,
            std_dev: 1.0,
        }
    }

    /// Fits by moments from accumulated observations (sample variance).
    ///
    /// # Errors
    ///
    /// Returns [`NormalError::NotEnoughData`] for fewer than two observations
    /// and [`NormalError::InvalidStdDev`] for degenerate (zero-variance) data.
    pub fn fit(moments: &Moments) -> Result<Self, NormalError> {
        if moments.count() < 2 {
            return Err(NormalError::NotEnoughData);
        }
        Normal::new(moments.mean(), moments.sample_std_dev())
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Probability density function at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std_dev;
        (-0.5 * z * z).exp() / (self.std_dev * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function `P(X <= x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.std_dev * std::f64::consts::SQRT_2);
        0.5 * erfc(-z)
    }

    /// Upper-tail probability `P(X > x)`, computed via `erfc` so extreme
    /// tails (the paper's `4e-7`) keep full relative precision.
    pub fn sf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.std_dev * std::f64::consts::SQRT_2);
        0.5 * erfc(z)
    }

    /// Quantile (inverse CDF) by bisection on the CDF.
    ///
    /// # Panics
    ///
    /// Panics unless `p` lies strictly inside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
        // Bracket by expanding around the mean, then bisect. 200 iterations
        // of bisection give ~1e-60 interval shrinkage, far below f64 eps.
        let mut lo = self.mean - 10.0 * self.std_dev;
        let mut hi = self.mean + 10.0 * self.std_dev;
        while self.cdf(lo) > p {
            lo -= 10.0 * self.std_dev;
        }
        while self.cdf(hi) < p {
            hi += 10.0 * self.std_dev;
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

/// The error function, via the Abramowitz & Stegun 7.1.26-style rational
/// approximation refined with one Newton step against the series; absolute
/// error below `1.5e-7` before refinement and ~1e-12 after for moderate `x`.
///
/// We use the high-accuracy rational expansion from W. J. Cody's algorithm
/// as adapted for double precision.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// The complementary error function `erfc(x) = 1 - erf(x)` with good
/// relative accuracy in the far tail (needed for probabilities like `4e-7`).
pub fn erfc(x: f64) -> f64 {
    // Adapted from the classic continued-fraction/series split:
    // series for |x| < 2.0, Laplace continued fraction for the tail.
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x < 2.0 {
        1.0 - erf_series(x)
    } else {
        erfc_cf(x)
    }
}

/// Maclaurin series for erf, accurate for small |x|.
fn erf_series(x: f64) -> f64 {
    // erf(x) = 2/sqrt(pi) * sum_{n>=0} (-1)^n x^(2n+1) / (n! (2n+1))
    let mut term = x;
    let mut sum = x;
    let x2 = x * x;
    let mut n = 0u32;
    while term.abs() > 1e-17 * sum.abs() + 1e-300 {
        n += 1;
        term *= -x2 / n as f64;
        sum += term / (2 * n + 1) as f64;
        if n > 200 {
            break;
        }
    }
    sum * 2.0 / std::f64::consts::PI.sqrt()
}

/// Laplace continued fraction for erfc, accurate for x >= 2.
fn erfc_cf(x: f64) -> f64 {
    // erfc(x) = exp(-x^2)/(x*sqrt(pi)) * 1/(1 + 1/(2x^2 + 2/(1 + 3/(2x^2 + ...))))
    // Evaluate with the modified Lentz algorithm.
    let x2 = x * x;
    let mut f = x;
    let mut c = f;
    let mut d = 0.0;
    let mut numer_k = 0.5;
    // a_1 = x; subsequent: b alternates between x and adding k/ (2...) — use
    // the standard form erfc(x) = exp(-x²)/√π * K where
    // K = 1/(x + 1/2/(x + 1/(x + 3/2/(x + 2/(x + ...)))))
    for _ in 0..200 {
        let a = numer_k;
        let b = x;
        d = b + a * d;
        if d.abs() < 1e-300 {
            d = 1e-300;
        }
        c = b + a / c;
        if c.abs() < 1e-300 {
            c = 1e-300;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
        numer_k += 0.5;
    }
    // Now f approximates the continued fraction denominator chain starting
    // from x; erfc = exp(-x²)/√π / f.
    (-x2).exp() / (std::f64::consts::PI.sqrt() * f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_validates() {
        assert!(Normal::new(0.0, 1.0).is_ok());
        assert_eq!(
            Normal::new(0.0, 0.0).unwrap_err(),
            NormalError::InvalidStdDev
        );
        assert_eq!(
            Normal::new(0.0, -1.0).unwrap_err(),
            NormalError::InvalidStdDev
        );
        assert_eq!(
            Normal::new(f64::NAN, 1.0).unwrap_err(),
            NormalError::InvalidMean
        );
    }

    #[test]
    fn erf_known_values() {
        // Reference values from standard tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778130465),
            (1.0, 0.8427007929497149),
            (2.0, 0.9953222650189527),
            (3.0, 0.9999779095030014),
        ];
        for (x, want) in cases {
            let got = erf(x);
            assert!((got - want).abs() < 1e-9, "erf({x}) = {got}, want {want}");
            assert!((erf(-x) + want).abs() < 1e-9, "erf(-{x}) should be odd");
        }
    }

    #[test]
    fn erfc_deep_tail_has_relative_accuracy() {
        // erfc(5) = 1.5374597944280348e-12 (reference).
        let got = erfc(5.0);
        let want = 1.5374597944280348e-12;
        assert!(((got - want) / want).abs() < 1e-8, "erfc(5) = {got:e}");
    }

    #[test]
    fn standard_normal_cdf_values() {
        let n = Normal::standard();
        assert!((n.cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((n.cdf(1.0) - 0.8413447460685429).abs() < 1e-9);
        assert!((n.cdf(-1.0) - 0.15865525393145707).abs() < 1e-9);
        assert!((n.cdf(2.326347874040841) - 0.99).abs() < 1e-9);
    }

    #[test]
    fn sf_matches_one_minus_cdf_in_bulk_and_beats_it_in_tail() {
        let n = Normal::new(100.0, 15.0).unwrap();
        assert!((n.sf(110.0) - (1.0 - n.cdf(110.0))).abs() < 1e-12);
        // Deep tail: sf stays positive where 1-cdf would round to ~0.
        let tail = n.sf(100.0 + 8.0 * 15.0);
        assert!(tail > 0.0 && tail < 1e-14);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let n = Normal::new(-3.0, 2.5).unwrap();
        for &p in &[0.001, 0.1, 0.5, 0.9, 0.999] {
            let x = n.quantile(p);
            assert!((n.cdf(x) - p).abs() < 1e-10, "p={p}");
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        let n = Normal::new(2.0, 0.7).unwrap();
        // Trapezoid over +-8 sigma.
        let (a, b) = (2.0 - 8.0 * 0.7, 2.0 + 8.0 * 0.7);
        let steps = 20_000;
        let h = (b - a) / steps as f64;
        let mut sum = 0.5 * (n.pdf(a) + n.pdf(b));
        for i in 1..steps {
            sum += n.pdf(a + i as f64 * h);
        }
        assert!((sum * h - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fit_recovers_moments() {
        let data = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let m: Moments = data.iter().copied().collect();
        let n = Normal::fit(&m).unwrap();
        assert!((n.mean() - 3.0).abs() < 1e-12);
        assert!((n.std_dev() - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn fit_rejects_degenerate_data() {
        let mut m = Moments::new();
        m.push(1.0);
        assert_eq!(Normal::fit(&m).unwrap_err(), NormalError::NotEnoughData);
        m.push(1.0);
        assert_eq!(Normal::fit(&m).unwrap_err(), NormalError::InvalidStdDev);
    }

    proptest! {
        #[test]
        fn cdf_is_monotone(mean in -100.0f64..100.0, sd in 0.1f64..50.0,
                           a in -500.0f64..500.0, b in -500.0f64..500.0) {
            let n = Normal::new(mean, sd).unwrap();
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(n.cdf(lo) <= n.cdf(hi) + 1e-12);
        }

        #[test]
        fn cdf_plus_sf_is_one(x in -50.0f64..50.0) {
            let n = Normal::standard();
            prop_assert!((n.cdf(x) + n.sf(x) - 1.0).abs() < 1e-10);
        }
    }
}
