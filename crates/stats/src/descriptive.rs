//! Running descriptive statistics (mean, variance, skewness, kurtosis).
//!
//! Implemented as a single-pass accumulator over central moments so the same
//! structure feeds both the normal-distribution fit (Fig. 13) and the
//! D'Agostino–Pearson normality test, which needs sample skewness `√b₁` and
//! kurtosis `b₂`.

use serde::{Deserialize, Serialize};

/// Single-pass accumulator of the first four central moments.
///
/// Uses the numerically stable one-pass update formulas (Welford/Terriberry)
/// so large CE counts do not lose precision.
///
/// # Examples
///
/// ```
/// use dstress_stats::Moments;
///
/// let m: Moments = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().copied().collect();
/// assert_eq!(m.count(), 8);
/// assert!((m.mean() - 5.0).abs() < 1e-12);
/// assert!((m.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
    min: f64,
    max: f64,
}

impl Moments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Moments {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            m4: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean. Returns `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest observation. Returns `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation. Returns `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Population (biased, `/n`) variance. Returns `0.0` for fewer than one
    /// observation.
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample (unbiased, `/(n-1)`) variance. Returns `0.0` for fewer than two
    /// observations.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n as f64 - 1.0)
        }
    }

    /// Sample standard deviation (square root of [`Self::sample_variance`]).
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Sample skewness `g₁ = m₃ / m₂^{3/2}` (the `√b₁` statistic of the
    /// D'Agostino test). Returns `0.0` when variance is zero.
    pub fn skewness(&self) -> f64 {
        if self.n == 0 || self.m2 == 0.0 {
            return 0.0;
        }
        let n = self.n as f64;
        (n.sqrt() * self.m3) / self.m2.powf(1.5)
    }

    /// Sample kurtosis `b₂ = n·m₄ / m₂²` (not excess kurtosis; a normal
    /// distribution gives ≈ 3). Returns `0.0` when variance is zero.
    pub fn kurtosis(&self) -> f64 {
        if self.n == 0 || self.m2 == 0.0 {
            return 0.0;
        }
        let n = self.n as f64;
        n * self.m4 / (self.m2 * self.m2)
    }
}

impl FromIterator<f64> for Moments {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut m = Moments::new();
        for x in iter {
            m.push(x);
        }
        m
    }
}

impl Extend<f64> for Moments {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_moments_are_neutral() {
        let m = Moments::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.population_variance(), 0.0);
        assert_eq!(m.sample_variance(), 0.0);
        assert_eq!(m.skewness(), 0.0);
        assert_eq!(m.kurtosis(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut m = Moments::new();
        m.push(42.0);
        assert_eq!(m.count(), 1);
        assert_eq!(m.mean(), 42.0);
        assert_eq!(m.min(), 42.0);
        assert_eq!(m.max(), 42.0);
        assert_eq!(m.sample_variance(), 0.0);
    }

    #[test]
    fn symmetric_data_has_zero_skew() {
        let m: Moments = [-2.0, -1.0, 0.0, 1.0, 2.0].iter().copied().collect();
        assert!(m.skewness().abs() < 1e-12);
    }

    #[test]
    fn uniform_kurtosis_is_platykurtic() {
        // Kurtosis of a discrete uniform on many points approaches 1.8 (< 3).
        let m: Moments = (0..10_000).map(|i| i as f64).collect();
        assert!(
            (m.kurtosis() - 1.8).abs() < 0.01,
            "kurtosis = {}",
            m.kurtosis()
        );
    }

    #[test]
    fn right_skewed_data_has_positive_skew() {
        let m: Moments = [1.0, 1.0, 1.0, 1.0, 10.0].iter().copied().collect();
        assert!(m.skewness() > 1.0);
    }

    #[test]
    fn extend_matches_push() {
        let mut a = Moments::new();
        a.extend([1.0, 2.0, 3.0]);
        let b: Moments = [1.0, 2.0, 3.0].iter().copied().collect();
        assert!((a.mean() - b.mean()).abs() < 1e-15);
        assert_eq!(a.count(), b.count());
    }

    proptest! {
        #[test]
        fn matches_two_pass_formulas(xs in proptest::collection::vec(-1e3f64..1e3, 2..200)) {
            let m: Moments = xs.iter().copied().collect();
            let n = xs.len() as f64;
            let mean = xs.iter().sum::<f64>() / n;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
            prop_assert!((m.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
            prop_assert!((m.sample_variance() - var).abs() < 1e-6 * (1.0 + var.abs()));
            prop_assert!(m.min() <= m.mean() + 1e-9 && m.mean() <= m.max() + 1e-9);
        }

        #[test]
        fn variance_is_nonnegative(xs in proptest::collection::vec(-1e6f64..1e6, 0..100)) {
            let m: Moments = xs.iter().copied().collect();
            prop_assert!(m.population_variance() >= -1e-9);
            prop_assert!(m.sample_variance() >= -1e-9);
        }
    }
}
