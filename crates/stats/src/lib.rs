//! Statistical primitives for the DStress framework.
//!
//! This crate collects the mathematics the paper leans on:
//!
//! * [`similarity`] — the Sokal & Michener simple-matching function used as the
//!   GA convergence criterion for binary chromosomes (paper §III-E, Eq. 2 and
//!   Table I) and the weighted Jaccard similarity used for integer/real
//!   chromosomes (Eq. 3).
//! * [`descriptive`] — running moments (mean, variance, skewness, kurtosis).
//! * [`normal`] — the normal distribution (PDF, CDF, quantiles, fitting),
//!   used to estimate the probability that a better pattern than the one
//!   discovered by the GA exists (paper §V-A.5, Fig. 13).
//! * [`dagostino`] — the D'Agostino–Pearson K² omnibus normality test the
//!   paper applies to the random-pattern CE distribution.
//! * [`histogram`] — fixed-width histograms for rendering the Fig. 13 PDFs.
//!
//! # Examples
//!
//! ```
//! use dstress_stats::similarity::sokal_michener;
//!
//! let a = [true, true, false, false];
//! let b = [true, false, false, false];
//! // 3 of 4 features match.
//! assert!((sokal_michener(&a, &b) - 0.75).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod dagostino;
pub mod descriptive;
pub mod histogram;
pub mod normal;
pub mod similarity;

pub use bootstrap::{bootstrap_ci, ConfidenceInterval};
pub use dagostino::{dagostino_pearson, DagostinoPearson};
pub use descriptive::Moments;
pub use histogram::Histogram;
pub use normal::Normal;
pub use similarity::{mean_pairwise, sokal_michener, weighted_jaccard, Otu};
