//! Fixed-width histograms for rendering empirical PDFs (paper Fig. 13).

use serde::{Deserialize, Serialize};

/// A fixed-width histogram over a closed range `[lo, hi]`.
///
/// Used by the efficiency experiment (Fig. 13) to render the probability
/// density of CE counts under random data / access patterns.
///
/// # Examples
///
/// ```
/// use dstress_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5)?;
/// for x in [1.0, 1.5, 9.9, 5.0] {
///     h.add(x);
/// }
/// assert_eq!(h.counts()[0], 2); // 1.0 and 1.5 fall in [0,2)
/// assert_eq!(h.total(), 4);
/// # Ok::<(), dstress_stats::histogram::HistogramError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    underflow: u64,
    overflow: u64,
}

/// Error constructing a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramError {
    /// `lo >= hi` or a bound was not finite.
    InvalidRange,
    /// Zero bins requested.
    NoBins,
}

impl std::fmt::Display for HistogramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HistogramError::InvalidRange => {
                write!(f, "histogram range must be finite with lo < hi")
            }
            HistogramError::NoBins => write!(f, "histogram requires at least one bin"),
        }
    }
}

impl std::error::Error for HistogramError {}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`HistogramError::InvalidRange`] unless `lo < hi` and both are
    /// finite, and [`HistogramError::NoBins`] when `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, HistogramError> {
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(HistogramError::InvalidRange);
        }
        if bins == 0 {
            return Err(HistogramError::NoBins);
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            underflow: 0,
            overflow: 0,
        })
    }

    /// Builds a histogram spanning the data's own range.
    ///
    /// # Errors
    ///
    /// Propagates [`HistogramError::InvalidRange`] for empty or constant data.
    pub fn from_data(data: &[f64], bins: usize) -> Result<Self, HistogramError> {
        let lo = data.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // Widen a hair so the max lands inside the top bin.
        let span = (hi - lo).max(f64::MIN_POSITIVE);
        let mut h = Histogram::new(lo, hi + span * 1e-9, bins)?;
        for &x in data {
            h.add(x);
        }
        Ok(h)
    }

    /// Adds an observation. Values outside the range are tallied in the
    /// under/overflow counters, not in any bin.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        if x >= self.hi {
            // The exact upper bound counts in the last bin.
            if x == self.hi {
                *self
                    .counts
                    .last_mut()
                    .expect("histogram has at least one bin") += 1;
            } else {
                self.overflow += 1;
            }
            return;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = ((x - self.lo) / width) as usize;
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Per-bin raw counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations added (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Lower bound of the range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Centre of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index {i} out of bounds");
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Empirical probability density per bin (`count / (total * width)`), so
    /// the histogram integrates to the in-range fraction of the data.
    pub fn density(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        let norm = 1.0 / (self.total as f64 * self.bin_width());
        self.counts.iter().map(|&c| c as f64 * norm).collect()
    }

    /// Renders a compact ASCII bar chart (one line per bin), for the
    /// figure-regeneration binaries.
    pub fn render_ascii(&self, max_width: usize) -> String {
        let peak = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = "#".repeat(
                (c as usize * max_width)
                    .div_ceil(peak as usize)
                    .min(max_width),
            );
            out.push_str(&format!(
                "{:>12.2} | {:<6} {}\n",
                self.bin_center(i),
                c,
                bar
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_validates() {
        assert!(Histogram::new(0.0, 1.0, 4).is_ok());
        assert_eq!(
            Histogram::new(1.0, 1.0, 4).unwrap_err(),
            HistogramError::InvalidRange
        );
        assert_eq!(
            Histogram::new(2.0, 1.0, 4).unwrap_err(),
            HistogramError::InvalidRange
        );
        assert_eq!(
            Histogram::new(0.0, 1.0, 0).unwrap_err(),
            HistogramError::NoBins
        );
    }

    #[test]
    fn bins_receive_correct_values() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        for x in [0.0, 0.5, 1.0, 2.9, 3.999] {
            h.add(x);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 1]);
    }

    #[test]
    fn exact_upper_bound_lands_in_last_bin() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        h.add(4.0);
        assert_eq!(h.counts(), &[0, 0, 0, 1]);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn out_of_range_values_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(-1.0);
        h.add(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 2);
        assert_eq!(h.counts(), &[0, 0]);
    }

    #[test]
    fn density_integrates_to_in_range_fraction() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        for i in 0..100 {
            h.add(i as f64 / 10.0);
        }
        let integral: f64 = h.density().iter().map(|d| d * h.bin_width()).sum();
        assert!((integral - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_data_covers_all_points() {
        let data = [3.0, 1.0, 2.0, 5.0, 4.0];
        let h = Histogram::from_data(&data, 4).unwrap();
        assert_eq!(h.underflow() + h.overflow(), 0);
        assert_eq!(h.counts().iter().sum::<u64>(), data.len() as u64);
    }

    #[test]
    fn ascii_render_has_one_line_per_bin() {
        let mut h = Histogram::new(0.0, 3.0, 3).unwrap();
        h.add(0.5);
        let s = h.render_ascii(20);
        assert_eq!(s.lines().count(), 3);
    }

    proptest! {
        #[test]
        fn total_is_preserved(xs in proptest::collection::vec(-10.0f64..10.0, 0..200)) {
            let mut h = Histogram::new(-5.0, 5.0, 7).unwrap();
            for &x in &xs {
                h.add(x);
            }
            let binned: u64 = h.counts().iter().sum();
            prop_assert_eq!(binned + h.underflow() + h.overflow(), xs.len() as u64);
        }
    }
}
