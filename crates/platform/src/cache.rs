//! A set-associative LRU cache model.
//!
//! The paper's viruses issue only ordinary loads and stores — no `clflush` —
//! so the DRAM access intensity is whatever leaks through the cache
//! hierarchy (§V-A.4: "we access to DRAMs only when a row is not cached and
//! thus we obtain a much lower DRAM access intensity"). This model filters a
//! recorded access trace down to the accesses that actually reach DRAM.

use serde::{Deserialize, Serialize};

/// A physical-address-indexed, set-associative, true-LRU cache.
///
/// # Examples
///
/// ```
/// use dstress_platform::cache::Cache;
///
/// let mut cache = Cache::new(1024, 2, 64);
/// assert!(!cache.access(0));  // cold miss
/// assert!(cache.access(0));   // now resident
/// assert!(cache.access(8));   // same line
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cache {
    sets: Vec<Vec<CacheLine>>,
    ways: usize,
    line_bytes: u64,
    set_count: u64,
    hits: u64,
    misses: u64,
    tick: u64,
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct CacheLine {
    tag: u64,
    last_used: u64,
}

impl Cache {
    /// Creates a cache of `capacity_bytes` with the given associativity and
    /// line size. Capacity is rounded down to a whole number of sets; at
    /// least one set is always present.
    ///
    /// # Panics
    ///
    /// Panics if `ways` or `line_bytes` is zero.
    pub fn new(capacity_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(ways > 0, "cache needs at least one way");
        assert!(line_bytes > 0, "cache line size must be non-zero");
        let set_count = (capacity_bytes / (ways * line_bytes)).max(1) as u64;
        Cache {
            sets: vec![Vec::with_capacity(ways); set_count as usize],
            ways,
            line_bytes: line_bytes as u64,
            set_count,
            hits: 0,
            misses: 0,
            tick: 0,
        }
    }

    /// Simulates one access to `addr`; returns `true` on hit. Misses fill
    /// the line (allocate-on-miss for both reads and writes).
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let line = addr / self.line_bytes;
        let set_idx = (line % self.set_count) as usize;
        let tag = line / self.set_count;
        let set = &mut self.sets[set_idx];
        if let Some(entry) = set.iter_mut().find(|l| l.tag == tag) {
            entry.last_used = self.tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if set.len() < self.ways {
            set.push(CacheLine {
                tag,
                last_used: self.tick,
            });
        } else {
            let victim = set
                .iter_mut()
                .min_by_key(|l| l.last_used)
                .expect("non-empty set has an LRU victim");
            *victim = CacheLine {
                tag,
                last_used: self.tick,
            };
        }
        false
    }

    /// Records `n` further accesses to `addr`'s line, which must be
    /// resident (call directly after [`Self::access`] on the same line).
    /// State and statistics end up exactly as after `n` sequential
    /// [`Self::access`] calls that all hit: `n` hits, `n` ticks, and the
    /// line's LRU stamp at the final tick — without `n` set scans. This is
    /// the bulk path behind span replay
    /// ([`crate::replay::ReplayProfile::build`]): words 2…k of a cache
    /// line touched by a contiguous span are guaranteed hits.
    ///
    /// # Panics
    ///
    /// Panics when the line is not resident.
    pub fn access_repeat(&mut self, addr: u64, n: u64) {
        if n == 0 {
            return;
        }
        let line = addr / self.line_bytes;
        let set_idx = (line % self.set_count) as usize;
        let tag = line / self.set_count;
        self.tick += n;
        self.hits += n;
        let entry = self.sets[set_idx]
            .iter_mut()
            .find(|l| l.tag == tag)
            .expect("access_repeat requires a resident line");
        entry.last_used = self.tick;
    }

    /// Hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all accesses (0 when no accesses yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Empties the cache and statistics.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.hits = 0;
        self.misses = 0;
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(4096, 4, 64);
        assert!(!c.access(100));
        assert!(c.access(100));
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 1);
    }

    #[test]
    fn same_line_different_word_hits() {
        let mut c = Cache::new(4096, 4, 64);
        c.access(0);
        assert!(c.access(56));
        assert!(!c.access(64), "next line is distinct");
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Direct-mapped-by-construction: 1 set, 2 ways.
        let mut c = Cache::new(128, 2, 64);
        c.access(0); // line A
        c.access(64); // line B
        c.access(0); // touch A -> B is LRU
        c.access(128); // evicts B
        assert!(c.access(0), "A must still be resident");
        assert!(!c.access(64), "B must have been evicted");
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = Cache::new(64 * 1024, 8, 64);
        // Stream 1 MB twice: second pass still misses (LRU streaming).
        for _pass in 0..2 {
            for line in 0..(1 << 14) {
                c.access(line * 64);
            }
        }
        assert!(c.hit_rate() < 0.05, "hit rate {}", c.hit_rate());
    }

    #[test]
    fn working_set_smaller_than_capacity_hits_after_warmup() {
        let mut c = Cache::new(64 * 1024, 8, 64);
        for _pass in 0..10 {
            for line in 0..256 {
                c.access(line * 64);
            }
        }
        assert!(c.hit_rate() > 0.85, "hit rate {}", c.hit_rate());
    }

    #[test]
    fn clear_resets_state() {
        let mut c = Cache::new(4096, 4, 64);
        c.access(0);
        c.clear();
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(!c.access(0), "cleared cache must cold-miss");
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_panics() {
        Cache::new(1024, 0, 64);
    }
}
