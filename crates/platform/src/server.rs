//! The experimental server: MCUs, MCBs, ECC counters, parameter knobs and
//! virus-run evaluation (paper §IV, Fig. 5).

use crate::config::ServerConfig;
use crate::power::{PowerModel, PowerReport};
use crate::replay::ReplayProfile;
use crate::session::{RecordedRun, Session};
use crate::thermal::{SettleReport, ThermalError, ThermalTestbed};
use dstress_dram::geometry::RowKey;
use dstress_dram::{AddressMap, Dimm, OperatingEnv, RunPlan, WordEvent};
use dstress_ecc::{classify_flips, CounterSnapshot, EccCounters, EventKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Number of memory controller units on the X-Gene 2 (paper Fig. 5).
pub const MCUS: usize = 4;
/// Number of memory controller bridges; each spans two MCUs and owns the
/// VDD rail (paper §IV).
pub const MCBS: usize = 2;
/// Ranks per DIMM.
pub const RANKS: usize = 2;

/// One memory controller unit: its DIMM, refresh period and allocation
/// cursor.
#[derive(Debug, Clone)]
struct Mcu {
    dimm: Dimm,
    trefp_s: f64,
    alloc_cursor: u64,
}

/// One memory controller bridge: the VDD rail for two MCUs.
#[derive(Debug, Clone, Copy)]
struct Mcb {
    vdd_v: f64,
}

/// Error counts attributed to one (MCU, rank) error domain — what Linux
/// EDAC exposes per DIMM/rank on the real server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainCounts {
    /// MCU (and therefore DIMM slot) index.
    pub mcu: usize,
    /// Rank within the DIMM.
    pub rank: usize,
    /// The counter values.
    pub counts: CounterSnapshot,
}

/// Error counts attributed to one DRAM row during a run — what the paper
/// aggregates to find "error-prone rows" for the neighbour-row experiments
/// (§V-A.2: "We identified the row addresses where errors were detected
/// using the mapping function").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowErrors {
    /// MCU (DIMM slot) index.
    pub mcu: usize,
    /// The affected row.
    pub row: dstress_dram::geometry::RowKey,
    /// Correctable errors observed in the row.
    pub ce: u64,
    /// Uncorrectable errors observed in the row.
    pub ue: u64,
}

/// A virus run prepared for repeated evaluation: one [`RunPlan`] per MCU,
/// built once for the current contents, operating points and replay
/// profile by [`XGene2Server::prepare_run`].
///
/// Valid until contents or operating points change — the ten-run averaging
/// loop of a fitness call reuses one `PreparedRun` across all its nonces,
/// paying the per-cell retention math once instead of once per window per
/// run.
#[derive(Debug, Clone)]
pub struct PreparedRun {
    plans: Vec<RunPlan>,
}

/// The observable outcome of evaluating one virus run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Error totals across all domains for this run.
    pub totals: CounterSnapshot,
    /// Per-(MCU, rank) breakdown.
    pub per_domain: Vec<DomainCounts>,
    /// Refresh windows completed before the run ended.
    pub windows_completed: u32,
    /// Whether the run was stopped early because ECC raised an
    /// uncorrectable error (the paper's framework kills the virus on UE,
    /// §V-A.1).
    pub stopped_on_ue: bool,
    /// Per-row error tallies for this run, sorted by descending CE count.
    pub row_errors: Vec<RowErrors>,
}

/// The simulated X-Gene 2 server.
///
/// See the crate-level example for typical use.
///
/// The server is `Clone`: a clone is a fully independent replica (its own
/// DIMMs, thermal state and ECC counters) whose future behaviour is
/// identical to the original's for the same inputs — the substrate the
/// parallel GA evaluation workers each own a copy of.
#[derive(Debug, Clone)]
pub struct XGene2Server {
    config: ServerConfig,
    mcus: Vec<Mcu>,
    mcbs: [Mcb; MCBS],
    thermal: ThermalTestbed,
    counters: Vec<Vec<EccCounters>>,
    /// Scratch row-error tally reused across runs (cleared before use).
    row_errors_scratch: HashMap<(usize, RowKey), (u64, u64)>,
    /// Scratch event buffer reused across windows (cleared before use).
    events_scratch: Vec<WordEvent>,
}

impl XGene2Server {
    /// Boots a server: builds four DIMMs from their per-slot seeds and
    /// density multipliers, nominal operating parameters everywhere, all
    /// DIMMs at ambient temperature.
    pub fn new(config: ServerConfig) -> Self {
        let mcus = (0..MCUS)
            .map(|i| Mcu {
                dimm: Dimm::new(config.dimm_config_for(i), config.dimm_seeds[i]),
                trefp_s: dstress_dram::env::NOMINAL_TREFP_S,
                alloc_cursor: 0,
            })
            .collect();
        let counters = (0..MCUS)
            .map(|_| (0..RANKS).map(|_| EccCounters::new()).collect())
            .collect();
        XGene2Server {
            config,
            mcus,
            mcbs: [Mcb {
                vdd_v: dstress_dram::env::NOMINAL_VDD_V,
            }; MCBS],
            thermal: ThermalTestbed::new(MCUS, config.ambient_c),
            counters,
            row_errors_scratch: HashMap::new(),
            events_scratch: Vec::new(),
        }
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Whether hardware interleaving is enabled.
    pub fn interleaving(&self) -> bool {
        self.config.interleaving
    }

    /// Row size of the installed DIMMs in bytes.
    pub fn row_bytes(&self) -> u64 {
        self.config.dimm.geometry.row_bytes as u64
    }

    /// Sets the refresh period of one MCU (the X-Gene 2 configures TREFP
    /// per MCU, §IV).
    ///
    /// # Panics
    ///
    /// Panics if `mcu` is out of range or `trefp_s` is not positive.
    pub fn set_trefp(&mut self, mcu: usize, trefp_s: f64) {
        assert!(trefp_s > 0.0, "refresh period must be positive");
        self.mcus[mcu].trefp_s = trefp_s;
    }

    /// The refresh period of one MCU.
    pub fn trefp(&self, mcu: usize) -> f64 {
        self.mcus[mcu].trefp_s
    }

    /// Sets the supply voltage of one MCB (two MCUs share a rail, §IV).
    ///
    /// # Panics
    ///
    /// Panics if `mcb` is out of range or the voltage is not positive.
    pub fn set_vdd(&mut self, mcb: usize, vdd_v: f64) {
        assert!(vdd_v > 0.0, "supply voltage must be positive");
        self.mcbs[mcb].vdd_v = vdd_v;
    }

    /// The supply voltage feeding an MCU.
    pub fn vdd_for_mcu(&self, mcu: usize) -> f64 {
        self.mcbs[mcu / 2].vdd_v
    }

    /// Drives one DIMM to a temperature setpoint through the PID testbed
    /// and returns the settling report. Check the report's `settled` flag:
    /// an unreachable setpoint comes back as `settled == false`, not as an
    /// error.
    ///
    /// # Errors
    ///
    /// [`ThermalError::ChannelOutOfRange`] if `mcu` is out of range.
    pub fn set_dimm_temperature(
        &mut self,
        mcu: usize,
        temp_c: f64,
    ) -> Result<SettleReport, ThermalError> {
        self.thermal.settle(mcu, temp_c)
    }

    /// The current temperature of a DIMM.
    ///
    /// # Panics
    ///
    /// Panics if `mcu` is out of range (the server always rigs one thermal
    /// channel per MCU).
    pub fn dimm_temperature(&self, mcu: usize) -> f64 {
        self.thermal
            .temperature(mcu)
            .expect("one thermal channel per MCU")
    }

    /// The operating point currently applied to one MCU's DIMM.
    pub fn operating_env(&self, mcu: usize) -> OperatingEnv {
        OperatingEnv {
            temp_c: self.dimm_temperature(mcu),
            vdd_v: self.vdd_for_mcu(mcu),
            trefp_s: self.mcus[mcu].trefp_s,
        }
    }

    /// Applies the paper's relaxed stress point (max TREFP, min VDD) to the
    /// second memory domain (MCU2+MCU3 behind MCB1), leaving MCU0/MCU1
    /// nominal — the §IV memory configuration.
    pub fn relax_second_domain(&mut self) {
        self.set_trefp(2, dstress_dram::env::MAX_TREFP_S);
        self.set_trefp(3, dstress_dram::env::MAX_TREFP_S);
        self.set_vdd(1, 1.428);
    }

    /// Opens a memory session that allocates from `target_mcu`.
    ///
    /// # Panics
    ///
    /// Panics if `target_mcu` is out of range.
    pub fn session(&mut self, target_mcu: usize) -> Session<'_> {
        assert!(target_mcu < MCUS, "MCU index {target_mcu} out of range");
        let max_trace = self.config.access.max_trace_len;
        Session::new(self, target_mcu, max_trace)
    }

    /// Read-only access to one DIMM (diagnostics / calibration).
    pub fn dimm(&self, mcu: usize) -> &Dimm {
        &self.mcus[mcu].dimm
    }

    /// Mutable access to one DIMM (workload setup outside a session).
    pub fn dimm_mut(&mut self, mcu: usize) -> &mut Dimm {
        &mut self.mcus[mcu].dimm
    }

    /// Clears the contents of every DIMM and resets allocation cursors —
    /// fresh memory between experiments.
    pub fn reset_memory(&mut self) {
        for mcu in &mut self.mcus {
            mcu.dimm.clear_contents();
            mcu.alloc_cursor = 0;
        }
    }

    pub(crate) fn allocate(&mut self, mcu: usize, bytes: u64) -> Option<u64> {
        let capacity = self.mcus[mcu].dimm.geometry().capacity_bytes();
        let cursor = self.mcus[mcu].alloc_cursor;
        if cursor + bytes > capacity {
            return None;
        }
        self.mcus[mcu].alloc_cursor += bytes;
        Some(cursor)
    }

    pub(crate) fn available(&self, mcu: usize) -> u64 {
        self.mcus[mcu].dimm.geometry().capacity_bytes() - self.mcus[mcu].alloc_cursor
    }

    pub(crate) fn read_local(&self, mcu: usize, local_addr: u64) -> u64 {
        let map = self.mcus[mcu].dimm.address_map();
        let loc = map
            .map(local_addr & !7)
            .expect("session addresses are within capacity");
        self.mcus[mcu].dimm.read_word(loc)
    }

    pub(crate) fn write_local(&mut self, mcu: usize, local_addr: u64, value: u64) {
        let map = self.mcus[mcu].dimm.address_map();
        let loc = map
            .map(local_addr & !7)
            .expect("session addresses are within capacity");
        self.mcus[mcu].dimm.write_word(loc, value);
    }

    /// Stores consecutive words starting at a DIMM-local address; the span
    /// must not cross a row boundary (callers chunk per row — consecutive
    /// in-row addresses map to consecutive columns).
    pub(crate) fn write_local_span(&mut self, mcu: usize, local_addr: u64, values: &[u64]) {
        let map = self.mcus[mcu].dimm.address_map();
        let loc = map
            .map(local_addr & !7)
            .expect("session addresses are within capacity");
        self.mcus[mcu].dimm.write_words(loc, values);
    }

    /// Zeroes all EDAC counters (done between virus runs, as on the real
    /// server).
    pub fn reset_counters(&mut self) {
        for per_mcu in &self.counters {
            for c in per_mcu {
                c.reset();
            }
        }
    }

    /// Snapshot of every (MCU, rank) error domain.
    pub fn counters(&self) -> Vec<DomainCounts> {
        let mut out = Vec::with_capacity(MCUS * RANKS);
        for (mcu, per_mcu) in self.counters.iter().enumerate() {
            for (rank, c) in per_mcu.iter().enumerate() {
                out.push(DomainCounts {
                    mcu,
                    rank,
                    counts: c.snapshot(),
                });
            }
        }
        out
    }

    /// Evaluates one virus run: replays the recorded trace for
    /// `windows_per_run` refresh windows under the current operating points
    /// and tallies ECC events. `nonce` distinguishes repeat runs of the
    /// same virus (VRT makes them differ, so callers average several runs,
    /// as the paper does with 10).
    ///
    /// The run stops at the end of the first window in which ECC reported
    /// an uncorrectable error, mirroring the OS killing the virus (§V-A.1).
    ///
    /// Internally this builds a [`PreparedRun`] and evaluates it; results
    /// are bit-identical to [`Self::evaluate_run_reference`].
    pub fn evaluate_run(&mut self, run: &RecordedRun, nonce: u64) -> RunOutcome {
        let prepared = self.prepare_run(run);
        self.evaluate_prepared(&prepared, nonce)
    }

    /// Evaluates `runs` repeat runs of the same virus, building the replay
    /// profile and run plans once (the paper's 10-run averaging workflow,
    /// §V-A.1).
    pub fn evaluate_runs(
        &mut self,
        run: &RecordedRun,
        runs: u32,
        base_nonce: u64,
    ) -> Vec<RunOutcome> {
        let prepared = self.prepare_run(run);
        (0..runs as u64)
            .map(|r| self.evaluate_prepared(&prepared, base_nonce.wrapping_add(r)))
            .collect()
    }

    /// Builds the per-MCU [`RunPlan`]s for a recorded run under the current
    /// contents and operating points. Evaluate with
    /// [`Self::evaluate_prepared`]; rebuild after any write or knob change.
    pub fn prepare_run(&mut self, run: &RecordedRun) -> PreparedRun {
        let profile = self.build_profile(run);
        let mut plans = Vec::with_capacity(MCUS);
        for mcu in 0..MCUS {
            let env = self.operating_env(mcu);
            let disturbance = self.mcus[mcu]
                .dimm
                .disturbance_profile(&profile.acts_per_window[mcu]);
            plans.push(self.mcus[mcu].dimm.prepare_run(&env, &disturbance));
        }
        PreparedRun { plans }
    }

    /// Evaluates one run through prepared plans — the hot path behind
    /// [`Self::evaluate_run`]/[`Self::evaluate_runs`] and the GA fitness
    /// loop. Per window, each DIMM emits its pre-built static events plus
    /// one Bernoulli draw per VRT-contingent cell; nothing else is
    /// recomputed.
    ///
    /// # Panics
    ///
    /// Panics if DIMM contents changed since [`Self::prepare_run`].
    pub fn evaluate_prepared(&mut self, prepared: &PreparedRun, nonce: u64) -> RunOutcome {
        let mut deltas = [[CounterSnapshot::default(); RANKS]; MCUS];
        let mut row_errors = std::mem::take(&mut self.row_errors_scratch);
        row_errors.clear();
        let mut events = std::mem::take(&mut self.events_scratch);
        let mut stopped_on_ue = false;
        let mut windows_completed = 0;
        'windows: for window in 0..self.config.windows_per_run {
            // The MCU index addresses several parallel arrays, so an index
            // loop is clearer than nested zips over disjoint borrows of self.
            #[allow(clippy::needless_range_loop)]
            for mcu in 0..MCUS {
                let window_nonce = nonce
                    .wrapping_mul(0x0100_0000_01B3)
                    .wrapping_add(window as u64)
                    .wrapping_add((mcu as u64) << 32);
                self.mcus[mcu].dimm.advance_window_planned(
                    &prepared.plans[mcu],
                    window_nonce,
                    &mut events,
                );
                if record_events(
                    &self.counters[mcu],
                    &mut deltas[mcu],
                    &mut row_errors,
                    mcu,
                    &events,
                ) {
                    stopped_on_ue = true;
                }
            }
            windows_completed = window + 1;
            if stopped_on_ue {
                break 'windows;
            }
        }
        self.events_scratch = events;
        let outcome = finalize_outcome(&deltas, &mut row_errors, windows_completed, stopped_on_ue);
        self.row_errors_scratch = row_errors;
        outcome
    }

    /// Reference evaluation path: re-runs the full per-cell retention loop
    /// every window instead of going through a [`PreparedRun`]. Kept as the
    /// oracle the differential tests (and the `window_kernel` bench) compare
    /// the prepared path against.
    pub fn evaluate_run_reference(&mut self, run: &RecordedRun, nonce: u64) -> RunOutcome {
        let profile = self.build_profile(run);
        let disturbances = self.disturbance_profiles(&profile);
        self.evaluate_with_profile(&disturbances, nonce)
    }

    /// Precomputes each DIMM's per-weak-word disturbance factors for a
    /// replay profile (they are invariant across windows and runs).
    fn disturbance_profiles(&self, profile: &ReplayProfile) -> Vec<Vec<f64>> {
        (0..MCUS)
            .map(|mcu| {
                self.mcus[mcu]
                    .dimm
                    .disturbance_profile(&profile.acts_per_window[mcu])
            })
            .collect()
    }

    /// Builds the analytic replay profile for a recorded run under the
    /// current per-MCU refresh periods.
    pub fn build_profile(&self, run: &RecordedRun) -> ReplayProfile {
        let maps: Vec<AddressMap> = self.mcus.iter().map(|m| m.dimm.address_map()).collect();
        let trefps: Vec<f64> = self.mcus.iter().map(|m| m.trefp_s).collect();
        ReplayProfile::build(run, &self.config.access, &maps, &trefps)
    }

    fn evaluate_with_profile(&mut self, disturbances: &[Vec<f64>], nonce: u64) -> RunOutcome {
        let mut deltas = [[CounterSnapshot::default(); RANKS]; MCUS];
        let mut row_errors = HashMap::new();
        let mut stopped_on_ue = false;
        let mut windows_completed = 0;
        'windows: for window in 0..self.config.windows_per_run {
            // The MCU index addresses four parallel arrays (`mcus`, `counters`,
            // `disturbances`, the per-MCU operating env), so an index loop is
            // clearer than nested enumerate/zip over disjoint borrows of self.
            #[allow(clippy::needless_range_loop)]
            for mcu in 0..MCUS {
                let env = self.operating_env(mcu);
                let window_nonce = nonce
                    .wrapping_mul(0x0100_0000_01B3)
                    .wrapping_add(window as u64)
                    .wrapping_add((mcu as u64) << 32);
                let events = self.mcus[mcu].dimm.advance_window_profiled(
                    &env,
                    &disturbances[mcu],
                    window_nonce,
                );
                if record_events(
                    &self.counters[mcu],
                    &mut deltas[mcu],
                    &mut row_errors,
                    mcu,
                    &events,
                ) {
                    stopped_on_ue = true;
                }
            }
            windows_completed = window + 1;
            if stopped_on_ue {
                break 'windows;
            }
        }
        finalize_outcome(&deltas, &mut row_errors, windows_completed, stopped_on_ue)
    }

    /// Measures server power at the current operating points, given the
    /// DRAM access rate each DIMM sustains.
    pub fn measure_power(
        &self,
        model: &PowerModel,
        dram_accesses_per_s: &[f64; MCUS],
    ) -> PowerReport {
        model.report((0..MCUS).map(|i| {
            (
                self.mcus[i].trefp_s,
                self.vdd_for_mcu(i),
                dram_accesses_per_s[i],
            )
        }))
    }
}

/// Tallies one window's events for one MCU into the persistent EDAC
/// counters, the run-local deltas and the per-row tally. Returns whether an
/// uncorrectable error was seen. Shared by the prepared and reference
/// evaluation paths so their outcomes are constructed identically.
fn record_events(
    counters: &[EccCounters],
    deltas: &mut [CounterSnapshot; RANKS],
    row_errors: &mut HashMap<(usize, RowKey), (u64, u64)>,
    mcu: usize,
    events: &[WordEvent],
) -> bool {
    let mut saw_ue = false;
    for event in events {
        let kind = classify_flips(event.written, event.flip_mask, 0);
        let rank = event.loc.rank as usize;
        counters[rank].record(kind);
        deltas[rank].count(kind);
        if kind.is_visible() {
            let entry = row_errors
                .entry((mcu, event.loc.row_key()))
                .or_insert((0u64, 0u64));
            match kind {
                EventKind::Ce => entry.0 += 1,
                EventKind::Ue => entry.1 += 1,
                _ => {}
            }
        }
        if kind == EventKind::Ue {
            saw_ue = true;
        }
    }
    saw_ue
}

/// Assembles a [`RunOutcome`] from run-local deltas and the per-row tally
/// (drained, so the caller's map can be reused). The row sort key is total
/// — descending CE, then UE, then row, then MCU — so the order never
/// depends on hash-map iteration.
fn finalize_outcome(
    deltas: &[[CounterSnapshot; RANKS]; MCUS],
    row_errors: &mut HashMap<(usize, RowKey), (u64, u64)>,
    windows_completed: u32,
    stopped_on_ue: bool,
) -> RunOutcome {
    let mut per_domain = Vec::with_capacity(MCUS * RANKS);
    for (mcu, ranks) in deltas.iter().enumerate() {
        for (rank, counts) in ranks.iter().enumerate() {
            per_domain.push(DomainCounts {
                mcu,
                rank,
                counts: *counts,
            });
        }
    }
    let totals = per_domain
        .iter()
        .fold(CounterSnapshot::default(), |acc, d| acc + d.counts);
    let mut rows: Vec<RowErrors> = row_errors
        .drain()
        .map(|((mcu, row), (ce, ue))| RowErrors { mcu, row, ce, ue })
        .collect();
    rows.sort_by(|a, b| {
        b.ce.cmp(&a.ce)
            .then(b.ue.cmp(&a.ue))
            .then(a.row.cmp(&b.row))
            .then(a.mcu.cmp(&b.mcu))
    });
    RunOutcome {
        totals,
        per_domain,
        windows_completed,
        stopped_on_ue,
        row_errors: rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::MemoryBus;

    const WORST: u64 = 0x3333_3333_3333_3333;

    fn server() -> XGene2Server {
        XGene2Server::new(ServerConfig::small())
    }

    /// Fills the whole target DIMM with a word pattern and returns the
    /// recorded run (the paper's data-pattern viruses malloc as much memory
    /// as possible so the pattern covers the module).
    fn fill_run(server: &mut XGene2Server, mcu: usize, word: u64) -> RecordedRun {
        server.reset_memory();
        let bytes = server.config().dimm.geometry.capacity_bytes();
        let mut s = server.session(mcu);
        let base = s.alloc(bytes).expect("allocation fits");
        let values = vec![word; (bytes / 8) as usize];
        s.fill(base, &values).expect("write in range");
        s.finish()
    }

    #[test]
    fn knobs_are_per_mcu_and_per_mcb() {
        let mut sv = server();
        sv.set_trefp(2, 1.0);
        assert_eq!(sv.trefp(2), 1.0);
        assert_eq!(sv.trefp(0), dstress_dram::env::NOMINAL_TREFP_S);
        sv.set_vdd(1, 1.428);
        assert_eq!(sv.vdd_for_mcu(2), 1.428);
        assert_eq!(sv.vdd_for_mcu(3), 1.428);
        assert_eq!(sv.vdd_for_mcu(0), 1.5);
    }

    #[test]
    fn relax_second_domain_matches_paper_setup() {
        let mut sv = server();
        sv.relax_second_domain();
        assert_eq!(sv.trefp(2), dstress_dram::env::MAX_TREFP_S);
        assert_eq!(sv.trefp(3), dstress_dram::env::MAX_TREFP_S);
        assert_eq!(sv.trefp(0), dstress_dram::env::NOMINAL_TREFP_S);
        assert!((sv.vdd_for_mcu(2) - 1.428).abs() < 1e-9);
        assert_eq!(sv.vdd_for_mcu(0), 1.5);
    }

    #[test]
    fn thermal_setpoint_sticks() {
        let mut sv = server();
        let report = sv.set_dimm_temperature(2, 60.0).unwrap();
        assert!(report.settled);
        assert!((sv.dimm_temperature(2) - 60.0).abs() < 0.5);
        assert!((sv.dimm_temperature(0) - sv.config().ambient_c).abs() < 0.5);
        assert!(sv.set_dimm_temperature(99, 60.0).is_err());
    }

    #[test]
    fn nominal_run_is_error_free() {
        let mut sv = server();
        sv.set_dimm_temperature(2, 60.0).unwrap();
        let run = fill_run(&mut sv, 2, WORST);
        let outcome = sv.evaluate_run(&run, 0);
        assert_eq!(
            outcome.totals.visible(),
            0,
            "no errors at nominal parameters"
        );
        assert!(!outcome.stopped_on_ue);
    }

    #[test]
    fn relaxed_run_manifests_ces_on_the_stressed_dimm_only() {
        let mut sv = server();
        sv.relax_second_domain();
        sv.set_dimm_temperature(2, 60.0).unwrap();
        let run = fill_run(&mut sv, 2, WORST);
        let outcome = sv.evaluate_run(&run, 0);
        assert!(outcome.totals.ce > 0, "relaxed DIMM2 at 60C must show CEs");
        let ce_of = |mcu: usize| -> u64 {
            outcome
                .per_domain
                .iter()
                .filter(|d| d.mcu == mcu)
                .map(|d| d.counts.visible())
                .sum()
        };
        // MCU0/MCU1 run at nominal parameters: no errors there.
        assert_eq!(ce_of(0), 0, "nominal MCU0 must stay clean");
        assert_eq!(ce_of(1), 0, "nominal MCU1 must stay clean");
        // DIMM3 is relaxed too but idle at ambient: only background errors,
        // far fewer than the heated, virus-filled DIMM2.
        assert!(
            ce_of(2) > 10 * ce_of(3).max(1),
            "DIMM2 must dominate: {} vs {}",
            ce_of(2),
            ce_of(3)
        );
    }

    #[test]
    fn high_temperature_triggers_ue_and_stops_the_run() {
        let mut sv = server();
        sv.relax_second_domain();
        sv.set_dimm_temperature(2, 70.0).unwrap();
        // Fill the whole DIMM so the UE-prone pairs are covered.
        let run = fill_run(&mut sv, 2, WORST);
        let outcome = sv.evaluate_run(&run, 0);
        assert!(outcome.stopped_on_ue, "70C must raise a UE");
        assert!(outcome.totals.ue > 0);
        assert!(outcome.windows_completed <= sv.config().windows_per_run);
    }

    #[test]
    fn counters_accumulate_across_runs_and_reset() {
        let mut sv = server();
        sv.relax_second_domain();
        sv.set_dimm_temperature(2, 60.0).unwrap();
        let run = fill_run(&mut sv, 2, WORST);
        let a = sv.evaluate_run(&run, 0);
        let b = sv.evaluate_run(&run, 1);
        let total: u64 = sv.counters().iter().map(|d| d.counts.visible()).sum();
        assert_eq!(total, a.totals.visible() + b.totals.visible());
        sv.reset_counters();
        let zero: u64 = sv.counters().iter().map(|d| d.counts.visible()).sum();
        assert_eq!(zero, 0);
    }

    #[test]
    fn run_outcomes_vary_across_nonces() {
        let mut sv = server();
        sv.relax_second_domain();
        sv.set_dimm_temperature(2, 60.0).unwrap();
        let run = fill_run(&mut sv, 2, WORST);
        let counts: Vec<u64> = (0..8).map(|n| sv.evaluate_run(&run, n).totals.ce).collect();
        let distinct: std::collections::HashSet<_> = counts.iter().collect();
        assert!(
            distinct.len() > 1,
            "VRT must differentiate runs: {counts:?}"
        );
    }

    #[test]
    fn worst_pattern_beats_all_zeros_at_server_level() {
        let mut sv = server();
        sv.relax_second_domain();
        sv.set_dimm_temperature(2, 60.0).unwrap();
        let run = fill_run(&mut sv, 2, WORST);
        let worst: u64 = (0..4).map(|n| sv.evaluate_run(&run, n).totals.ce).sum();
        sv.reset_memory();
        let run = fill_run(&mut sv, 2, 0);
        let zeros: u64 = (0..4).map(|n| sv.evaluate_run(&run, n).totals.ce).sum();
        assert!(
            worst as f64 >= 1.4 * zeros.max(1) as f64,
            "worst={worst} zeros={zeros}"
        );
    }

    #[test]
    fn prepared_run_matches_reference_path() {
        let mut sv = server();
        sv.relax_second_domain();
        sv.set_dimm_temperature(2, 62.0).unwrap();
        let run = fill_run(&mut sv, 2, WORST);
        let mut reference_sv = sv.clone();
        let prepared = sv.prepare_run(&run);
        for nonce in 0..12 {
            let fast = sv.evaluate_prepared(&prepared, nonce);
            let slow = reference_sv.evaluate_run_reference(&run, nonce);
            assert_eq!(fast, slow, "prepared path diverged at nonce {nonce}");
        }
    }

    #[test]
    fn cloned_server_is_independent_and_identical() {
        fn assert_send<T: Send>() {}
        assert_send::<XGene2Server>();
        let mut sv = server();
        sv.relax_second_domain();
        sv.set_dimm_temperature(2, 60.0).unwrap();
        let run = fill_run(&mut sv, 2, WORST);
        let mut replica = sv.clone();
        let a = sv.evaluate_run(&run, 5);
        let b = replica.evaluate_run(&run, 5);
        assert_eq!(a, b, "a replica must reproduce the original's outcomes");
        // The copies are independent: resetting one leaves the other's
        // accumulated counters untouched.
        sv.reset_counters();
        let replica_total: u64 = replica.counters().iter().map(|d| d.counts.visible()).sum();
        assert_eq!(replica_total, b.totals.visible());
    }

    #[test]
    fn measure_power_reflects_knobs() {
        let mut sv = server();
        let model = PowerModel::default();
        let before = sv.measure_power(&model, &[0.0; 4]);
        sv.relax_second_domain();
        let after = sv.measure_power(&model, &[0.0; 4]);
        assert!(after.dram_w < before.dram_w);
        assert!(after.system_w < before.system_w);
    }
}
