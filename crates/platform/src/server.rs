//! The experimental server: MCUs, MCBs, ECC counters, parameter knobs and
//! virus-run evaluation (paper §IV, Fig. 5).

use crate::config::ServerConfig;
use crate::power::{PowerModel, PowerReport};
use crate::replay::ReplayProfile;
use crate::session::{RecordedRun, Session};
use crate::thermal::{SettleReport, ThermalError, ThermalTestbed};
use dstress_dram::geometry::RowKey;
use dstress_dram::{
    ActivationCounts, AddressMap, Dimm, OperatingEnv, PlanError, RunPlan, WordEvent, MAX_LANES,
};
use dstress_ecc::{classify_flips, CounterSnapshot, EccCounters, EventKind};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Number of memory controller units on the X-Gene 2 (paper Fig. 5).
pub const MCUS: usize = 4;
/// Number of memory controller bridges; each spans two MCUs and owns the
/// VDD rail (paper §IV).
pub const MCBS: usize = 2;
/// Ranks per DIMM.
pub const RANKS: usize = 2;

/// Bounded retention of the per-MCU plan cache (entries are FIFO-evicted;
/// a generation needs one entry per distinct (contents, operating point,
/// activation profile) it evaluates, which is 1 for the idle MCUs and 1
/// per candidate — evicted next round — for the target MCU).
const PLAN_CACHE_CAP: usize = 8;

/// Bounded retention of the replay-profile cache. Candidates of one
/// population whose templates record value-independent traces (all the
/// data-pattern viruses) share one entry.
const PROFILE_CACHE_CAP: usize = 4;

/// An operating point as exact bit patterns — the plan-cache key must use
/// bitwise equality, not approximate float comparison, because the plan is
/// a pure function of the exact operating-point floats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EnvKey {
    temp: u64,
    vdd: u64,
    trefp: u64,
}

impl EnvKey {
    fn of(env: &OperatingEnv) -> EnvKey {
        EnvKey {
            temp: env.temp_c.to_bits(),
            vdd: env.vdd_v.to_bits(),
            trefp: env.trefp_s.to_bits(),
        }
    }
}

/// A [`RunPlan`] bundled with the pre-classified summary of its static
/// events, shared (via `Arc`) between the plan cache and every
/// [`PreparedRun`] that hit it.
#[derive(Debug)]
struct McuPlan {
    plan: RunPlan,
    statics: StaticSummary,
}

/// One plan-cache entry: the full (contents, operating point, disturbance)
/// key — contents identified by the DIMM's monotonically increasing
/// generation counter, the disturbance by the activation profile it derives
/// from — plus the prepared plan. The stored `acts` are compared for exact
/// equality on lookup, so a hit is collision-free by construction.
#[derive(Debug, Clone)]
struct CachedPlan {
    generation: u64,
    env: EnvKey,
    acts: ActivationCounts,
    prepared: Arc<McuPlan>,
}

/// One replay-profile cache entry: the profile depends on the recorded
/// trace and the per-MCU refresh periods (and on fixed per-server config),
/// so both are stored and verified for exact equality on lookup.
#[derive(Debug, Clone)]
struct CachedProfile {
    trefps: [u64; MCUS],
    trace: RecordedRun,
    profile: Arc<ReplayProfile>,
}

/// The per-window ECC contribution of a plan's static events, computed
/// once per plan. Static events are byte-identical every window of every
/// run, so instead of re-classifying them per (run, window) the batched
/// evaluation path applies this summary scaled by the number of completed
/// windows — integer sums, so the result is bit-identical to the
/// event-at-a-time accounting of [`record_events`].
#[derive(Debug, Default)]
struct StaticSummary {
    /// Per-rank counter delta of one window's static events.
    per_rank: [CounterSnapshot; RANKS],
    /// Per-row (CE, UE) tallies of one window's static events.
    rows: Vec<(RowKey, u64, u64)>,
    /// Whether the static events include an uncorrectable error (which
    /// then fires in every window).
    saw_ue: bool,
}

impl StaticSummary {
    fn build(statics: &[WordEvent]) -> StaticSummary {
        let mut summary = StaticSummary::default();
        let mut rows: HashMap<RowKey, (u64, u64)> = HashMap::new();
        for event in statics {
            let kind = classify_flips(event.written, event.flip_mask, 0);
            summary.per_rank[event.loc.rank as usize].count(kind);
            if kind.is_visible() {
                let entry = rows.entry(event.loc.row_key()).or_insert((0, 0));
                match kind {
                    EventKind::Ce => entry.0 += 1,
                    EventKind::Ue => entry.1 += 1,
                    _ => {}
                }
            }
            if kind == EventKind::Ue {
                summary.saw_ue = true;
            }
        }
        summary.rows = rows.into_iter().map(|(r, (ce, ue))| (r, ce, ue)).collect();
        // Deterministic order (the tallies are sums either way, but a
        // stable order keeps Debug output and iteration reproducible).
        summary.rows.sort_unstable_by_key(|&(r, _, _)| r);
        summary
    }
}

/// Multiplies every field of a per-window counter delta by a window count.
fn scale_snapshot(s: &CounterSnapshot, windows: u64) -> CounterSnapshot {
    CounterSnapshot {
        ce: s.ce * windows,
        ue: s.ue * windows,
        sdc_miscorrected: s.sdc_miscorrected * windows,
        sdc_undetected: s.sdc_undetected * windows,
        clean: s.clean * windows,
    }
}

/// Records a whole counter delta into the persistent EDAC tallies (the
/// bulk equivalent of per-event [`EccCounters::record`] calls).
fn record_snapshot(counters: &EccCounters, snap: &CounterSnapshot) {
    for (kind, count) in [
        (EventKind::Ce, snap.ce),
        (EventKind::Ue, snap.ue),
        (EventKind::SdcMiscorrected, snap.sdc_miscorrected),
        (EventKind::SdcUndetected, snap.sdc_undetected),
        (EventKind::None, snap.clean),
    ] {
        if count > 0 {
            counters.record_many(kind, count);
        }
    }
}

/// One memory controller unit: its DIMM, refresh period, allocation
/// cursor and prepared-plan cache.
#[derive(Debug, Clone)]
struct Mcu {
    dimm: Dimm,
    trefp_s: f64,
    alloc_cursor: u64,
    /// FIFO cache of prepared run plans, keyed by (contents generation,
    /// operating point, activation profile). Entries for superseded
    /// generations simply stop matching and age out; the generation
    /// counter never repeats, so a hit cannot alias different contents.
    plan_cache: VecDeque<CachedPlan>,
}

/// One memory controller bridge: the VDD rail for two MCUs.
#[derive(Debug, Clone, Copy)]
struct Mcb {
    vdd_v: f64,
}

/// Error counts attributed to one (MCU, rank) error domain — what Linux
/// EDAC exposes per DIMM/rank on the real server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainCounts {
    /// MCU (and therefore DIMM slot) index.
    pub mcu: usize,
    /// Rank within the DIMM.
    pub rank: usize,
    /// The counter values.
    pub counts: CounterSnapshot,
}

/// Error counts attributed to one DRAM row during a run — what the paper
/// aggregates to find "error-prone rows" for the neighbour-row experiments
/// (§V-A.2: "We identified the row addresses where errors were detected
/// using the mapping function").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowErrors {
    /// MCU (DIMM slot) index.
    pub mcu: usize,
    /// The affected row.
    pub row: dstress_dram::geometry::RowKey,
    /// Correctable errors observed in the row.
    pub ce: u64,
    /// Uncorrectable errors observed in the row.
    pub ue: u64,
}

/// A virus run prepared for repeated evaluation: one [`RunPlan`] per MCU,
/// built once for the current contents, operating points and replay
/// profile by [`XGene2Server::prepare_run`].
///
/// Valid until contents or operating points change — the ten-run averaging
/// loop of a fitness call reuses one `PreparedRun` across all its nonces,
/// paying the per-cell retention math once instead of once per window per
/// run.
#[derive(Debug, Clone)]
pub struct PreparedRun {
    plans: Vec<Arc<McuPlan>>,
}

/// The observable outcome of evaluating one virus run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Error totals across all domains for this run.
    pub totals: CounterSnapshot,
    /// Per-(MCU, rank) breakdown.
    pub per_domain: Vec<DomainCounts>,
    /// Refresh windows completed before the run ended.
    pub windows_completed: u32,
    /// Whether the run was stopped early because ECC raised an
    /// uncorrectable error (the paper's framework kills the virus on UE,
    /// §V-A.1).
    pub stopped_on_ue: bool,
    /// Per-row error tallies for this run, sorted by descending CE count.
    pub row_errors: Vec<RowErrors>,
}

/// The simulated X-Gene 2 server.
///
/// See the crate-level example for typical use.
///
/// The server is `Clone`: a clone is a fully independent replica (its own
/// DIMMs, thermal state and ECC counters) whose future behaviour is
/// identical to the original's for the same inputs — the substrate the
/// parallel GA evaluation workers each own a copy of.
#[derive(Debug, Clone)]
pub struct XGene2Server {
    config: ServerConfig,
    mcus: Vec<Mcu>,
    mcbs: [Mcb; MCBS],
    thermal: ThermalTestbed,
    counters: Vec<Vec<EccCounters>>,
    /// Scratch row-error tally reused across runs (cleared before use).
    row_errors_scratch: HashMap<(usize, RowKey), (u64, u64)>,
    /// Scratch event buffer reused across windows (cleared before use).
    events_scratch: Vec<WordEvent>,
    /// FIFO cache of replay profiles keyed by (trace, refresh periods).
    profile_cache: VecDeque<CachedProfile>,
}

impl XGene2Server {
    /// Boots a server: builds four DIMMs from their per-slot seeds and
    /// density multipliers, nominal operating parameters everywhere, all
    /// DIMMs at ambient temperature.
    pub fn new(config: ServerConfig) -> Self {
        let mcus = (0..MCUS)
            .map(|i| Mcu {
                dimm: Dimm::new(config.dimm_config_for(i), config.dimm_seeds[i]),
                trefp_s: dstress_dram::env::NOMINAL_TREFP_S,
                alloc_cursor: 0,
                plan_cache: VecDeque::new(),
            })
            .collect();
        let counters = (0..MCUS)
            .map(|_| (0..RANKS).map(|_| EccCounters::new()).collect())
            .collect();
        XGene2Server {
            config,
            mcus,
            mcbs: [Mcb {
                vdd_v: dstress_dram::env::NOMINAL_VDD_V,
            }; MCBS],
            thermal: ThermalTestbed::new(MCUS, config.ambient_c),
            counters,
            row_errors_scratch: HashMap::new(),
            events_scratch: Vec::new(),
            profile_cache: VecDeque::new(),
        }
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Whether hardware interleaving is enabled.
    pub fn interleaving(&self) -> bool {
        self.config.interleaving
    }

    /// Row size of the installed DIMMs in bytes.
    pub fn row_bytes(&self) -> u64 {
        self.config.dimm.geometry.row_bytes as u64
    }

    /// Sets the refresh period of one MCU (the X-Gene 2 configures TREFP
    /// per MCU, §IV).
    ///
    /// # Panics
    ///
    /// Panics if `mcu` is out of range or `trefp_s` is not positive.
    pub fn set_trefp(&mut self, mcu: usize, trefp_s: f64) {
        assert!(trefp_s > 0.0, "refresh period must be positive");
        self.mcus[mcu].trefp_s = trefp_s;
    }

    /// The refresh period of one MCU.
    pub fn trefp(&self, mcu: usize) -> f64 {
        self.mcus[mcu].trefp_s
    }

    /// Sets the supply voltage of one MCB (two MCUs share a rail, §IV).
    ///
    /// # Panics
    ///
    /// Panics if `mcb` is out of range or the voltage is not positive.
    pub fn set_vdd(&mut self, mcb: usize, vdd_v: f64) {
        assert!(vdd_v > 0.0, "supply voltage must be positive");
        self.mcbs[mcb].vdd_v = vdd_v;
    }

    /// The supply voltage feeding an MCU.
    pub fn vdd_for_mcu(&self, mcu: usize) -> f64 {
        self.mcbs[mcu / 2].vdd_v
    }

    /// Drives one DIMM to a temperature setpoint through the PID testbed
    /// and returns the settling report. Check the report's `settled` flag:
    /// an unreachable setpoint comes back as `settled == false`, not as an
    /// error.
    ///
    /// # Errors
    ///
    /// [`ThermalError::ChannelOutOfRange`] if `mcu` is out of range.
    pub fn set_dimm_temperature(
        &mut self,
        mcu: usize,
        temp_c: f64,
    ) -> Result<SettleReport, ThermalError> {
        self.thermal.settle(mcu, temp_c)
    }

    /// The current temperature of a DIMM.
    ///
    /// # Panics
    ///
    /// Panics if `mcu` is out of range (the server always rigs one thermal
    /// channel per MCU).
    pub fn dimm_temperature(&self, mcu: usize) -> f64 {
        self.thermal
            .temperature(mcu)
            .expect("one thermal channel per MCU")
    }

    /// The operating point currently applied to one MCU's DIMM.
    pub fn operating_env(&self, mcu: usize) -> OperatingEnv {
        OperatingEnv {
            temp_c: self.dimm_temperature(mcu),
            vdd_v: self.vdd_for_mcu(mcu),
            trefp_s: self.mcus[mcu].trefp_s,
        }
    }

    /// Applies the paper's relaxed stress point (max TREFP, min VDD) to the
    /// second memory domain (MCU2+MCU3 behind MCB1), leaving MCU0/MCU1
    /// nominal — the §IV memory configuration.
    pub fn relax_second_domain(&mut self) {
        self.set_trefp(2, dstress_dram::env::MAX_TREFP_S);
        self.set_trefp(3, dstress_dram::env::MAX_TREFP_S);
        self.set_vdd(1, 1.428);
    }

    /// Opens a memory session that allocates from `target_mcu`.
    ///
    /// # Panics
    ///
    /// Panics if `target_mcu` is out of range.
    pub fn session(&mut self, target_mcu: usize) -> Session<'_> {
        assert!(target_mcu < MCUS, "MCU index {target_mcu} out of range");
        let max_trace = self.config.access.max_trace_len;
        Session::new(self, target_mcu, max_trace)
    }

    /// Read-only access to one DIMM (diagnostics / calibration).
    pub fn dimm(&self, mcu: usize) -> &Dimm {
        &self.mcus[mcu].dimm
    }

    /// Mutable access to one DIMM (workload setup outside a session).
    pub fn dimm_mut(&mut self, mcu: usize) -> &mut Dimm {
        &mut self.mcus[mcu].dimm
    }

    /// Clears the contents of every DIMM and resets allocation cursors —
    /// fresh memory between experiments.
    pub fn reset_memory(&mut self) {
        for mcu in &mut self.mcus {
            mcu.dimm.clear_contents();
            mcu.alloc_cursor = 0;
        }
    }

    pub(crate) fn allocate(&mut self, mcu: usize, bytes: u64) -> Option<u64> {
        let capacity = self.mcus[mcu].dimm.geometry().capacity_bytes();
        let cursor = self.mcus[mcu].alloc_cursor;
        if cursor + bytes > capacity {
            return None;
        }
        self.mcus[mcu].alloc_cursor += bytes;
        Some(cursor)
    }

    pub(crate) fn available(&self, mcu: usize) -> u64 {
        self.mcus[mcu].dimm.geometry().capacity_bytes() - self.mcus[mcu].alloc_cursor
    }

    pub(crate) fn read_local(&self, mcu: usize, local_addr: u64) -> u64 {
        let map = self.mcus[mcu].dimm.address_map();
        let loc = map
            .map(local_addr & !7)
            .expect("session addresses are within capacity");
        self.mcus[mcu].dimm.read_word(loc)
    }

    pub(crate) fn write_local(&mut self, mcu: usize, local_addr: u64, value: u64) {
        let map = self.mcus[mcu].dimm.address_map();
        let loc = map
            .map(local_addr & !7)
            .expect("session addresses are within capacity");
        self.mcus[mcu].dimm.write_word(loc, value);
    }

    /// Loads consecutive words starting at a DIMM-local address; the span
    /// must not cross a row boundary (callers chunk per row — consecutive
    /// in-row addresses map to consecutive columns).
    pub(crate) fn read_local_span(&self, mcu: usize, local_addr: u64, out: &mut [u64]) {
        let map = self.mcus[mcu].dimm.address_map();
        let loc = map
            .map(local_addr & !7)
            .expect("session addresses are within capacity");
        self.mcus[mcu].dimm.read_words(loc, out);
    }

    /// Stores consecutive words starting at a DIMM-local address; the span
    /// must not cross a row boundary (callers chunk per row — consecutive
    /// in-row addresses map to consecutive columns).
    pub(crate) fn write_local_span(&mut self, mcu: usize, local_addr: u64, values: &[u64]) {
        let map = self.mcus[mcu].dimm.address_map();
        let loc = map
            .map(local_addr & !7)
            .expect("session addresses are within capacity");
        self.mcus[mcu].dimm.write_words(loc, values);
    }

    /// Zeroes all EDAC counters (done between virus runs, as on the real
    /// server).
    pub fn reset_counters(&mut self) {
        for per_mcu in &self.counters {
            for c in per_mcu {
                c.reset();
            }
        }
    }

    /// Snapshot of every (MCU, rank) error domain.
    pub fn counters(&self) -> Vec<DomainCounts> {
        let mut out = Vec::with_capacity(MCUS * RANKS);
        for (mcu, per_mcu) in self.counters.iter().enumerate() {
            for (rank, c) in per_mcu.iter().enumerate() {
                out.push(DomainCounts {
                    mcu,
                    rank,
                    counts: c.snapshot(),
                });
            }
        }
        out
    }

    /// Evaluates one virus run: replays the recorded trace for
    /// `windows_per_run` refresh windows under the current operating points
    /// and tallies ECC events. `nonce` distinguishes repeat runs of the
    /// same virus (VRT makes them differ, so callers average several runs,
    /// as the paper does with 10).
    ///
    /// The run stops at the end of the first window in which ECC reported
    /// an uncorrectable error, mirroring the OS killing the virus (§V-A.1).
    ///
    /// Internally this builds a [`PreparedRun`] and evaluates it; results
    /// are bit-identical to [`Self::evaluate_run_reference`].
    ///
    /// # Errors
    ///
    /// [`PlanError`] on a plan-layer programming error (see
    /// [`Self::evaluate_prepared`]).
    pub fn evaluate_run(&mut self, run: &RecordedRun, nonce: u64) -> Result<RunOutcome, PlanError> {
        let prepared = self.prepare_run(run)?;
        self.evaluate_prepared(&prepared, nonce)
    }

    /// Evaluates `runs` repeat runs of the same virus, building the replay
    /// profile and run plans once (the paper's 10-run averaging workflow,
    /// §V-A.1). The runs are evaluated through the batched lane kernel —
    /// all of them advance window by window together — which is
    /// bit-identical to evaluating them one at a time
    /// ([`Self::evaluate_runs_sequential`], the retained oracle).
    ///
    /// # Errors
    ///
    /// [`PlanError`] on a plan-layer programming error.
    pub fn evaluate_runs(
        &mut self,
        run: &RecordedRun,
        runs: u32,
        base_nonce: u64,
    ) -> Result<Vec<RunOutcome>, PlanError> {
        let prepared = self.prepare_run(run)?;
        self.evaluate_prepared_runs(&prepared, runs, base_nonce)
    }

    /// Per-run oracle for [`Self::evaluate_runs`]: the same prepared plans
    /// evaluated one run at a time through [`Self::evaluate_prepared`].
    /// The differential suite pins the batched path against this.
    ///
    /// # Errors
    ///
    /// [`PlanError`] on a plan-layer programming error.
    pub fn evaluate_runs_sequential(
        &mut self,
        run: &RecordedRun,
        runs: u32,
        base_nonce: u64,
    ) -> Result<Vec<RunOutcome>, PlanError> {
        let prepared = self.prepare_run(run)?;
        (0..runs as u64)
            .map(|r| self.evaluate_prepared(&prepared, base_nonce.wrapping_add(r)))
            .collect()
    }

    /// Builds the per-MCU [`RunPlan`]s for a recorded run under the current
    /// contents and operating points, serving repeats from the per-MCU plan
    /// cache: candidates sharing a (contents, operating point, activation
    /// profile) key — in a GA population that is every candidate for the
    /// idle MCUs, and repeat evaluations of one candidate for the target
    /// MCU — pay the per-cell retention math once. A cache hit requires
    /// exact equality of the stored activation profile, so cached and
    /// freshly built plans are interchangeable bit for bit and outcomes
    /// never depend on cache state.
    ///
    /// Evaluate with [`Self::evaluate_prepared`]; rebuild after any write
    /// or knob change.
    ///
    /// # Errors
    ///
    /// [`PlanError::IndexOverflow`] if a weak-cell population overflows the
    /// plan index layout.
    pub fn prepare_run(&mut self, run: &RecordedRun) -> Result<PreparedRun, PlanError> {
        let profile = self.profile_cached(run);
        let mut plans = Vec::with_capacity(MCUS);
        for mcu in 0..MCUS {
            let env = EnvKey::of(&self.operating_env(mcu));
            let generation = self.mcus[mcu].dimm.contents_generation();
            let acts = &profile.acts_per_window[mcu];
            if let Some(hit) = self.mcus[mcu]
                .plan_cache
                .iter()
                .find(|c| c.generation == generation && c.env == env && &c.acts == acts)
            {
                plans.push(Arc::clone(&hit.prepared));
                continue;
            }
            let prepared = Arc::new(self.build_mcu_plan(mcu, &profile)?);
            let cache = &mut self.mcus[mcu].plan_cache;
            if cache.len() >= PLAN_CACHE_CAP {
                cache.pop_front();
            }
            cache.push_back(CachedPlan {
                generation,
                env,
                acts: acts.clone(),
                prepared: Arc::clone(&prepared),
            });
            plans.push(prepared);
        }
        Ok(PreparedRun { plans })
    }

    /// [`Self::prepare_run`] without consulting or populating the caches —
    /// the cold-path oracle the cache-coherence tests (and the `generation`
    /// bench baseline) compare against.
    ///
    /// # Errors
    ///
    /// [`PlanError::IndexOverflow`] if a weak-cell population overflows the
    /// plan index layout.
    pub fn prepare_run_uncached(&mut self, run: &RecordedRun) -> Result<PreparedRun, PlanError> {
        let profile = self.build_profile(run);
        let mut plans = Vec::with_capacity(MCUS);
        for mcu in 0..MCUS {
            plans.push(Arc::new(self.build_mcu_plan(mcu, &profile)?));
        }
        Ok(PreparedRun { plans })
    }

    fn build_mcu_plan(
        &mut self,
        mcu: usize,
        profile: &ReplayProfile,
    ) -> Result<McuPlan, PlanError> {
        let env = self.operating_env(mcu);
        let disturbance = self.mcus[mcu]
            .dimm
            .disturbance_profile(&profile.acts_per_window[mcu]);
        let plan = self.mcus[mcu].dimm.prepare_run(&env, &disturbance)?;
        let statics = StaticSummary::build(plan.static_events());
        Ok(McuPlan { plan, statics })
    }

    /// Drops every cached plan and replay profile. Outcomes are
    /// cache-state independent, so this only affects wall-clock — it
    /// exists for benchmarks and cache-coherence tests.
    pub fn clear_eval_caches(&mut self) {
        for mcu in &mut self.mcus {
            mcu.plan_cache.clear();
        }
        self.profile_cache.clear();
    }

    /// The replay profile for a recorded run, served from the profile
    /// cache when an entry with an identical (trace, refresh periods) key
    /// exists. Equality of the full trace is verified on every hit, so the
    /// cache can never alias two different traces; data-pattern viruses,
    /// whose traces record addresses and access kinds but not values,
    /// share one entry across a whole population.
    fn profile_cached(&mut self, run: &RecordedRun) -> Arc<ReplayProfile> {
        let trefps: [u64; MCUS] = std::array::from_fn(|i| self.mcus[i].trefp_s.to_bits());
        if let Some(hit) = self
            .profile_cache
            .iter()
            .find(|c| c.trefps == trefps && &c.trace == run)
        {
            return Arc::clone(&hit.profile);
        }
        let profile = Arc::new(self.build_profile(run));
        if self.profile_cache.len() >= PROFILE_CACHE_CAP {
            self.profile_cache.pop_front();
        }
        self.profile_cache.push_back(CachedProfile {
            trefps,
            trace: run.clone(),
            profile: Arc::clone(&profile),
        });
        profile
    }

    /// Evaluates one run through prepared plans — the hot path behind
    /// [`Self::evaluate_run`]/[`Self::evaluate_runs`] and the GA fitness
    /// loop. Per window, each DIMM emits its pre-built static events plus
    /// one Bernoulli draw per VRT-contingent cell; nothing else is
    /// recomputed.
    ///
    /// # Errors
    ///
    /// [`PlanError::Stale`] if DIMM contents changed since
    /// [`Self::prepare_run`] — a programming error in the calling layer,
    /// surfaced as a typed error (not a panic) so an evaluation supervisor
    /// classifies it as permanent instead of retrying the candidate.
    pub fn evaluate_prepared(
        &mut self,
        prepared: &PreparedRun,
        nonce: u64,
    ) -> Result<RunOutcome, PlanError> {
        self.ensure_prepared_fresh(prepared)?;
        let mut deltas = [[CounterSnapshot::default(); RANKS]; MCUS];
        let mut row_errors = std::mem::take(&mut self.row_errors_scratch);
        row_errors.clear();
        let mut events = std::mem::take(&mut self.events_scratch);
        let mut stopped_on_ue = false;
        let mut windows_completed = 0;
        'windows: for window in 0..self.config.windows_per_run {
            // The MCU index addresses several parallel arrays, so an index
            // loop is clearer than nested zips over disjoint borrows of self.
            #[allow(clippy::needless_range_loop)]
            for mcu in 0..MCUS {
                self.mcus[mcu]
                    .dimm
                    .advance_window_planned(
                        &prepared.plans[mcu].plan,
                        window_nonce(nonce, window, mcu),
                        &mut events,
                    )
                    .expect("plan freshness checked above; no writes happen mid-evaluation");
                if record_events(
                    &self.counters[mcu],
                    &mut deltas[mcu],
                    &mut row_errors,
                    mcu,
                    &events,
                ) {
                    stopped_on_ue = true;
                }
            }
            windows_completed = window + 1;
            if stopped_on_ue {
                break 'windows;
            }
        }
        self.events_scratch = events;
        let outcome = finalize_outcome(&deltas, &mut row_errors, windows_completed, stopped_on_ue);
        self.row_errors_scratch = row_errors;
        Ok(outcome)
    }

    /// Evaluates `runs` repeat runs of a prepared virus in one batched
    /// sweep: per (window, MCU) the lane kernel
    /// ([`RunPlan::advance_window_vrt_lanes`]) computes every live run's
    /// VRT events in a single cell-outer pass over the plan's flat SoA,
    /// and the static events — identical in every window — are applied
    /// once per run via the plan's precomputed [`StaticSummary`] scaled by
    /// the run's completed windows. All accounting is integer sums, so the
    /// outcomes (and the persistent EDAC counters) are bit-identical to
    /// evaluating the runs one at a time.
    ///
    /// A run stops after the first full window in which any MCU raised an
    /// uncorrectable error, exactly as in [`Self::evaluate_prepared`]; its
    /// lane then goes dead while the other runs continue.
    ///
    /// # Errors
    ///
    /// [`PlanError::Stale`] if DIMM contents changed since
    /// [`Self::prepare_run`].
    pub fn evaluate_prepared_runs(
        &mut self,
        prepared: &PreparedRun,
        runs: u32,
        base_nonce: u64,
    ) -> Result<Vec<RunOutcome>, PlanError> {
        self.ensure_prepared_fresh(prepared)?;
        let mut outcomes = Vec::with_capacity(runs as usize);
        let mut batch_start = 0u64;
        while batch_start < runs as u64 {
            let lanes = (runs as u64 - batch_start).min(MAX_LANES as u64) as usize;
            let nonces: Vec<u64> = (0..lanes as u64)
                .map(|l| base_nonce.wrapping_add(batch_start + l))
                .collect();
            outcomes.extend(self.evaluate_lane_batch(prepared, &nonces));
            batch_start += lanes as u64;
        }
        Ok(outcomes)
    }

    /// One ≤[`MAX_LANES`]-lane batch of [`Self::evaluate_prepared_runs`]:
    /// `nonces[l]` is lane `l`'s run nonce. Freshness must already be
    /// checked.
    fn evaluate_lane_batch(&mut self, prepared: &PreparedRun, nonces: &[u64]) -> Vec<RunOutcome> {
        let lanes = nonces.len();
        let mut deltas = vec![[[CounterSnapshot::default(); RANKS]; MCUS]; lanes];
        let mut row_errors: Vec<HashMap<(usize, RowKey), (u64, u64)>> = vec![HashMap::new(); lanes];
        let mut lane_events: Vec<Vec<WordEvent>> = vec![Vec::new(); lanes];
        let mut window_nonces = vec![0u64; lanes];
        let mut windows_completed = vec![0u32; lanes];
        let mut stopped_on_ue = vec![false; lanes];
        let mut live = if lanes == MAX_LANES {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        };
        for window in 0..self.config.windows_per_run {
            if live == 0 {
                break;
            }
            let mut ue_this_window = 0u64;
            #[allow(clippy::needless_range_loop)]
            for mcu in 0..MCUS {
                for (l, &nonce) in nonces.iter().enumerate() {
                    window_nonces[l] = window_nonce(nonce, window, mcu);
                }
                self.mcus[mcu]
                    .dimm
                    .advance_window_planned_lanes(
                        &prepared.plans[mcu].plan,
                        &window_nonces,
                        live,
                        &mut lane_events,
                    )
                    .expect("plan freshness checked by caller; no writes happen mid-evaluation");
                if prepared.plans[mcu].statics.saw_ue {
                    ue_this_window |= live;
                }
                let mut scan = live;
                while scan != 0 {
                    let lane = scan.trailing_zeros() as usize;
                    scan &= scan - 1;
                    if record_events(
                        &self.counters[mcu],
                        &mut deltas[lane][mcu],
                        &mut row_errors[lane],
                        mcu,
                        &lane_events[lane],
                    ) {
                        ue_this_window |= 1u64 << lane;
                    }
                }
            }
            let mut scan = live;
            while scan != 0 {
                let lane = scan.trailing_zeros() as usize;
                scan &= scan - 1;
                windows_completed[lane] = window + 1;
            }
            // A UE ends a run after its full window, exactly like the
            // per-run path's end-of-window break.
            let stopping = live & ue_this_window;
            let mut scan = stopping;
            while scan != 0 {
                let lane = scan.trailing_zeros() as usize;
                scan &= scan - 1;
                stopped_on_ue[lane] = true;
            }
            live &= !stopping;
        }
        // Apply each run's static-event contribution in one scaled pass:
        // the statics fired identically in every completed window.
        (0..lanes)
            .map(|lane| {
                let windows = windows_completed[lane];
                for (mcu, lane_deltas) in deltas[lane].iter_mut().enumerate() {
                    let statics = &prepared.plans[mcu].statics;
                    for (rank, delta) in lane_deltas.iter_mut().enumerate() {
                        let scaled = scale_snapshot(&statics.per_rank[rank], windows as u64);
                        record_snapshot(&self.counters[mcu][rank], &scaled);
                        *delta = *delta + scaled;
                    }
                    for &(row, ce, ue) in &statics.rows {
                        let entry = row_errors[lane].entry((mcu, row)).or_insert((0, 0));
                        entry.0 += ce * windows as u64;
                        entry.1 += ue * windows as u64;
                    }
                }
                finalize_outcome(
                    &deltas[lane],
                    &mut row_errors[lane],
                    windows,
                    stopped_on_ue[lane],
                )
            })
            .collect()
    }

    fn ensure_prepared_fresh(&self, prepared: &PreparedRun) -> Result<(), PlanError> {
        for (mcu, plan) in prepared.plans.iter().enumerate() {
            self.mcus[mcu].dimm.ensure_plan_fresh(&plan.plan)?;
        }
        Ok(())
    }

    /// Reference evaluation path: re-runs the full per-cell retention loop
    /// every window instead of going through a [`PreparedRun`]. Kept as the
    /// oracle the differential tests (and the `window_kernel` bench) compare
    /// the prepared path against.
    pub fn evaluate_run_reference(&mut self, run: &RecordedRun, nonce: u64) -> RunOutcome {
        let profile = self.build_profile(run);
        let disturbances = self.disturbance_profiles(&profile);
        self.evaluate_with_profile(&disturbances, nonce)
    }

    /// Precomputes each DIMM's per-weak-word disturbance factors for a
    /// replay profile (they are invariant across windows and runs).
    fn disturbance_profiles(&self, profile: &ReplayProfile) -> Vec<Vec<f64>> {
        (0..MCUS)
            .map(|mcu| {
                self.mcus[mcu]
                    .dimm
                    .disturbance_profile(&profile.acts_per_window[mcu])
            })
            .collect()
    }

    /// Builds the analytic replay profile for a recorded run under the
    /// current per-MCU refresh periods.
    pub fn build_profile(&self, run: &RecordedRun) -> ReplayProfile {
        let maps: Vec<AddressMap> = self.mcus.iter().map(|m| m.dimm.address_map()).collect();
        let trefps: Vec<f64> = self.mcus.iter().map(|m| m.trefp_s).collect();
        ReplayProfile::build(run, &self.config.access, &maps, &trefps)
    }

    fn evaluate_with_profile(&mut self, disturbances: &[Vec<f64>], nonce: u64) -> RunOutcome {
        let mut deltas = [[CounterSnapshot::default(); RANKS]; MCUS];
        let mut row_errors = HashMap::new();
        let mut stopped_on_ue = false;
        let mut windows_completed = 0;
        'windows: for window in 0..self.config.windows_per_run {
            // The MCU index addresses four parallel arrays (`mcus`, `counters`,
            // `disturbances`, the per-MCU operating env), so an index loop is
            // clearer than nested enumerate/zip over disjoint borrows of self.
            #[allow(clippy::needless_range_loop)]
            for mcu in 0..MCUS {
                let env = self.operating_env(mcu);
                let events = self.mcus[mcu].dimm.advance_window_profiled(
                    &env,
                    &disturbances[mcu],
                    window_nonce(nonce, window, mcu),
                );
                if record_events(
                    &self.counters[mcu],
                    &mut deltas[mcu],
                    &mut row_errors,
                    mcu,
                    &events,
                ) {
                    stopped_on_ue = true;
                }
            }
            windows_completed = window + 1;
            if stopped_on_ue {
                break 'windows;
            }
        }
        finalize_outcome(&deltas, &mut row_errors, windows_completed, stopped_on_ue)
    }

    /// Measures server power at the current operating points, given the
    /// DRAM access rate each DIMM sustains.
    pub fn measure_power(
        &self,
        model: &PowerModel,
        dram_accesses_per_s: &[f64; MCUS],
    ) -> PowerReport {
        model.report((0..MCUS).map(|i| {
            (
                self.mcus[i].trefp_s,
                self.vdd_for_mcu(i),
                dram_accesses_per_s[i],
            )
        }))
    }
}

/// Derives the per-(window, MCU) VRT nonce from a run nonce — the one
/// formula every evaluation path (reference, prepared, batched) shares.
fn window_nonce(run_nonce: u64, window: u32, mcu: usize) -> u64 {
    run_nonce
        .wrapping_mul(0x0100_0000_01B3)
        .wrapping_add(window as u64)
        .wrapping_add((mcu as u64) << 32)
}

/// Tallies one window's events for one MCU into the persistent EDAC
/// counters, the run-local deltas and the per-row tally. Returns whether an
/// uncorrectable error was seen. Shared by the prepared and reference
/// evaluation paths so their outcomes are constructed identically.
fn record_events(
    counters: &[EccCounters],
    deltas: &mut [CounterSnapshot; RANKS],
    row_errors: &mut HashMap<(usize, RowKey), (u64, u64)>,
    mcu: usize,
    events: &[WordEvent],
) -> bool {
    let mut saw_ue = false;
    for event in events {
        let kind = classify_flips(event.written, event.flip_mask, 0);
        let rank = event.loc.rank as usize;
        counters[rank].record(kind);
        deltas[rank].count(kind);
        if kind.is_visible() {
            let entry = row_errors
                .entry((mcu, event.loc.row_key()))
                .or_insert((0u64, 0u64));
            match kind {
                EventKind::Ce => entry.0 += 1,
                EventKind::Ue => entry.1 += 1,
                _ => {}
            }
        }
        if kind == EventKind::Ue {
            saw_ue = true;
        }
    }
    saw_ue
}

/// Assembles a [`RunOutcome`] from run-local deltas and the per-row tally
/// (drained, so the caller's map can be reused). The row sort key is total
/// — descending CE, then UE, then row, then MCU — so the order never
/// depends on hash-map iteration.
fn finalize_outcome(
    deltas: &[[CounterSnapshot; RANKS]; MCUS],
    row_errors: &mut HashMap<(usize, RowKey), (u64, u64)>,
    windows_completed: u32,
    stopped_on_ue: bool,
) -> RunOutcome {
    let mut per_domain = Vec::with_capacity(MCUS * RANKS);
    for (mcu, ranks) in deltas.iter().enumerate() {
        for (rank, counts) in ranks.iter().enumerate() {
            per_domain.push(DomainCounts {
                mcu,
                rank,
                counts: *counts,
            });
        }
    }
    let totals = per_domain
        .iter()
        .fold(CounterSnapshot::default(), |acc, d| acc + d.counts);
    let mut rows: Vec<RowErrors> = row_errors
        .drain()
        .map(|((mcu, row), (ce, ue))| RowErrors { mcu, row, ce, ue })
        .collect();
    rows.sort_by(|a, b| {
        b.ce.cmp(&a.ce)
            .then(b.ue.cmp(&a.ue))
            .then(a.row.cmp(&b.row))
            .then(a.mcu.cmp(&b.mcu))
    });
    RunOutcome {
        totals,
        per_domain,
        windows_completed,
        stopped_on_ue,
        row_errors: rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::MemoryBus;

    const WORST: u64 = 0x3333_3333_3333_3333;

    fn server() -> XGene2Server {
        XGene2Server::new(ServerConfig::small())
    }

    /// Fills the whole target DIMM with a word pattern and returns the
    /// recorded run (the paper's data-pattern viruses malloc as much memory
    /// as possible so the pattern covers the module).
    fn fill_run(server: &mut XGene2Server, mcu: usize, word: u64) -> RecordedRun {
        server.reset_memory();
        let bytes = server.config().dimm.geometry.capacity_bytes();
        let mut s = server.session(mcu);
        let base = s.alloc(bytes).expect("allocation fits");
        let values = vec![word; (bytes / 8) as usize];
        s.fill(base, &values).expect("write in range");
        s.finish()
    }

    #[test]
    fn knobs_are_per_mcu_and_per_mcb() {
        let mut sv = server();
        sv.set_trefp(2, 1.0);
        assert_eq!(sv.trefp(2), 1.0);
        assert_eq!(sv.trefp(0), dstress_dram::env::NOMINAL_TREFP_S);
        sv.set_vdd(1, 1.428);
        assert_eq!(sv.vdd_for_mcu(2), 1.428);
        assert_eq!(sv.vdd_for_mcu(3), 1.428);
        assert_eq!(sv.vdd_for_mcu(0), 1.5);
    }

    #[test]
    fn relax_second_domain_matches_paper_setup() {
        let mut sv = server();
        sv.relax_second_domain();
        assert_eq!(sv.trefp(2), dstress_dram::env::MAX_TREFP_S);
        assert_eq!(sv.trefp(3), dstress_dram::env::MAX_TREFP_S);
        assert_eq!(sv.trefp(0), dstress_dram::env::NOMINAL_TREFP_S);
        assert!((sv.vdd_for_mcu(2) - 1.428).abs() < 1e-9);
        assert_eq!(sv.vdd_for_mcu(0), 1.5);
    }

    #[test]
    fn thermal_setpoint_sticks() {
        let mut sv = server();
        let report = sv.set_dimm_temperature(2, 60.0).unwrap();
        assert!(report.settled);
        assert!((sv.dimm_temperature(2) - 60.0).abs() < 0.5);
        assert!((sv.dimm_temperature(0) - sv.config().ambient_c).abs() < 0.5);
        assert!(sv.set_dimm_temperature(99, 60.0).is_err());
    }

    #[test]
    fn nominal_run_is_error_free() {
        let mut sv = server();
        sv.set_dimm_temperature(2, 60.0).unwrap();
        let run = fill_run(&mut sv, 2, WORST);
        let outcome = sv.evaluate_run(&run, 0).unwrap();
        assert_eq!(
            outcome.totals.visible(),
            0,
            "no errors at nominal parameters"
        );
        assert!(!outcome.stopped_on_ue);
    }

    #[test]
    fn relaxed_run_manifests_ces_on_the_stressed_dimm_only() {
        let mut sv = server();
        sv.relax_second_domain();
        sv.set_dimm_temperature(2, 60.0).unwrap();
        let run = fill_run(&mut sv, 2, WORST);
        let outcome = sv.evaluate_run(&run, 0).unwrap();
        assert!(outcome.totals.ce > 0, "relaxed DIMM2 at 60C must show CEs");
        let ce_of = |mcu: usize| -> u64 {
            outcome
                .per_domain
                .iter()
                .filter(|d| d.mcu == mcu)
                .map(|d| d.counts.visible())
                .sum()
        };
        // MCU0/MCU1 run at nominal parameters: no errors there.
        assert_eq!(ce_of(0), 0, "nominal MCU0 must stay clean");
        assert_eq!(ce_of(1), 0, "nominal MCU1 must stay clean");
        // DIMM3 is relaxed too but idle at ambient: only background errors,
        // far fewer than the heated, virus-filled DIMM2.
        assert!(
            ce_of(2) > 10 * ce_of(3).max(1),
            "DIMM2 must dominate: {} vs {}",
            ce_of(2),
            ce_of(3)
        );
    }

    #[test]
    fn high_temperature_triggers_ue_and_stops_the_run() {
        let mut sv = server();
        sv.relax_second_domain();
        sv.set_dimm_temperature(2, 70.0).unwrap();
        // Fill the whole DIMM so the UE-prone pairs are covered.
        let run = fill_run(&mut sv, 2, WORST);
        let outcome = sv.evaluate_run(&run, 0).unwrap();
        assert!(outcome.stopped_on_ue, "70C must raise a UE");
        assert!(outcome.totals.ue > 0);
        assert!(outcome.windows_completed <= sv.config().windows_per_run);
    }

    #[test]
    fn counters_accumulate_across_runs_and_reset() {
        let mut sv = server();
        sv.relax_second_domain();
        sv.set_dimm_temperature(2, 60.0).unwrap();
        let run = fill_run(&mut sv, 2, WORST);
        let a = sv.evaluate_run(&run, 0).unwrap();
        let b = sv.evaluate_run(&run, 1).unwrap();
        let total: u64 = sv.counters().iter().map(|d| d.counts.visible()).sum();
        assert_eq!(total, a.totals.visible() + b.totals.visible());
        sv.reset_counters();
        let zero: u64 = sv.counters().iter().map(|d| d.counts.visible()).sum();
        assert_eq!(zero, 0);
    }

    #[test]
    fn run_outcomes_vary_across_nonces() {
        let mut sv = server();
        sv.relax_second_domain();
        sv.set_dimm_temperature(2, 60.0).unwrap();
        let run = fill_run(&mut sv, 2, WORST);
        let counts: Vec<u64> = (0..8)
            .map(|n| sv.evaluate_run(&run, n).unwrap().totals.ce)
            .collect();
        let distinct: std::collections::HashSet<_> = counts.iter().collect();
        assert!(
            distinct.len() > 1,
            "VRT must differentiate runs: {counts:?}"
        );
    }

    #[test]
    fn worst_pattern_beats_all_zeros_at_server_level() {
        let mut sv = server();
        sv.relax_second_domain();
        sv.set_dimm_temperature(2, 60.0).unwrap();
        let run = fill_run(&mut sv, 2, WORST);
        let worst: u64 = (0..4)
            .map(|n| sv.evaluate_run(&run, n).unwrap().totals.ce)
            .sum();
        sv.reset_memory();
        let run = fill_run(&mut sv, 2, 0);
        let zeros: u64 = (0..4)
            .map(|n| sv.evaluate_run(&run, n).unwrap().totals.ce)
            .sum();
        assert!(
            worst as f64 >= 1.4 * zeros.max(1) as f64,
            "worst={worst} zeros={zeros}"
        );
    }

    #[test]
    fn prepared_run_matches_reference_path() {
        let mut sv = server();
        sv.relax_second_domain();
        sv.set_dimm_temperature(2, 62.0).unwrap();
        let run = fill_run(&mut sv, 2, WORST);
        let mut reference_sv = sv.clone();
        let prepared = sv.prepare_run(&run).unwrap();
        for nonce in 0..12 {
            let fast = sv.evaluate_prepared(&prepared, nonce).unwrap();
            let slow = reference_sv.evaluate_run_reference(&run, nonce);
            assert_eq!(fast, slow, "prepared path diverged at nonce {nonce}");
        }
    }

    #[test]
    fn batched_runs_match_sequential_oracle() {
        // 60C exercises the CE-only regime, 70C the stop-on-UE regime
        // (lanes dying at different windows inside one batch).
        for temp in [60.0, 70.0] {
            let mut sv = server();
            sv.relax_second_domain();
            sv.set_dimm_temperature(2, temp).unwrap();
            let run = fill_run(&mut sv, 2, WORST);
            let mut oracle_sv = sv.clone();
            let batched = sv.evaluate_runs(&run, 10, 3).unwrap();
            let sequential = oracle_sv.evaluate_runs_sequential(&run, 10, 3).unwrap();
            assert_eq!(batched, sequential, "batched path diverged at {temp}C");
            assert_eq!(
                sv.counters(),
                oracle_sv.counters(),
                "persistent EDAC tallies diverged at {temp}C"
            );
        }
    }

    #[test]
    fn batched_runs_chunk_beyond_one_lane_word() {
        // More runs than MAX_LANES, so the batch splits across lane words.
        let mut sv = server();
        sv.relax_second_domain();
        sv.set_dimm_temperature(2, 62.0).unwrap();
        let run = fill_run(&mut sv, 2, WORST);
        let mut oracle_sv = sv.clone();
        let runs = MAX_LANES as u32 + 3;
        let batched = sv.evaluate_runs(&run, runs, 11).unwrap();
        let sequential = oracle_sv.evaluate_runs_sequential(&run, runs, 11).unwrap();
        assert_eq!(batched.len(), runs as usize);
        assert_eq!(batched, sequential);
    }

    #[test]
    fn plan_cache_state_does_not_change_results() {
        let mut sv = server();
        sv.relax_second_domain();
        sv.set_dimm_temperature(2, 60.0).unwrap();
        let run = fill_run(&mut sv, 2, WORST);
        let mut cold = sv.clone();
        // Warm path: the second prepare_run hits caches the first built.
        let _ = sv.evaluate_runs(&run, 2, 0).unwrap();
        let warm = sv.evaluate_runs(&run, 2, 9).unwrap();
        // Cold path: same history, then caches dropped and a forced rebuild.
        let _ = cold.evaluate_runs(&run, 2, 0).unwrap();
        cold.clear_eval_caches();
        let prepared = cold.prepare_run_uncached(&run).unwrap();
        let uncached = cold.evaluate_prepared_runs(&prepared, 2, 9).unwrap();
        assert_eq!(
            warm, uncached,
            "cache hits must be bit-identical to rebuilds"
        );
        assert_eq!(sv.counters(), cold.counters());
    }

    #[test]
    fn stale_prepared_run_is_a_typed_error() {
        let mut sv = server();
        sv.relax_second_domain();
        sv.set_dimm_temperature(2, 60.0).unwrap();
        let run = fill_run(&mut sv, 2, WORST);
        let prepared = sv.prepare_run(&run).unwrap();
        // Any write to the target DIMM invalidates its plan.
        let _ = fill_run(&mut sv, 2, 0);
        match sv.evaluate_prepared_runs(&prepared, 2, 0) {
            Err(PlanError::Stale { built, current }) => assert!(current > built),
            other => panic!("expected PlanError::Stale, got {other:?}"),
        }
        match sv.evaluate_prepared(&prepared, 0) {
            Err(PlanError::Stale { .. }) => {}
            other => panic!("expected PlanError::Stale, got {other:?}"),
        }
    }

    #[test]
    fn cloned_server_is_independent_and_identical() {
        fn assert_send<T: Send>() {}
        assert_send::<XGene2Server>();
        let mut sv = server();
        sv.relax_second_domain();
        sv.set_dimm_temperature(2, 60.0).unwrap();
        let run = fill_run(&mut sv, 2, WORST);
        let mut replica = sv.clone();
        let a = sv.evaluate_run(&run, 5).unwrap();
        let b = replica.evaluate_run(&run, 5).unwrap();
        assert_eq!(a, b, "a replica must reproduce the original's outcomes");
        // The copies are independent: resetting one leaves the other's
        // accumulated counters untouched.
        sv.reset_counters();
        let replica_total: u64 = replica.counters().iter().map(|d| d.counts.visible()).sum();
        assert_eq!(replica_total, b.totals.visible());
    }

    #[test]
    fn measure_power_reflects_knobs() {
        let mut sv = server();
        let model = PowerModel::default();
        let before = sv.measure_power(&model, &[0.0; 4]);
        sv.relax_second_domain();
        let after = sv.measure_power(&model, &[0.0; 4]);
        assert!(after.dram_w < before.dram_w);
        assert!(after.system_w < before.system_w);
    }
}
