//! DRAM and system power model.
//!
//! Fig. 14's use case converts discovered TREFP/VDD margins into energy
//! savings: "17.7 % DRAM energy savings and 8.6 % total system energy
//! savings on average". The model below captures the three DRAM power
//! components the DDR3 literature decomposes (and the paper's §II
//! background motivates):
//!
//! * **refresh power** — proportional to the refresh rate (`1 / TREFP`) and
//!   to the stored charge (`VDD²`);
//! * **background power** — peripheral/standby power, `∝ VDD²`;
//! * **access power** — per-access energy at the observed DRAM access rate,
//!   `∝ VDD²`.
//!
//! System power adds a constant non-DRAM platform draw, sized so DRAM is a
//! large-but-not-dominant consumer, as on the real X-Gene 2 board.

use dstress_dram::env::{NOMINAL_TREFP_S, NOMINAL_VDD_V};
use serde::{Deserialize, Serialize};

/// Coefficients of the power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Background (standby/peripheral) power per DIMM at nominal VDD, watts.
    pub background_w: f64,
    /// Refresh power per DIMM at nominal VDD *and* nominal 64 ms TREFP,
    /// watts.
    pub refresh_w_at_nominal: f64,
    /// Energy per DRAM access (one cache-line transfer), joules.
    pub access_energy_j: f64,
    /// Non-DRAM platform power (SoC, fans, VRs), watts.
    pub platform_w: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            background_w: 2.8,
            refresh_w_at_nominal: 1.3,
            access_energy_j: 20e-9,
            platform_w: 22.0,
        }
    }
}

/// A power measurement for one server configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Power per DIMM, watts.
    pub per_dimm_w: Vec<f64>,
    /// Total DRAM power, watts.
    pub dram_w: f64,
    /// Total system power (DRAM + platform), watts.
    pub system_w: f64,
}

impl PowerModel {
    /// Power of one DIMM at the given operating point and DRAM access rate.
    ///
    /// # Panics
    ///
    /// Panics if `trefp_s` or `vdd_v` is not positive.
    pub fn dimm_power_w(&self, trefp_s: f64, vdd_v: f64, dram_accesses_per_s: f64) -> f64 {
        assert!(trefp_s > 0.0, "refresh period must be positive");
        assert!(vdd_v > 0.0, "supply voltage must be positive");
        let v2 = (vdd_v / NOMINAL_VDD_V).powi(2);
        let refresh = self.refresh_w_at_nominal * (NOMINAL_TREFP_S / trefp_s) * v2;
        let background = self.background_w * v2;
        let access = self.access_energy_j * dram_accesses_per_s.max(0.0) * v2;
        refresh + background + access
    }

    /// Full-server report given per-DIMM operating points.
    ///
    /// `points` yields `(trefp_s, vdd_v, dram_accesses_per_s)` per DIMM.
    pub fn report<I>(&self, points: I) -> PowerReport
    where
        I: IntoIterator<Item = (f64, f64, f64)>,
    {
        let per_dimm_w: Vec<f64> = points
            .into_iter()
            .map(|(t, v, a)| self.dimm_power_w(t, v, a))
            .collect();
        let dram_w = per_dimm_w.iter().sum();
        PowerReport {
            per_dimm_w,
            dram_w,
            system_w: dram_w + self.platform_w,
        }
    }

    /// Relative DRAM savings of configuration `b` against baseline `a`.
    pub fn dram_savings(a: &PowerReport, b: &PowerReport) -> f64 {
        if a.dram_w == 0.0 {
            0.0
        } else {
            1.0 - b.dram_w / a.dram_w
        }
    }

    /// Relative system savings of configuration `b` against baseline `a`.
    pub fn system_savings(a: &PowerReport, b: &PowerReport) -> f64 {
        if a.system_w == 0.0 {
            0.0
        } else {
            1.0 - b.system_w / a.system_w
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PowerModel {
        PowerModel::default()
    }

    #[test]
    fn refresh_power_scales_inversely_with_trefp() {
        let m = model();
        let nominal = m.dimm_power_w(0.064, 1.5, 0.0);
        let relaxed = m.dimm_power_w(2.283, 1.5, 0.0);
        let saved = nominal - relaxed;
        // Nearly the whole refresh component disappears at 35x TREFP.
        assert!((saved - m.refresh_w_at_nominal * (1.0 - 0.064 / 2.283)).abs() < 1e-9);
    }

    #[test]
    fn voltage_scales_quadratically() {
        let m = model();
        let hi = m.dimm_power_w(0.064, 1.5, 0.0);
        let lo = m.dimm_power_w(0.064, 1.428, 0.0);
        assert!((lo / hi - (1.428f64 / 1.5).powi(2)).abs() < 1e-9);
    }

    #[test]
    fn access_power_adds_linearly() {
        let m = model();
        let idle = m.dimm_power_w(0.064, 1.5, 0.0);
        let busy = m.dimm_power_w(0.064, 1.5, 10.0e6);
        assert!((busy - idle - m.access_energy_j * 10.0e6).abs() < 1e-9);
    }

    #[test]
    fn relaxed_margins_save_double_digit_dram_power() {
        // The shape target: relaxing TREFP to a sub-second margin under
        // lowered VDD saves on the order of the paper's 17.7 %.
        let m = model();
        let nominal = m.report((0..4).map(|_| (0.064, 1.5, 1.0e6)));
        let relaxed = m.report((0..4).map(|_| (0.9, 1.428, 1.0e6)));
        let dram = PowerModel::dram_savings(&nominal, &relaxed);
        let system = PowerModel::system_savings(&nominal, &relaxed);
        assert!((0.10..0.40).contains(&dram), "DRAM savings {dram}");
        assert!(system > 0.02 && system < dram, "system savings {system}");
    }

    #[test]
    fn report_sums_dimms_and_platform() {
        let m = model();
        let r = m.report(vec![(0.064, 1.5, 0.0); 4]);
        assert_eq!(r.per_dimm_w.len(), 4);
        assert!((r.dram_w - 4.0 * r.per_dimm_w[0]).abs() < 1e-9);
        assert!((r.system_w - r.dram_w - m.platform_w).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "refresh period must be positive")]
    fn zero_trefp_panics() {
        model().dimm_power_w(0.0, 1.5, 0.0);
    }
}
