//! The temperature-controlled testbed (paper §IV, Figs. 6–7).
//!
//! The paper fits each DIMM with resistive heating elements driven by
//! solid-state relays under four closed-loop PID controllers on a Raspberry
//! Pi. This module simulates that rig: a first-order thermal plant per DIMM
//! and a discrete PID controller that drives the heater power to hold a
//! setpoint. Experiments call [`ThermalTestbed::settle`] before each
//! measurement, exactly as the real campaign waited for thermal
//! stabilization.

use serde::{Deserialize, Serialize};

/// First-order thermal plant: a DIMM with a heater attached.
///
/// `dT/dt = (heater_gain · P + ambient − T) / tau`
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalPlant {
    /// Current temperature (°C).
    pub temp_c: f64,
    /// Ambient temperature (°C) the DIMM relaxes to with the heater off.
    pub ambient_c: f64,
    /// Thermal time constant (seconds).
    pub tau_s: f64,
    /// Steady-state °C above ambient per watt of heater power.
    pub gain_c_per_w: f64,
}

impl ThermalPlant {
    /// A plant at ambient temperature.
    pub fn new(ambient_c: f64) -> Self {
        ThermalPlant {
            temp_c: ambient_c,
            ambient_c,
            tau_s: 30.0,
            gain_c_per_w: 2.5,
        }
    }

    /// Advances the plant by `dt_s` seconds with `power_w` heater power.
    pub fn step(&mut self, power_w: f64, dt_s: f64) {
        let target = self.ambient_c + self.gain_c_per_w * power_w.max(0.0);
        self.temp_c += (target - self.temp_c) * (dt_s / self.tau_s).min(1.0);
    }
}

/// A discrete PID controller with clamped output and anti-windup.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PidController {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Derivative gain.
    pub kd: f64,
    /// Output clamp (watts).
    pub max_output_w: f64,
    integral: f64,
    last_error: Option<f64>,
}

impl PidController {
    /// Creates a controller with the given gains and output clamp.
    pub fn new(kp: f64, ki: f64, kd: f64, max_output_w: f64) -> Self {
        PidController {
            kp,
            ki,
            kd,
            max_output_w,
            integral: 0.0,
            last_error: None,
        }
    }

    /// Gains tuned for the default [`ThermalPlant`].
    pub fn tuned() -> Self {
        PidController::new(2.0, 0.08, 2.0, 40.0)
    }

    /// One control step; returns the heater power to apply.
    pub fn step(&mut self, setpoint_c: f64, measured_c: f64, dt_s: f64) -> f64 {
        let error = setpoint_c - measured_c;
        let derivative = match self.last_error {
            Some(prev) => (error - prev) / dt_s,
            None => 0.0,
        };
        self.last_error = Some(error);
        let unclamped = self.kp * error + self.ki * self.integral + self.kd * derivative;
        // Anti-windup: only integrate when not saturated in that direction.
        let saturated_high = unclamped >= self.max_output_w && error > 0.0;
        let saturated_low = unclamped <= 0.0 && error < 0.0;
        if !saturated_high && !saturated_low {
            self.integral += error * dt_s;
        }
        unclamped.clamp(0.0, self.max_output_w)
    }

    /// Resets controller memory (integral and derivative history).
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.last_error = None;
    }
}

/// Errors from the thermal testbed.
///
/// The rig used to panic on a bad channel index; campaign setup code now
/// gets a typed error it can surface instead of aborting the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThermalError {
    /// The requested channel does not exist on this rig.
    ChannelOutOfRange {
        /// The channel that was asked for.
        channel: usize,
        /// How many channels the rig actually has.
        channels: usize,
    },
}

impl std::fmt::Display for ThermalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThermalError::ChannelOutOfRange { channel, channels } => write!(
                f,
                "thermal channel {channel} out of range: the rig has {channels} channels"
            ),
        }
    }
}

impl std::error::Error for ThermalError {}

/// The settling result for one channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SettleReport {
    /// Final temperature reached (°C).
    pub final_temp_c: f64,
    /// Simulated seconds until the temperature stayed within the band.
    pub settle_time_s: f64,
    /// Whether the controller settled within the allowed time.
    pub settled: bool,
    /// Sampled temperature trajectory (one sample per control period).
    pub trajectory: Vec<f64>,
}

/// The four-channel thermal rig: one plant + PID per DIMM.
#[derive(Debug, Clone)]
pub struct ThermalTestbed {
    plants: Vec<ThermalPlant>,
    controllers: Vec<PidController>,
}

impl ThermalTestbed {
    /// Builds a rig with `channels` DIMM channels at ambient temperature.
    pub fn new(channels: usize, ambient_c: f64) -> Self {
        ThermalTestbed {
            plants: vec![ThermalPlant::new(ambient_c); channels],
            controllers: vec![PidController::tuned(); channels],
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.plants.len()
    }

    /// Current temperature of a channel.
    ///
    /// # Errors
    ///
    /// [`ThermalError::ChannelOutOfRange`] if `channel` is out of range.
    pub fn temperature(&self, channel: usize) -> Result<f64, ThermalError> {
        self.plants
            .get(channel)
            .map(|plant| plant.temp_c)
            .ok_or(ThermalError::ChannelOutOfRange {
                channel,
                channels: self.plants.len(),
            })
    }

    /// Drives one channel to a setpoint, simulating the PID loop until the
    /// temperature stays within ±0.25 °C for 30 consecutive seconds (or a
    /// 1-hour simulated timeout elapses). A setpoint the heater cannot
    /// reach is not an error here: it comes back as a report with
    /// `settled == false`, and the caller decides whether that is fatal.
    ///
    /// # Errors
    ///
    /// [`ThermalError::ChannelOutOfRange`] if `channel` is out of range.
    pub fn settle(
        &mut self,
        channel: usize,
        setpoint_c: f64,
    ) -> Result<SettleReport, ThermalError> {
        const DT: f64 = 1.0;
        const BAND: f64 = 0.25;
        const HOLD_S: f64 = 30.0;
        const TIMEOUT_S: f64 = 3600.0;
        let channels = self.plants.len();
        let plant = self
            .plants
            .get_mut(channel)
            .ok_or(ThermalError::ChannelOutOfRange { channel, channels })?;
        let pid = &mut self.controllers[channel];
        pid.reset();
        let mut trajectory = Vec::new();
        let mut in_band_s = 0.0;
        let mut t = 0.0;
        while t < TIMEOUT_S {
            let power = pid.step(setpoint_c, plant.temp_c, DT);
            plant.step(power, DT);
            trajectory.push(plant.temp_c);
            t += DT;
            if (plant.temp_c - setpoint_c).abs() <= BAND {
                in_band_s += DT;
                if in_band_s >= HOLD_S {
                    return Ok(SettleReport {
                        final_temp_c: plant.temp_c,
                        settle_time_s: t,
                        settled: true,
                        trajectory,
                    });
                }
            } else {
                in_band_s = 0.0;
            }
        }
        Ok(SettleReport {
            final_temp_c: plant.temp_c,
            settle_time_s: t,
            settled: false,
            trajectory,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plant_relaxes_to_ambient() {
        let mut p = ThermalPlant::new(45.0);
        p.temp_c = 70.0;
        for _ in 0..1000 {
            p.step(0.0, 1.0);
        }
        assert!((p.temp_c - 45.0).abs() < 0.1);
    }

    #[test]
    fn plant_heats_toward_gain_times_power() {
        let mut p = ThermalPlant::new(45.0);
        for _ in 0..2000 {
            p.step(10.0, 1.0);
        }
        assert!((p.temp_c - (45.0 + 25.0)).abs() < 0.1);
    }

    #[test]
    fn pid_settles_on_setpoints_in_paper_range() {
        for setpoint in [50.0, 55.0, 60.0, 62.0, 65.0, 70.0] {
            let mut rig = ThermalTestbed::new(4, 45.0);
            let report = rig.settle(0, setpoint).unwrap();
            assert!(
                report.settled,
                "did not settle at {setpoint}: {}",
                report.final_temp_c
            );
            assert!(
                (report.final_temp_c - setpoint).abs() <= 0.3,
                "settled at {} instead of {setpoint}",
                report.final_temp_c
            );
        }
    }

    #[test]
    fn channels_are_independent() {
        let mut rig = ThermalTestbed::new(4, 45.0);
        rig.settle(1, 65.0).unwrap();
        assert!((rig.temperature(1).unwrap() - 65.0).abs() < 0.5);
        assert!(
            (rig.temperature(0).unwrap() - 45.0).abs() < 0.5,
            "channel 0 must stay ambient"
        );
    }

    #[test]
    fn settle_records_a_trajectory() {
        let mut rig = ThermalTestbed::new(1, 45.0);
        let report = rig.settle(0, 60.0).unwrap();
        assert!(report.trajectory.len() as f64 >= report.settle_time_s);
        assert!(report.trajectory.first().unwrap() < report.trajectory.last().unwrap());
    }

    #[test]
    fn out_of_range_channel_is_a_typed_error() {
        let mut rig = ThermalTestbed::new(4, 45.0);
        let expected = ThermalError::ChannelOutOfRange {
            channel: 4,
            channels: 4,
        };
        assert_eq!(rig.temperature(4), Err(expected));
        assert_eq!(rig.settle(4, 60.0), Err(expected));
        assert!(expected.to_string().contains("channel 4 out of range"));
    }

    #[test]
    fn unreachable_setpoint_reports_unsettled_without_erroring() {
        // Max heater output is 40 W at 2.5 °C/W: ~145 °C above ambient is
        // the physical ceiling, so 250 °C can never be reached. That is a
        // report, not an error — campaign setup decides what to do with it.
        let mut rig = ThermalTestbed::new(1, 45.0);
        let report = rig.settle(0, 250.0).unwrap();
        assert!(!report.settled);
        assert!(report.final_temp_c < 250.0);
        assert!(report.settle_time_s >= 3600.0, "ran to the timeout");
    }

    #[test]
    fn pid_output_is_clamped() {
        let mut pid = PidController::tuned();
        let power = pid.step(500.0, 20.0, 1.0);
        assert!(power <= pid.max_output_w);
        let cool = pid.step(0.0, 100.0, 1.0);
        assert_eq!(cool, 0.0, "heater cannot cool");
    }

    #[test]
    fn pid_reset_clears_memory() {
        let mut pid = PidController::tuned();
        pid.step(60.0, 45.0, 1.0);
        pid.step(60.0, 46.0, 1.0);
        pid.reset();
        let mut fresh = PidController::tuned();
        assert_eq!(pid.step(60.0, 45.0, 1.0), fresh.step(60.0, 45.0, 1.0));
    }
}
