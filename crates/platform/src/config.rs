//! Server configuration.

use dstress_dram::DimmConfig;
use serde::{Deserialize, Serialize};

/// Parameters of the access-intensity model: how a recorded virus trace is
/// replayed against DRAM for the duration of a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessModelConfig {
    /// Total cache capacity in bytes (a combined L1+L2 stand-in; the
    /// X-Gene 2 has 32 KB L1D per core and 256 KB shared L2 per pair).
    pub cache_bytes: usize,
    /// Cache associativity.
    pub cache_ways: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Memory operations the virus core sustains per second (explicit
    /// loads/stores; the paper's viruses use no `clflush`, so only misses
    /// reach DRAM).
    pub accesses_per_s: f64,
    /// Maximum recorded trace length before the session refuses further
    /// accesses (guards runaway templates).
    pub max_trace_len: usize,
    /// Whether the cache hierarchy filters accesses. `false` models a
    /// `clflush`-style attacker (paper §VI Security: rowhammer exploits
    /// flush lines to reach DRAM on every access); the paper's own viruses
    /// run cache-filtered (§V-A.4).
    pub model_cache: bool,
}

impl Default for AccessModelConfig {
    fn default() -> Self {
        AccessModelConfig {
            cache_bytes: 256 * 1024,
            cache_ways: 8,
            line_bytes: 64,
            accesses_per_s: 20.0e6,
            max_trace_len: 8 << 20,
            model_cache: true,
        }
    }
}

/// Configuration of the whole experimental server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// The DIMM model shared by all four modules (per-module seeds and
    /// density multipliers make each physical DIMM distinct).
    pub dimm: DimmConfig,
    /// Device seed per DIMM (MCU0..MCU3).
    pub dimm_seeds: [u64; 4],
    /// Weak-cell density multiplier per DIMM — the paper's DIMM-to-DIMM
    /// variation (§II, Fig. 1b) comes from manufacturing differences.
    pub density_multipliers: [f64; 4],
    /// Access-intensity model.
    pub access: AccessModelConfig,
    /// Whether hardware interleaving is enabled. The paper patches firmware
    /// to *disable* it so data can be pinned to a specific DIMM (§IV).
    pub interleaving: bool,
    /// Refresh windows evaluated per virus run (the simulated stand-in for
    /// the paper's 2-hour exposures).
    pub windows_per_run: u32,
    /// Ambient temperature in °C (DIMMs idle at this temperature until the
    /// thermal testbed raises them).
    pub ambient_c: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            dimm: DimmConfig::default(),
            dimm_seeds: [0xD1_00, 0xD1_01, 0xD1_02, 0xD1_03],
            density_multipliers: [0.6, 0.3, 1.0, 0.1],
            access: AccessModelConfig::default(),
            interleaving: false,
            windows_per_run: 24,
            ambient_c: 45.0,
        }
    }
}

impl ServerConfig {
    /// A reduced configuration for unit tests and doc examples: fewer weak
    /// cells and fewer windows, same structure.
    pub fn small() -> Self {
        let mut config = ServerConfig::default();
        config.dimm.weak.singles_per_rank = 600;
        config.dimm.weak.pairs_per_rank = 20;
        config.windows_per_run = 6;
        config
    }

    /// The DIMM configuration for a given MCU slot, with the per-module
    /// density multiplier applied.
    pub fn dimm_config_for(&self, mcu: usize) -> DimmConfig {
        let mut dimm = self.dimm;
        let mult = self.density_multipliers[mcu];
        dimm.weak.singles_per_rank =
            ((dimm.weak.singles_per_rank as f64 * mult).round() as usize).max(1);
        dimm.weak.pairs_per_rank =
            ((dimm.weak.pairs_per_rank as f64 * mult).round() as usize).max(1);
        dimm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_plausible() {
        let c = ServerConfig::default();
        assert!(!c.interleaving, "the paper disables interleaving");
        assert_eq!(c.dimm_seeds.len(), 4);
        assert!(c.windows_per_run > 0);
    }

    #[test]
    fn density_multiplier_scales_population() {
        let c = ServerConfig::default();
        let d2 = c.dimm_config_for(2);
        let d3 = c.dimm_config_for(3);
        assert!(d2.weak.singles_per_rank > d3.weak.singles_per_rank);
        assert!(d3.weak.singles_per_rank >= 1);
    }

    #[test]
    fn small_config_shrinks_population() {
        let s = ServerConfig::small();
        let d = ServerConfig::default();
        assert!(s.dimm.weak.singles_per_rank < d.dimm.weak.singles_per_rank);
        assert!(s.windows_per_run < d.windows_per_run);
    }
}
