//! An X-Gene-2-like experimental server (paper §IV), fully simulated.
//!
//! The paper's testbed is a commodity AppliedMicro X-Gene 2 ARMv8 server:
//! four memory controller units (MCUs) in two memory controller bridges
//! (MCBs), one DDR3 DIMM per MCU, per-MCU refresh period (TREFP), per-MCB
//! supply voltage (VDD), firmware-disabled interleaving, EDAC error counters,
//! and a custom heater + PID thermal rig holding each DIMM at a setpoint.
//! This crate reproduces that platform on top of `dstress-dram`:
//!
//! * [`server`] — the [`XGene2Server`]: MCU/MCB structure, parameter knobs,
//!   per-domain ECC counters, virus-run evaluation;
//! * [`session`] — virtual memory sessions and the [`MemoryBus`] trait the
//!   virus interpreter drives; records the access trace of a virus;
//! * [`cache`] — a set-associative LRU cache model (the paper's viruses use
//!   no `clflush`, so DRAM sees only cache misses, §V-A.4);
//! * [`replay`] — converts one recorded trace pass into per-window row
//!   activation counts ("trace once, replay analytically" — the substitution
//!   that makes a 7-month campaign simulable; see DESIGN.md);
//! * [`thermal`] — heating element + PID controller per DIMM;
//! * [`power`] — the DRAM/system power model behind the paper's 17.7 % /
//!   8.6 % savings numbers (Fig. 14).
//!
//! # Examples
//!
//! ```
//! use dstress_platform::{ServerConfig, XGene2Server};
//! use dstress_platform::session::MemoryBus;
//!
//! let mut server = XGene2Server::new(ServerConfig::small());
//! server.set_dimm_temperature(2, 60.0).expect("MCU 2 exists");
//! let mut session = server.session(2);
//! let buf = session.alloc(4096)?;
//! for i in 0..512 {
//!     session.write_u64(buf + i * 8, 0x3333_3333_3333_3333)?;
//! }
//! let run = session.finish();
//! let outcome = server.evaluate_run(&run, 7).expect("run bound to fresh contents");
//! println!("CEs observed: {}", outcome.totals.ce);
//! # Ok::<(), dstress_platform::session::SessionError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod power;
pub mod replay;
pub mod server;
pub mod session;
pub mod thermal;

pub use config::{AccessModelConfig, ServerConfig};
pub use power::{PowerModel, PowerReport};
pub use replay::ReplayProfile;
pub use server::{DomainCounts, PreparedRun, RowErrors, RunOutcome, XGene2Server, MCUS, RANKS};
pub use session::{MemoryBus, RecordedRun, Session, VirtAddr};
pub use thermal::{PidController, SettleReport, ThermalError, ThermalPlant, ThermalTestbed};
