//! Analytic trace replay: from one recorded pass of a virus body to
//! per-refresh-window row-activation counts.
//!
//! The paper runs each virus for two hours and lets the hardware accumulate
//! errors; simulating every dynamic instruction of such a run is
//! intractable. Instead the virus body is *executed once* (recording its
//! access trace) and then treated as a periodic workload: the recorded pass
//! is filtered through the cache model and the per-bank row-buffer (only
//! misses that also miss the open row activate a row), and the resulting
//! activation histogram is scaled to the number of memory operations the
//! core sustains per refresh window. This preserves the quantity that the
//! disturbance physics consumes — activations per aggressor row per window —
//! while decoupling simulation cost from run length.

use crate::cache::Cache;
use crate::config::AccessModelConfig;
use crate::session::RecordedRun;
use dstress_dram::{ActivationCounts, AddressMap};

/// Open-row state per (mcu, rank, bank), stored flat: each MCU's banks get
/// a contiguous block of `ranks × banks` entries sized from its own
/// geometry. An entry holds `row + 1` (0 = no row open), so the tracker
/// needs one indexed load per DRAM access instead of a hash-map probe, and
/// its iteration order is deterministic by construction.
struct OpenRows {
    /// First entry of each MCU's block.
    offsets: Vec<usize>,
    /// Per-bank open row + 1; 0 when the bank has no row open.
    entries: Vec<u64>,
    /// Banks per rank, per MCU (row index → entry stride).
    banks: Vec<usize>,
}

impl OpenRows {
    fn new(maps: &[AddressMap]) -> Self {
        let mut offsets = Vec::with_capacity(maps.len());
        let mut banks = Vec::with_capacity(maps.len());
        let mut total = 0usize;
        for map in maps {
            let geo = map.geometry();
            offsets.push(total);
            banks.push(geo.banks as usize);
            total += geo.ranks as usize * geo.banks as usize;
        }
        OpenRows {
            offsets,
            entries: vec![0; total],
            banks,
        }
    }

    /// Opens `row` on (mcu, rank, bank); returns true when that required a
    /// new activation (the row was not already open).
    #[inline]
    fn activate(&mut self, mcu: usize, rank: u8, bank: u8, row: u32) -> bool {
        let idx = self.offsets[mcu] + rank as usize * self.banks[mcu] + bank as usize;
        let tagged = row as u64 + 1;
        if self.entries[idx] == tagged {
            false
        } else {
            self.entries[idx] = tagged;
            true
        }
    }
}

/// Per-MCU activation counts for one refresh window, derived from a
/// recorded virus trace.
#[derive(Debug, Clone, Default)]
pub struct ReplayProfile {
    /// Activation counts per refresh window, indexed by MCU.
    pub acts_per_window: Vec<ActivationCounts>,
    /// Cache hit rate observed over the recorded pass.
    pub cache_hit_rate: f64,
    /// DRAM-reaching accesses per recorded pass, indexed by MCU.
    pub dram_accesses: Vec<u64>,
}

impl ReplayProfile {
    /// Builds the profile for a recorded run.
    ///
    /// `maps` gives the address-mapping function of each MCU's DIMM and
    /// `trefp_s` each MCU's refresh period (activations per window scale
    /// with the window length).
    pub fn build(
        run: &RecordedRun,
        access: &AccessModelConfig,
        maps: &[AddressMap],
        trefp_s: &[f64],
    ) -> ReplayProfile {
        let mcus = maps.len();
        let mut acts: Vec<ActivationCounts> = vec![ActivationCounts::new(); mcus];
        let mut dram_accesses = vec![0u64; mcus];
        if run.is_empty() {
            return ReplayProfile {
                acts_per_window: acts,
                cache_hit_rate: 0.0,
                dram_accesses,
            };
        }
        let mut cache = Cache::new(access.cache_bytes, access.cache_ways, access.line_bytes);
        let mut open_rows = OpenRows::new(maps);
        // Stores are setup (the fill phase runs once); the recorded *load*
        // stream is the virus's periodic steady state. The cache and
        // row-buffer models still see every operation in program order so
        // the loads meet warm state, but only loads count toward the
        // periodic activation profile.
        //
        // The trace arrives as contiguous spans, consumed one cache-line
        // segment at a time. Within a segment, words after the first are
        // guaranteed hits (the first access made the line resident), so
        // they go through the bulk [`Cache::access_repeat`] path; and all
        // words share one DRAM row (rows are line-aligned), so at most one
        // activation decision is needed per segment. The resulting profile
        // is bit-identical to the per-word walk this replaces.
        let line_bytes = access.line_bytes as u64;
        let mut read_ops = 0u64;
        for span in run.spans() {
            let mcu = span.mcu as usize;
            let mut off = 0u64;
            let row_bytes = maps[mcu].geometry().row_bytes as u64;
            while off < span.words {
                let word_addr = span.local_addr + off * 8;
                // Words of this span inside word_addr's cache line, capped
                // at the DRAM row boundary so the one-activation-per-
                // segment argument below holds even when a line is
                // configured larger than a row.
                let line_end = (word_addr / line_bytes + 1) * line_bytes;
                let row_end = (word_addr / row_bytes + 1) * row_bytes;
                let k = ((line_end.min(row_end) - word_addr).div_ceil(8)).min(span.words - off);
                off += k;
                if !span.is_write {
                    read_ops += k;
                }
                // Tag the address with the MCU so lines from different
                // DIMMs never alias in the shared cache model.
                let tagged = word_addr | ((span.mcu as u64) << 56);
                let first_hit = cache.access(tagged);
                cache.access_repeat(tagged, k - 1);
                if span.is_write || (first_hit && access.model_cache) {
                    continue;
                }
                // DRAM-reaching loads: just the first word of the segment
                // when the cache filters (the rest hit the fresh line),
                // every word when it does not.
                dram_accesses[mcu] += if access.model_cache { 1 } else { k };
                if let Ok(loc) = maps[mcu].map(word_addr & !7) {
                    if open_rows.activate(mcu, loc.rank, loc.bank, loc.row) {
                        acts[mcu].add(loc.row_key(), 1);
                    }
                }
            }
        }
        // Scale one recorded pass to a full refresh window: the core
        // sustains `accesses_per_s` loads of the steady-state loop, so one
        // window holds `accesses_per_s * trefp / read_ops` passes.
        if read_ops == 0 {
            // Pure-fill virus: no steady-state loop, memory then idles.
            return ReplayProfile {
                acts_per_window: acts,
                cache_hit_rate: cache.hit_rate(),
                dram_accesses,
            };
        }
        for (mcu, a) in acts.iter_mut().enumerate() {
            let passes_per_window = access.accesses_per_s * trefp_s[mcu] / read_ops as f64;
            a.scale_rounded(passes_per_window);
        }
        ReplayProfile {
            acts_per_window: acts,
            cache_hit_rate: cache.hit_rate(),
            dram_accesses,
        }
    }

    /// Total DRAM-reaching accesses per second implied by the profile
    /// (for the power model's access-energy term). `steady_ops` is the
    /// number of steady-state (load) operations per pass.
    pub fn dram_access_rate(&self, access: &AccessModelConfig, steady_ops: usize) -> f64 {
        if steady_ops == 0 {
            return 0.0;
        }
        let total: u64 = self.dram_accesses.iter().sum();
        let passes_per_s = access.accesses_per_s / steady_ops as f64;
        total as f64 * passes_per_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::TraceOp;
    use dstress_dram::DimmGeometry;

    fn maps() -> Vec<AddressMap> {
        (0..4)
            .map(|_| AddressMap::new(DimmGeometry::default()))
            .collect()
    }

    fn access() -> AccessModelConfig {
        AccessModelConfig::default()
    }

    fn run_of(ops: Vec<TraceOp>) -> RecordedRun {
        RecordedRun::from_trace(ops, 2)
    }

    /// A trace that streams `rows` whole rows on MCU 2 (touching each word).
    fn streaming_rows(rows: u64) -> RecordedRun {
        let mut ops = Vec::new();
        for row_chunk in 0..rows {
            for word in 0..1024u64 {
                ops.push(TraceOp {
                    mcu: 2,
                    local_addr: row_chunk * 8192 + word * 8,
                    is_write: false,
                });
            }
        }
        run_of(ops)
    }

    /// The original per-word replay walk, kept as the oracle for the
    /// span-consuming production path.
    fn build_word_at_a_time(
        run: &RecordedRun,
        access: &AccessModelConfig,
        maps: &[AddressMap],
        trefp_s: &[f64],
    ) -> ReplayProfile {
        let mcus = maps.len();
        let mut acts: Vec<dstress_dram::ActivationCounts> =
            vec![dstress_dram::ActivationCounts::new(); mcus];
        let mut dram_accesses = vec![0u64; mcus];
        if run.is_empty() {
            return ReplayProfile {
                acts_per_window: acts,
                cache_hit_rate: 0.0,
                dram_accesses,
            };
        }
        let mut cache = Cache::new(access.cache_bytes, access.cache_ways, access.line_bytes);
        let mut open_rows = OpenRows::new(maps);
        let mut read_ops = 0u64;
        for op in run.iter() {
            let mcu = op.mcu as usize;
            if !op.is_write {
                read_ops += 1;
            }
            let tagged = op.local_addr | ((op.mcu as u64) << 56);
            let hit = cache.access(tagged) && access.model_cache;
            if hit || op.is_write {
                continue;
            }
            dram_accesses[mcu] += 1;
            let word_addr = op.local_addr & !7;
            if let Ok(loc) = maps[mcu].map(word_addr) {
                if open_rows.activate(mcu, loc.rank, loc.bank, loc.row) {
                    acts[mcu].add(loc.row_key(), 1);
                }
            }
        }
        if read_ops == 0 {
            return ReplayProfile {
                acts_per_window: acts,
                cache_hit_rate: cache.hit_rate(),
                dram_accesses,
            };
        }
        for (mcu, a) in acts.iter_mut().enumerate() {
            let passes_per_window = access.accesses_per_s * trefp_s[mcu] / read_ops as f64;
            a.scale_rounded(passes_per_window);
        }
        ReplayProfile {
            acts_per_window: acts,
            cache_hit_rate: cache.hit_rate(),
            dram_accesses,
        }
    }

    fn assert_profiles_match(run: &RecordedRun, access: &AccessModelConfig) {
        let spanned = ReplayProfile::build(run, access, &maps(), &[2.283; 4]);
        let word = build_word_at_a_time(run, access, &maps(), &[2.283; 4]);
        assert_eq!(spanned.dram_accesses, word.dram_accesses);
        assert_eq!(spanned.cache_hit_rate, word.cache_hit_rate);
        for (a, b) in spanned.acts_per_window.iter().zip(&word.acts_per_window) {
            assert_eq!(a.total(), b.total());
            assert_eq!(a.distinct_rows(), b.distinct_rows());
        }
    }

    #[test]
    fn span_replay_matches_word_at_a_time_oracle() {
        // Shapes that stress every segment case: long contiguous streams
        // (many-word spans crossing lines and rows), a mixed write/read
        // pass, mid-line starts, singleton ops, and revisits that flip
        // segment-leading accesses between hit and miss.
        let mut mixed = Vec::new();
        for i in 0..3000u64 {
            mixed.push(TraceOp {
                mcu: 2,
                local_addr: 16 + i * 8,
                is_write: true,
            });
        }
        for _ in 0..3 {
            for i in 0..3000u64 {
                mixed.push(TraceOp {
                    mcu: 2,
                    local_addr: 16 + i * 8,
                    is_write: false,
                });
            }
        }
        mixed.push(TraceOp {
            mcu: 1,
            local_addr: 24,
            is_write: false,
        });
        mixed.push(TraceOp {
            mcu: 2,
            local_addr: 40,
            is_write: false,
        });
        let runs = [run_of(mixed), streaming_rows(64), streaming_rows(1)];
        for run in &runs {
            for model_cache in [true, false] {
                let mut a = access();
                a.model_cache = model_cache;
                assert_profiles_match(run, &a);
            }
        }
    }

    #[test]
    fn empty_run_yields_empty_profile() {
        let run = RecordedRun::idle(2);
        let p = ReplayProfile::build(&run, &access(), &maps(), &[2.283; 4]);
        assert!(p.acts_per_window.iter().all(|a| a.total() == 0));
        assert_eq!(p.dram_accesses, vec![0; 4]);
    }

    #[test]
    fn repeated_small_footprint_is_cache_absorbed() {
        // 8 lines touched 1000 times: everything after warmup hits cache.
        let mut ops = Vec::new();
        for _ in 0..1000 {
            for line in 0..8u64 {
                ops.push(TraceOp {
                    mcu: 2,
                    local_addr: line * 64,
                    is_write: false,
                });
            }
        }
        let p = ReplayProfile::build(&run_of(ops), &access(), &maps(), &[2.283; 4]);
        assert!(p.cache_hit_rate > 0.99);
        assert_eq!(p.dram_accesses[2], 8, "only the cold misses reach DRAM");
    }

    #[test]
    fn streaming_many_rows_thrashes_and_activates() {
        // 64 rows x 8 KB = 512 KB working set > 256 KB cache.
        let p = ReplayProfile::build(&streaming_rows(64), &access(), &maps(), &[2.283; 4]);
        assert!(p.cache_hit_rate < 0.95);
        assert!(
            p.acts_per_window[2].distinct_rows() > 32,
            "many rows must activate"
        );
        assert_eq!(p.acts_per_window[0].total(), 0, "other MCUs stay quiet");
    }

    #[test]
    fn sequential_words_in_a_row_activate_once_per_pass() {
        // A single row streamed once: 128 line misses but one activation.
        let p = ReplayProfile::build(&streaming_rows(1), &access(), &maps(), &[1.0; 4]);
        // Scale: one pass = 1024 ops; passes/window = 20e6 * 1.0 / 1024.
        let expected_scale = (20.0e6_f64 / 1024.0).round() as u64;
        assert_eq!(p.acts_per_window[2].total(), expected_scale);
        assert_eq!(p.acts_per_window[2].distinct_rows(), 1);
    }

    #[test]
    fn longer_trefp_means_more_activations_per_window() {
        let short = ReplayProfile::build(&streaming_rows(64), &access(), &maps(), &[0.064; 4]);
        let long = ReplayProfile::build(&streaming_rows(64), &access(), &maps(), &[2.283; 4]);
        assert!(long.acts_per_window[2].total() > 10 * short.acts_per_window[2].total());
    }

    #[test]
    fn dram_access_rate_scales_with_miss_fraction() {
        let run = streaming_rows(64);
        let trace_len = run.len();
        let p = ReplayProfile::build(&run, &access(), &maps(), &[2.283; 4]);
        let rate = p.dram_access_rate(&access(), trace_len);
        // All misses: rate approaches the issue rate divided by words/line.
        assert!(rate > 0.0 && rate <= access().accesses_per_s);
    }
}
