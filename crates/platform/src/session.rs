//! Virtual memory sessions: what a running virus sees.
//!
//! A [`Session`] is the view a virus process has of memory on the server:
//! `malloc`-style allocation, 64-bit loads and stores. Every access is
//! recorded into a trace; stores are applied to the backing DIMM
//! immediately. When the virus body finishes, [`Session::finish`] yields a
//! [`RecordedRun`] that the server replays analytically for the duration of
//! the experiment (see [`crate::replay`]).
//!
//! The paper pins application data to a chosen MCU by disabling hardware
//! interleaving in firmware (§IV "Memory Configuration"); a session is
//! created against a target MCU accordingly. With interleaving enabled,
//! consecutive cache lines stripe across all four MCUs instead.

use serde::{Deserialize, Serialize};

/// A virtual address inside a session.
pub type VirtAddr = u64;

/// The abstract memory interface a virus interpreter drives.
///
/// Implemented by [`Session`]; the `dstress-vpl` interpreter is written
/// against this trait so it can also run against mocks in tests.
pub trait MemoryBus {
    /// Allocates `bytes` of zero-initialized memory, returning its virtual
    /// base address.
    ///
    /// # Errors
    ///
    /// Fails when the backing DIMM is exhausted.
    fn alloc(&mut self, bytes: u64) -> Result<VirtAddr, SessionError>;

    /// Loads a 64-bit word.
    ///
    /// # Errors
    ///
    /// Fails on unmapped or unaligned addresses.
    fn read_u64(&mut self, addr: VirtAddr) -> Result<u64, SessionError>;

    /// Stores a 64-bit word.
    ///
    /// # Errors
    ///
    /// Fails on unmapped or unaligned addresses.
    fn write_u64(&mut self, addr: VirtAddr, value: u64) -> Result<(), SessionError>;
}

/// Error raised by session memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionError {
    /// The target DIMM has no room for the requested allocation.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes remaining on the target DIMM.
        available: u64,
    },
    /// Address not 8-byte aligned.
    Unaligned(VirtAddr),
    /// Address not inside any allocation.
    Unmapped(VirtAddr),
    /// Allocation of zero bytes requested.
    ZeroAllocation,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::OutOfMemory {
                requested,
                available,
            } => {
                write!(
                    f,
                    "out of memory: requested {requested} bytes, {available} available"
                )
            }
            SessionError::Unaligned(a) => write!(f, "address {a:#x} is not 64-bit aligned"),
            SessionError::Unmapped(a) => write!(f, "address {a:#x} is not mapped"),
            SessionError::ZeroAllocation => write!(f, "cannot allocate zero bytes"),
        }
    }
}

impl std::error::Error for SessionError {}

/// One recorded memory access: which MCU and DIMM-local physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceOp {
    /// MCU index (0–3).
    pub mcu: u8,
    /// DIMM-local physical byte address.
    pub local_addr: u64,
    /// Whether the access was a store.
    pub is_write: bool,
}

/// The result of executing a virus body once: its DRAM access trace.
///
/// Stores were already applied to the DIMMs; the trace is replayed
/// analytically to model the access intensity over a full run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordedRun {
    /// The recorded access trace, in program order.
    pub trace: Vec<TraceOp>,
    /// The MCU the session allocated from.
    pub target_mcu: usize,
    /// Whether the trace hit the recording cap (the replay then uses the
    /// recorded prefix as the periodic unit).
    pub truncated: bool,
}

impl RecordedRun {
    /// An empty run (no accesses — idle memory under test).
    pub fn idle(target_mcu: usize) -> Self {
        RecordedRun {
            trace: Vec::new(),
            target_mcu,
            truncated: false,
        }
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }
}

/// One contiguous allocation.
#[derive(Debug, Clone, Copy)]
struct Segment {
    virt_base: u64,
    bytes: u64,
    phys_base: u64,
}

/// A live memory session against a server.
///
/// Created by [`crate::XGene2Server::session`]. See the crate-level example.
#[derive(Debug)]
pub struct Session<'a> {
    server: &'a mut crate::server::XGene2Server,
    target_mcu: usize,
    segments: Vec<Segment>,
    next_virt: u64,
    trace: Vec<TraceOp>,
    max_trace: usize,
    truncated: bool,
}

impl<'a> Session<'a> {
    pub(crate) fn new(
        server: &'a mut crate::server::XGene2Server,
        target_mcu: usize,
        max_trace: usize,
    ) -> Self {
        Session {
            server,
            target_mcu,
            segments: Vec::new(),
            next_virt: 0x1_0000,
            trace: Vec::new(),
            max_trace,
            truncated: false,
        }
    }

    /// The MCU this session allocates from.
    pub fn target_mcu(&self) -> usize {
        self.target_mcu
    }

    /// Translates a virtual address to `(mcu, local physical address)`.
    fn translate(&self, addr: VirtAddr) -> Result<(usize, u64), SessionError> {
        if !addr.is_multiple_of(8) {
            return Err(SessionError::Unaligned(addr));
        }
        let seg = self
            .segments
            .iter()
            .find(|s| addr >= s.virt_base && addr < s.virt_base + s.bytes)
            .ok_or(SessionError::Unmapped(addr))?;
        let offset = addr - seg.virt_base;
        if self.server.interleaving() {
            // Consecutive 64-byte lines stripe across the four MCUs.
            let line = (seg.phys_base + offset) / 64;
            let within = (seg.phys_base + offset) % 64;
            let mcu = (line % crate::server::MCUS as u64) as usize;
            let local = (line / crate::server::MCUS as u64) * 64 + within;
            Ok((mcu, local))
        } else {
            Ok((self.target_mcu, seg.phys_base + offset))
        }
    }

    fn record(&mut self, mcu: usize, local_addr: u64, is_write: bool) {
        if self.trace.len() >= self.max_trace {
            self.truncated = true;
            return;
        }
        self.trace.push(TraceOp {
            mcu: mcu as u8,
            local_addr,
            is_write,
        });
    }

    /// Consumes the session, returning the recorded run.
    pub fn finish(self) -> RecordedRun {
        RecordedRun {
            trace: self.trace,
            target_mcu: self.target_mcu,
            truncated: self.truncated,
        }
    }
}

impl MemoryBus for Session<'_> {
    fn alloc(&mut self, bytes: u64) -> Result<VirtAddr, SessionError> {
        if bytes == 0 {
            return Err(SessionError::ZeroAllocation);
        }
        // Round to whole rows so big arrays land on row boundaries, as the
        // paper's 8 KB-chunk analysis assumes for page-aligned mallocs.
        let row_bytes = self.server.row_bytes();
        let rounded = bytes.div_ceil(row_bytes) * row_bytes;
        let phys_base = self.server.allocate(self.target_mcu, rounded).ok_or({
            SessionError::OutOfMemory {
                requested: bytes,
                available: self.server.available(self.target_mcu),
            }
        })?;
        let virt = self.next_virt;
        self.segments.push(Segment {
            virt_base: virt,
            bytes: rounded,
            phys_base,
        });
        self.next_virt += rounded;
        Ok(virt)
    }

    fn read_u64(&mut self, addr: VirtAddr) -> Result<u64, SessionError> {
        let (mcu, local) = self.translate(addr)?;
        self.record(mcu, local, false);
        Ok(self.server.read_local(mcu, local))
    }

    fn write_u64(&mut self, addr: VirtAddr, value: u64) -> Result<(), SessionError> {
        let (mcu, local) = self.translate(addr)?;
        self.record(mcu, local, true);
        self.server.write_local(mcu, local, value);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerConfig;
    use crate::server::XGene2Server;

    fn server() -> XGene2Server {
        XGene2Server::new(ServerConfig::small())
    }

    #[test]
    fn alloc_read_write_roundtrip() {
        let mut server = server();
        let mut s = server.session(2);
        let base = s.alloc(1024).unwrap();
        s.write_u64(base, 0xDEAD).unwrap();
        s.write_u64(base + 8, 0xBEEF).unwrap();
        assert_eq!(s.read_u64(base).unwrap(), 0xDEAD);
        assert_eq!(s.read_u64(base + 8).unwrap(), 0xBEEF);
    }

    #[test]
    fn unwritten_memory_reads_default_fill() {
        let mut server = server();
        let fill = server.config().dimm.default_fill;
        let mut s = server.session(2);
        let base = s.alloc(64).unwrap();
        assert_eq!(s.read_u64(base + 32).unwrap(), fill);
    }

    #[test]
    fn alignment_and_mapping_checks() {
        let mut server = server();
        let mut s = server.session(1);
        let base = s.alloc(64).unwrap();
        assert_eq!(
            s.read_u64(base + 1).unwrap_err(),
            SessionError::Unaligned(base + 1)
        );
        assert!(matches!(
            s.read_u64(0x8).unwrap_err(),
            SessionError::Unmapped(_)
        ));
        assert_eq!(s.alloc(0).unwrap_err(), SessionError::ZeroAllocation);
    }

    #[test]
    fn allocations_round_to_rows_and_do_not_overlap() {
        let mut server = server();
        let row = server.row_bytes();
        let mut s = server.session(0);
        let a = s.alloc(10).unwrap();
        let b = s.alloc(10).unwrap();
        assert_eq!(b - a, row, "second allocation must start a new row");
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut server = server();
        let capacity = server.config().dimm.geometry.capacity_bytes();
        let mut s = server.session(3);
        assert!(s.alloc(capacity / 2).is_ok());
        let err = s.alloc(capacity).unwrap_err();
        assert!(matches!(err, SessionError::OutOfMemory { .. }));
    }

    #[test]
    fn trace_records_accesses_in_order() {
        let mut server = server();
        let mut s = server.session(2);
        let base = s.alloc(64).unwrap();
        s.write_u64(base, 1).unwrap();
        s.read_u64(base).unwrap();
        let run = s.finish();
        assert_eq!(run.len(), 2);
        assert!(run.trace[0].is_write);
        assert!(!run.trace[1].is_write);
        assert_eq!(run.trace[0].local_addr, run.trace[1].local_addr);
        assert_eq!(run.target_mcu, 2);
        assert!(!run.truncated);
    }

    #[test]
    fn trace_truncates_at_cap() {
        let mut config = ServerConfig::small();
        config.access.max_trace_len = 4;
        let mut server = XGene2Server::new(config);
        let mut s = server.session(2);
        let base = s.alloc(128).unwrap();
        for i in 0..10 {
            s.write_u64(base + i * 8, i).unwrap();
        }
        let run = s.finish();
        assert_eq!(run.len(), 4);
        assert!(run.truncated);
    }

    #[test]
    fn writes_reach_the_target_dimm_even_when_truncated() {
        let mut config = ServerConfig::small();
        config.access.max_trace_len = 1;
        let mut server = XGene2Server::new(config);
        let mut s = server.session(2);
        let base = s.alloc(64).unwrap();
        s.write_u64(base, 1).unwrap();
        s.write_u64(base + 8, 2).unwrap();
        assert_eq!(s.read_u64(base + 8).unwrap(), 2);
    }

    #[test]
    fn interleaving_spreads_lines_across_mcus() {
        let mut config = ServerConfig::small();
        config.interleaving = true;
        let mut server = XGene2Server::new(config);
        let mut s = server.session(0);
        let base = s.alloc(4096).unwrap();
        for line in 0..8 {
            s.read_u64(base + line * 64).unwrap();
        }
        let run = s.finish();
        let mcus: std::collections::HashSet<u8> = run.trace.iter().map(|t| t.mcu).collect();
        assert_eq!(mcus.len(), 4, "8 consecutive lines must touch all 4 MCUs");
    }

    #[test]
    fn without_interleaving_everything_stays_on_target() {
        let mut server = server();
        let mut s = server.session(3);
        let base = s.alloc(4096).unwrap();
        for line in 0..8 {
            s.read_u64(base + line * 64).unwrap();
        }
        let run = s.finish();
        assert!(run.trace.iter().all(|t| t.mcu == 3));
    }

    #[test]
    fn idle_run_is_empty() {
        let run = RecordedRun::idle(1);
        assert!(run.is_empty());
        assert_eq!(run.len(), 0);
    }
}
