//! Virtual memory sessions: what a running virus sees.
//!
//! A [`Session`] is the view a virus process has of memory on the server:
//! `malloc`-style allocation, 64-bit loads and stores. Every access is
//! recorded into a trace; stores are applied to the backing DIMM
//! immediately. When the virus body finishes, [`Session::finish`] yields a
//! [`RecordedRun`] that the server replays analytically for the duration of
//! the experiment (see [`crate::replay`]).
//!
//! The paper pins application data to a chosen MCU by disabling hardware
//! interleaving in firmware (§IV "Memory Configuration"); a session is
//! created against a target MCU accordingly. With interleaving enabled,
//! consecutive cache lines stripe across all four MCUs instead.

use serde::{Deserialize, Serialize};

/// A virtual address inside a session.
pub type VirtAddr = u64;

/// The abstract memory interface a virus interpreter drives.
///
/// Implemented by [`Session`]; the `dstress-vpl` interpreter is written
/// against this trait so it can also run against mocks in tests.
pub trait MemoryBus {
    /// Allocates `bytes` of zero-initialized memory, returning its virtual
    /// base address.
    ///
    /// # Errors
    ///
    /// Fails when the backing DIMM is exhausted.
    fn alloc(&mut self, bytes: u64) -> Result<VirtAddr, SessionError>;

    /// Loads a 64-bit word.
    ///
    /// # Errors
    ///
    /// Fails on unmapped or unaligned addresses.
    fn read_u64(&mut self, addr: VirtAddr) -> Result<u64, SessionError>;

    /// Stores a 64-bit word.
    ///
    /// # Errors
    ///
    /// Fails on unmapped or unaligned addresses.
    fn write_u64(&mut self, addr: VirtAddr, value: u64) -> Result<(), SessionError>;

    /// Stores `values` as consecutive 64-bit words starting at `addr` — the
    /// bulk path behind fill loops. Semantically identical to one
    /// [`Self::write_u64`] per word, including per-word trace recording;
    /// implementations may batch the underlying stores (a [`Session`]
    /// translates once per row instead of once per word).
    ///
    /// # Errors
    ///
    /// Fails on unmapped or unaligned addresses; words before the failing
    /// one are already stored, exactly as with the per-word loop.
    fn fill(&mut self, addr: VirtAddr, values: &[u64]) -> Result<(), SessionError> {
        for (i, &value) in values.iter().enumerate() {
            self.write_u64(addr + i as u64 * 8, value)?;
        }
        Ok(())
    }

    /// Stores `count` copies of one 64-bit word starting at `addr` — the
    /// bulk path behind constant-fill loops (the VPL VM lowers a fused
    /// store-immediate loop to one call). Semantically identical to `count`
    /// [`Self::write_u64`] calls, including per-word trace recording.
    ///
    /// # Errors
    ///
    /// Fails on unmapped or unaligned addresses; words before the failing
    /// one are already stored, exactly as with the per-word loop.
    fn fill_const(&mut self, addr: VirtAddr, value: u64, count: u64) -> Result<(), SessionError> {
        for i in 0..count {
            self.write_u64(addr + i * 8, value)?;
        }
        Ok(())
    }

    /// Loads `count` consecutive 64-bit words starting at `addr` into
    /// `out` (cleared first) — the bulk path behind read-pressure loops
    /// (the VPL VM lowers a fused accumulate loop to one call).
    /// Semantically identical to `count` [`Self::read_u64`] calls,
    /// including per-word trace recording.
    ///
    /// # Errors
    ///
    /// Fails on unmapped or unaligned addresses; words before the failing
    /// one are already recorded, exactly as with the per-word loop.
    fn read_span(
        &mut self,
        addr: VirtAddr,
        count: u64,
        out: &mut Vec<u64>,
    ) -> Result<(), SessionError> {
        out.clear();
        out.reserve(count as usize);
        for i in 0..count {
            out.push(self.read_u64(addr + i * 8)?);
        }
        Ok(())
    }
}

/// Error raised by session memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionError {
    /// The target DIMM has no room for the requested allocation.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes remaining on the target DIMM.
        available: u64,
    },
    /// Address not 8-byte aligned.
    Unaligned(VirtAddr),
    /// Address not inside any allocation.
    Unmapped(VirtAddr),
    /// Allocation of zero bytes requested.
    ZeroAllocation,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::OutOfMemory {
                requested,
                available,
            } => {
                write!(
                    f,
                    "out of memory: requested {requested} bytes, {available} available"
                )
            }
            SessionError::Unaligned(a) => write!(f, "address {a:#x} is not 64-bit aligned"),
            SessionError::Unmapped(a) => write!(f, "address {a:#x} is not mapped"),
            SessionError::ZeroAllocation => write!(f, "cannot allocate zero bytes"),
        }
    }
}

impl std::error::Error for SessionError {}

/// One recorded memory access: which MCU and DIMM-local physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceOp {
    /// MCU index (0–3).
    pub mcu: u8,
    /// DIMM-local physical byte address.
    pub local_addr: u64,
    /// Whether the access was a store.
    pub is_write: bool,
}

/// One maximal contiguous stretch of a recorded trace: `words` successive
/// 64-bit accesses of the same kind, stride 8, on one MCU.
///
/// [`RecordedRun`] stores its trace as spans; consumers that care about
/// bulk structure (the replay profile, benches) walk [`RecordedRun::spans`]
/// directly instead of re-discovering contiguity per word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpan {
    /// MCU index (0–3).
    pub mcu: u8,
    /// DIMM-local physical byte address of the first word.
    pub local_addr: u64,
    /// Number of consecutive words.
    pub words: u64,
    /// Whether the accesses were stores.
    pub is_write: bool,
}

/// The result of executing a virus body once: its DRAM access trace.
///
/// Stores were already applied to the DIMMs; the trace is replayed
/// analytically to model the access intensity over a full run.
///
/// Stored as *spans*: virus traces are dominated by fill/reduce loops
/// streaming stride-8 over whole arrays, so instead of one address + one
/// metadata byte per access, each maximal contiguous stretch of same-kind
/// accesses collapses to `(start, words, meta)`. A fused fill of 65 536
/// words becomes a handful of row-sized span records rather than 65 536
/// entries, the recording bus appends a span in O(1), and the replay path
/// ([`crate::replay::ReplayProfile::build`]) consumes spans wholesale.
///
/// The encoding is *canonical*: [`RecordedRun::push`] greedily merges into
/// the last span, so two runs hold identical span vectors exactly when
/// their logical per-word traces are identical — derived `PartialEq` (and
/// the server's replay-profile cache keyed on it) still compares logical
/// traces. [`RecordedRun::iter`] re-materializes per-word [`TraceOp`]s for
/// consumers that want the flat view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordedRun {
    /// First DIMM-local physical byte address of each span.
    addrs: Vec<u64>,
    /// Words per span.
    lens: Vec<u32>,
    /// Packed per-span metadata: bit 7 = write flag, bits 0–6 = MCU.
    meta: Vec<u8>,
    /// Total logical word accesses across all spans.
    total: usize,
    /// The MCU the session allocated from.
    pub target_mcu: usize,
    /// Whether the trace hit the recording cap (the replay then uses the
    /// recorded prefix as the periodic unit).
    pub truncated: bool,
}

/// Write flag inside [`RecordedRun`] metadata bytes.
const META_WRITE: u8 = 0x80;

impl RecordedRun {
    /// An empty run (no accesses — idle memory under test).
    pub fn idle(target_mcu: usize) -> Self {
        RecordedRun {
            addrs: Vec::new(),
            lens: Vec::new(),
            meta: Vec::new(),
            total: 0,
            target_mcu,
            truncated: false,
        }
    }

    /// A run holding the given operations (test/workload construction).
    pub fn from_trace(ops: impl IntoIterator<Item = TraceOp>, target_mcu: usize) -> Self {
        let mut run = RecordedRun::idle(target_mcu);
        for op in ops {
            run.push(op);
        }
        run
    }

    /// Number of recorded (logical, per-word) operations.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Appends one access, merging into the last span when contiguous.
    #[inline]
    pub fn push(&mut self, op: TraceOp) {
        let meta = op.mcu | if op.is_write { META_WRITE } else { 0 };
        self.push_span_packed(meta, op.local_addr, 1);
    }

    /// Appends `words` consecutive same-kind accesses starting at
    /// `local_addr` in O(1) — bit-identical to `words` [`Self::push`]
    /// calls thanks to the canonical greedy merge.
    #[inline]
    pub fn push_span(&mut self, mcu: u8, local_addr: u64, words: u64, is_write: bool) {
        let meta = mcu | if is_write { META_WRITE } else { 0 };
        self.push_span_packed(meta, local_addr, words);
    }

    fn push_span_packed(&mut self, meta: u8, local_addr: u64, words: u64) {
        if words == 0 {
            return;
        }
        self.total += words as usize;
        let mut addr = local_addr;
        let mut left = words;
        // Greedy merge into the trailing span keeps the encoding canonical
        // (a function of the logical op sequence, not of call batching).
        if let (Some(&last_addr), Some(last_len), Some(&last_meta)) =
            (self.addrs.last(), self.lens.last_mut(), self.meta.last())
        {
            if last_meta == meta && addr == last_addr.wrapping_add(*last_len as u64 * 8) {
                let room = (u32::MAX - *last_len) as u64;
                let take = left.min(room);
                *last_len += take as u32;
                addr = addr.wrapping_add(take * 8);
                left -= take;
            }
        }
        while left > 0 {
            let take = left.min(u32::MAX as u64);
            self.addrs.push(addr);
            self.lens.push(take as u32);
            self.meta.push(meta);
            addr = addr.wrapping_add(take * 8);
            left -= take;
        }
    }

    /// The `i`-th recorded access. Walks the span table — meant for tests
    /// and spot checks, not bulk consumption (use [`Self::iter`] or
    /// [`Self::spans`] for that).
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn get(&self, i: usize) -> TraceOp {
        assert!(
            i < self.total,
            "trace index {i} out of range {}",
            self.total
        );
        let mut skip = i;
        for span in self.spans() {
            if (skip as u64) < span.words {
                return TraceOp {
                    mcu: span.mcu,
                    local_addr: span.local_addr.wrapping_add(skip as u64 * 8),
                    is_write: span.is_write,
                };
            }
            skip -= span.words as usize;
        }
        unreachable!("span lengths sum to total");
    }

    /// Iterates the recorded spans in program order.
    pub fn spans(&self) -> impl Iterator<Item = TraceSpan> + '_ {
        self.addrs
            .iter()
            .zip(&self.lens)
            .zip(&self.meta)
            .map(|((&local_addr, &len), &meta)| TraceSpan {
                mcu: meta & !META_WRITE,
                local_addr,
                words: len as u64,
                is_write: meta & META_WRITE != 0,
            })
    }

    /// Iterates the recorded accesses word by word, in program order.
    pub fn iter(&self) -> impl Iterator<Item = TraceOp> + '_ {
        self.spans().flat_map(|span| {
            (0..span.words).map(move |j| TraceOp {
                mcu: span.mcu,
                local_addr: span.local_addr.wrapping_add(j * 8),
                is_write: span.is_write,
            })
        })
    }

    /// Appends every access of `other` (workload composition), merging
    /// across the boundary when the traces are contiguous.
    pub fn append_run(&mut self, other: &RecordedRun) {
        for ((&addr, &len), &meta) in other.addrs.iter().zip(&other.lens).zip(&other.meta) {
            self.push_span_packed(meta, addr, len as u64);
        }
    }
}

/// One contiguous allocation.
#[derive(Debug, Clone, Copy)]
struct Segment {
    virt_base: u64,
    bytes: u64,
    phys_base: u64,
}

/// A live memory session against a server.
///
/// Created by [`crate::XGene2Server::session`]. See the crate-level example.
#[derive(Debug)]
pub struct Session<'a> {
    server: &'a mut crate::server::XGene2Server,
    target_mcu: usize,
    segments: Vec<Segment>,
    next_virt: u64,
    trace: RecordedRun,
    max_trace: usize,
}

impl<'a> Session<'a> {
    pub(crate) fn new(
        server: &'a mut crate::server::XGene2Server,
        target_mcu: usize,
        max_trace: usize,
    ) -> Self {
        Session {
            server,
            target_mcu,
            segments: Vec::new(),
            next_virt: 0x1_0000,
            trace: RecordedRun::idle(target_mcu),
            max_trace,
        }
    }

    /// The MCU this session allocates from.
    pub fn target_mcu(&self) -> usize {
        self.target_mcu
    }

    /// Translates a virtual address to `(mcu, local physical address)`.
    #[inline]
    fn translate(&self, addr: VirtAddr) -> Result<(usize, u64), SessionError> {
        if !addr.is_multiple_of(8) {
            return Err(SessionError::Unaligned(addr));
        }
        let seg = self
            .segments
            .iter()
            .find(|s| addr >= s.virt_base && addr < s.virt_base + s.bytes)
            .ok_or(SessionError::Unmapped(addr))?;
        let offset = addr - seg.virt_base;
        if self.server.interleaving() {
            // Consecutive 64-byte lines stripe across the four MCUs.
            let line = (seg.phys_base + offset) / 64;
            let within = (seg.phys_base + offset) % 64;
            let mcu = (line % crate::server::MCUS as u64) as usize;
            let local = (line / crate::server::MCUS as u64) * 64 + within;
            Ok((mcu, local))
        } else {
            Ok((self.target_mcu, seg.phys_base + offset))
        }
    }

    #[inline]
    fn record(&mut self, mcu: usize, local_addr: u64, is_write: bool) {
        if self.trace.len() >= self.max_trace {
            self.trace.truncated = true;
            return;
        }
        self.trace.push(TraceOp {
            mcu: mcu as u8,
            local_addr,
            is_write,
        });
    }

    /// Bulk variant of [`Self::record`]: `n` consecutive word accesses
    /// starting at `local_addr`, cap-checked once instead of per word.
    /// Bit-identical trace to `n` `record` calls, including the truncation
    /// flag when the span runs past the recording cap.
    fn record_span(&mut self, mcu: usize, local_addr: u64, n: u64, is_write: bool) {
        let room = self.max_trace.saturating_sub(self.trace.len());
        let keep = (n as usize).min(room);
        if keep < n as usize {
            self.trace.truncated = true;
        }
        self.trace
            .push_span(mcu as u8, local_addr, keep as u64, is_write);
    }

    /// Consumes the session, returning the recorded run.
    pub fn finish(self) -> RecordedRun {
        self.trace
    }
}

// `#[inline]` throughout: the VPL bytecode VM is monomorphized over this
// bus, and these bodies are the per-access hot path it inlines.
impl MemoryBus for Session<'_> {
    #[inline]
    fn alloc(&mut self, bytes: u64) -> Result<VirtAddr, SessionError> {
        if bytes == 0 {
            return Err(SessionError::ZeroAllocation);
        }
        // Round to whole rows so big arrays land on row boundaries, as the
        // paper's 8 KB-chunk analysis assumes for page-aligned mallocs.
        let row_bytes = self.server.row_bytes();
        let rounded = bytes.div_ceil(row_bytes) * row_bytes;
        let phys_base = self.server.allocate(self.target_mcu, rounded).ok_or({
            SessionError::OutOfMemory {
                requested: bytes,
                available: self.server.available(self.target_mcu),
            }
        })?;
        let virt = self.next_virt;
        self.segments.push(Segment {
            virt_base: virt,
            bytes: rounded,
            phys_base,
        });
        self.next_virt += rounded;
        Ok(virt)
    }

    #[inline]
    fn read_u64(&mut self, addr: VirtAddr) -> Result<u64, SessionError> {
        let (mcu, local) = self.translate(addr)?;
        self.record(mcu, local, false);
        Ok(self.server.read_local(mcu, local))
    }

    #[inline]
    fn write_u64(&mut self, addr: VirtAddr, value: u64) -> Result<(), SessionError> {
        let (mcu, local) = self.translate(addr)?;
        self.record(mcu, local, true);
        self.server.write_local(mcu, local, value);
        Ok(())
    }

    /// Row-granular fast path: translates once per DRAM row and stores each
    /// in-row span with a single row lookup. Allocations are row-aligned
    /// (see [`Self::alloc`]), so a chunk bounded by the current row never
    /// straddles a segment. Trace recording stays per word — the replay
    /// profile must not notice the batching. With interleaving enabled,
    /// lines stripe across MCUs every 64 bytes and batching buys nothing,
    /// so that case keeps the word-at-a-time default.
    fn fill(&mut self, addr: VirtAddr, values: &[u64]) -> Result<(), SessionError> {
        if self.server.interleaving() {
            for (i, &value) in values.iter().enumerate() {
                self.write_u64(addr + i as u64 * 8, value)?;
            }
            return Ok(());
        }
        let row_bytes = self.server.row_bytes();
        let mut done = 0usize;
        while done < values.len() {
            let chunk_addr = addr + done as u64 * 8;
            let (mcu, local) = self.translate(chunk_addr)?;
            let row_remaining = ((row_bytes - local % row_bytes) / 8) as usize;
            let n = row_remaining.min(values.len() - done);
            self.record_span(mcu, local, n as u64, true);
            self.server
                .write_local_span(mcu, local, &values[done..done + n]);
            done += n;
        }
        Ok(())
    }

    /// Row-granular constant fill: one materialized row-sized buffer serves
    /// every chunk, so the caller never builds a `count`-long slice. Same
    /// chunking and trace recording as [`Self::fill`]; interleaved mode
    /// keeps the word-at-a-time default for the same reason.
    fn fill_const(&mut self, addr: VirtAddr, value: u64, count: u64) -> Result<(), SessionError> {
        if self.server.interleaving() {
            for i in 0..count {
                self.write_u64(addr + i * 8, value)?;
            }
            return Ok(());
        }
        let row_bytes = self.server.row_bytes();
        let row_buf = vec![value; (row_bytes / 8) as usize];
        let mut done = 0u64;
        while done < count {
            let chunk_addr = addr + done * 8;
            let (mcu, local) = self.translate(chunk_addr)?;
            let row_remaining = (row_bytes - local % row_bytes) / 8;
            let n = row_remaining.min(count - done);
            self.record_span(mcu, local, n, true);
            self.server
                .write_local_span(mcu, local, &row_buf[..n as usize]);
            done += n;
        }
        Ok(())
    }

    /// Row-granular bulk read: translates once per DRAM row and loads each
    /// in-row span with a single row lookup. Same chunking and per-word
    /// trace recording as [`Self::fill`]; interleaved mode keeps the
    /// word-at-a-time default for the same reason.
    fn read_span(
        &mut self,
        addr: VirtAddr,
        count: u64,
        out: &mut Vec<u64>,
    ) -> Result<(), SessionError> {
        if self.server.interleaving() {
            out.clear();
            out.reserve(count as usize);
            for i in 0..count {
                out.push(self.read_u64(addr + i * 8)?);
            }
            return Ok(());
        }
        out.clear();
        out.resize(count as usize, 0);
        let row_bytes = self.server.row_bytes();
        let mut done = 0u64;
        while done < count {
            let chunk_addr = addr + done * 8;
            let (mcu, local) = self.translate(chunk_addr)?;
            let row_remaining = (row_bytes - local % row_bytes) / 8;
            let n = row_remaining.min(count - done);
            self.record_span(mcu, local, n, false);
            self.server
                .read_local_span(mcu, local, &mut out[done as usize..(done + n) as usize]);
            done += n;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerConfig;
    use crate::server::XGene2Server;

    fn server() -> XGene2Server {
        XGene2Server::new(ServerConfig::small())
    }

    #[test]
    fn alloc_read_write_roundtrip() {
        let mut server = server();
        let mut s = server.session(2);
        let base = s.alloc(1024).unwrap();
        s.write_u64(base, 0xDEAD).unwrap();
        s.write_u64(base + 8, 0xBEEF).unwrap();
        assert_eq!(s.read_u64(base).unwrap(), 0xDEAD);
        assert_eq!(s.read_u64(base + 8).unwrap(), 0xBEEF);
    }

    #[test]
    fn unwritten_memory_reads_default_fill() {
        let mut server = server();
        let fill = server.config().dimm.default_fill;
        let mut s = server.session(2);
        let base = s.alloc(64).unwrap();
        assert_eq!(s.read_u64(base + 32).unwrap(), fill);
    }

    #[test]
    fn alignment_and_mapping_checks() {
        let mut server = server();
        let mut s = server.session(1);
        let base = s.alloc(64).unwrap();
        assert_eq!(
            s.read_u64(base + 1).unwrap_err(),
            SessionError::Unaligned(base + 1)
        );
        assert!(matches!(
            s.read_u64(0x8).unwrap_err(),
            SessionError::Unmapped(_)
        ));
        assert_eq!(s.alloc(0).unwrap_err(), SessionError::ZeroAllocation);
    }

    #[test]
    fn allocations_round_to_rows_and_do_not_overlap() {
        let mut server = server();
        let row = server.row_bytes();
        let mut s = server.session(0);
        let a = s.alloc(10).unwrap();
        let b = s.alloc(10).unwrap();
        assert_eq!(b - a, row, "second allocation must start a new row");
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut server = server();
        let capacity = server.config().dimm.geometry.capacity_bytes();
        let mut s = server.session(3);
        assert!(s.alloc(capacity / 2).is_ok());
        let err = s.alloc(capacity).unwrap_err();
        assert!(matches!(err, SessionError::OutOfMemory { .. }));
    }

    #[test]
    fn trace_records_accesses_in_order() {
        let mut server = server();
        let mut s = server.session(2);
        let base = s.alloc(64).unwrap();
        s.write_u64(base, 1).unwrap();
        s.read_u64(base).unwrap();
        let run = s.finish();
        assert_eq!(run.len(), 2);
        assert!(run.get(0).is_write);
        assert!(!run.get(1).is_write);
        assert_eq!(run.get(0).local_addr, run.get(1).local_addr);
        assert_eq!(run.target_mcu, 2);
        assert!(!run.truncated);
    }

    #[test]
    fn trace_truncates_at_cap() {
        let mut config = ServerConfig::small();
        config.access.max_trace_len = 4;
        let mut server = XGene2Server::new(config);
        let mut s = server.session(2);
        let base = s.alloc(128).unwrap();
        for i in 0..10 {
            s.write_u64(base + i * 8, i).unwrap();
        }
        let run = s.finish();
        assert_eq!(run.len(), 4);
        assert!(run.truncated);
    }

    #[test]
    fn writes_reach_the_target_dimm_even_when_truncated() {
        let mut config = ServerConfig::small();
        config.access.max_trace_len = 1;
        let mut server = XGene2Server::new(config);
        let mut s = server.session(2);
        let base = s.alloc(64).unwrap();
        s.write_u64(base, 1).unwrap();
        s.write_u64(base + 8, 2).unwrap();
        assert_eq!(s.read_u64(base + 8).unwrap(), 2);
    }

    #[test]
    fn interleaving_spreads_lines_across_mcus() {
        let mut config = ServerConfig::small();
        config.interleaving = true;
        let mut server = XGene2Server::new(config);
        let mut s = server.session(0);
        let base = s.alloc(4096).unwrap();
        for line in 0..8 {
            s.read_u64(base + line * 64).unwrap();
        }
        let run = s.finish();
        let mcus: std::collections::HashSet<u8> = run.iter().map(|t| t.mcu).collect();
        assert_eq!(mcus.len(), 4, "8 consecutive lines must touch all 4 MCUs");
    }

    #[test]
    fn without_interleaving_everything_stays_on_target() {
        let mut server = server();
        let mut s = server.session(3);
        let base = s.alloc(4096).unwrap();
        for line in 0..8 {
            s.read_u64(base + line * 64).unwrap();
        }
        let run = s.finish();
        assert!(run.iter().all(|t| t.mcu == 3));
    }

    #[test]
    fn fill_matches_word_at_a_time_writes() {
        // The batched fill must be indistinguishable from a write_u64 loop:
        // same stored contents, same recorded trace — across row boundaries
        // and from an unaligned (mid-row) start.
        let values: Vec<u64> = (0..2500u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let mut batched_server = server();
        let batched = {
            let mut s = batched_server.session(2);
            let base = s.alloc(values.len() as u64 * 8 + 64).unwrap();
            s.fill(base + 16, &values).unwrap();
            s.finish()
        };
        let mut word_server = server();
        let looped = {
            let mut s = word_server.session(2);
            let base = s.alloc(values.len() as u64 * 8 + 64).unwrap();
            for (i, &v) in values.iter().enumerate() {
                s.write_u64(base + 16 + i as u64 * 8, v).unwrap();
            }
            s.finish()
        };
        assert_eq!(batched, looped, "trace must not notice the batching");
        // The stored bits agree word for word (phys base 0: first alloc).
        for i in 0..values.len() as u64 + 4 {
            let local = 16 + i * 8;
            assert_eq!(
                batched_server.read_local(2, local),
                word_server.read_local(2, local),
                "divergence at local address {local:#x}"
            );
        }
        assert_eq!(
            batched_server.dimm(2).materialized_rows(),
            word_server.dimm(2).materialized_rows()
        );
    }

    #[test]
    fn fill_const_matches_word_at_a_time_writes() {
        // Constant fill must be indistinguishable from a write_u64 loop of
        // the same constant — contents and trace — across row boundaries
        // and from a mid-row start.
        let count = 2500u64;
        let value = 0xCCCC_CCCC_CCCC_CCCC;
        let mut batched_server = server();
        let batched = {
            let mut s = batched_server.session(2);
            let base = s.alloc(count * 8 + 64).unwrap();
            s.fill_const(base + 16, value, count).unwrap();
            s.finish()
        };
        let mut word_server = server();
        let looped = {
            let mut s = word_server.session(2);
            let base = s.alloc(count * 8 + 64).unwrap();
            for i in 0..count {
                s.write_u64(base + 16 + i * 8, value).unwrap();
            }
            s.finish()
        };
        assert_eq!(batched, looped, "trace must not notice the batching");
        for i in 0..count + 4 {
            let local = 16 + i * 8;
            assert_eq!(
                batched_server.read_local(2, local),
                word_server.read_local(2, local),
                "divergence at local address {local:#x}"
            );
        }
    }

    #[test]
    fn read_span_matches_word_at_a_time_reads() {
        // Bulk reads must be indistinguishable from a read_u64 loop —
        // values and trace — across row boundaries and from a mid-row
        // start, over mixed written and default-filled rows.
        let count = 2500u64;
        let mut batched_server = server();
        let mut spanned = Vec::new();
        let batched = {
            let mut s = batched_server.session(2);
            let base = s.alloc(count * 8 + 64).unwrap();
            // Write only the first half: the tail reads default contents.
            s.fill_const(base, 0x5A5A_5A5A_5A5A_5A5A, count / 2)
                .unwrap();
            s.read_span(base + 16, count, &mut spanned).unwrap();
            s.finish()
        };
        let mut word_server = server();
        let mut looped_values = Vec::new();
        let looped = {
            let mut s = word_server.session(2);
            let base = s.alloc(count * 8 + 64).unwrap();
            s.fill_const(base, 0x5A5A_5A5A_5A5A_5A5A, count / 2)
                .unwrap();
            for i in 0..count {
                looped_values.push(s.read_u64(base + 16 + i * 8).unwrap());
            }
            s.finish()
        };
        assert_eq!(spanned, looped_values, "values must match per-word reads");
        assert_eq!(batched, looped, "trace must not notice the batching");
    }

    #[test]
    fn read_span_rejects_bad_addresses_like_read_u64() {
        let mut server = server();
        let mut s = server.session(0);
        let base = s.alloc(64).unwrap();
        let mut out = Vec::new();
        assert_eq!(
            s.read_span(base + 1, 2, &mut out).unwrap_err(),
            SessionError::Unaligned(base + 1)
        );
        let unmapped = 0xdead_beef_0000u64;
        assert_eq!(
            s.read_span(unmapped, 2, &mut out).unwrap_err(),
            SessionError::Unmapped(unmapped)
        );
    }

    #[test]
    fn fill_const_rejects_bad_addresses_like_write_u64() {
        let mut server = server();
        let mut s = server.session(0);
        let base = s.alloc(64).unwrap();
        assert_eq!(
            s.fill_const(base + 1, 7, 2).unwrap_err(),
            SessionError::Unaligned(base + 1)
        );
        // Running past the allocation fails at the first unmapped row with
        // the in-range prefix applied, like the per-word loop.
        let row_words = server.row_bytes() / 8;
        let mut s = server.session(0);
        let base = s.alloc(8).unwrap(); // rounds to one row
        assert!(matches!(
            s.fill_const(base, 9, row_words + 1).unwrap_err(),
            SessionError::Unmapped(_)
        ));
        assert_eq!(s.read_u64(base).unwrap(), 9);
    }

    #[test]
    fn fill_contents_reach_the_dimm() {
        let mut server = server();
        let values: Vec<u64> = (0..1500u64).collect();
        let mut s = server.session(1);
        let base = s.alloc(values.len() as u64 * 8).unwrap();
        s.fill(base, &values).unwrap();
        for i in [0u64, 1, 1023, 1024, 1499] {
            assert_eq!(s.read_u64(base + i * 8).unwrap(), i);
        }
    }

    #[test]
    fn fill_with_interleaving_falls_back_to_word_writes() {
        let mut config = ServerConfig::small();
        config.interleaving = true;
        let mut server = XGene2Server::new(config);
        let values: Vec<u64> = (0..64u64).collect();
        let mut s = server.session(0);
        let base = s.alloc(values.len() as u64 * 8).unwrap();
        s.fill(base, &values).unwrap();
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(s.read_u64(base + i as u64 * 8).unwrap(), v);
        }
        let run = s.finish();
        let mcus: std::collections::HashSet<u8> =
            run.iter().filter(|t| t.is_write).map(|t| t.mcu).collect();
        assert_eq!(mcus.len(), 4, "interleaved fill must stripe across MCUs");
    }

    #[test]
    fn fill_rejects_bad_addresses_like_write_u64() {
        let mut server = server();
        let mut s = server.session(0);
        let base = s.alloc(64).unwrap();
        assert_eq!(
            s.fill(base + 1, &[1, 2]).unwrap_err(),
            SessionError::Unaligned(base + 1)
        );
        assert!(matches!(
            s.fill(0x8, &[1]).unwrap_err(),
            SessionError::Unmapped(_)
        ));
        // A fill running past the allocation fails at the first unmapped
        // row, with the in-range prefix applied — like the per-word loop.
        let row_words = server.row_bytes() / 8;
        let mut s = server.session(0);
        let base = s.alloc(8).unwrap(); // rounds to one row
        let too_many = vec![7u64; row_words as usize + 1];
        assert!(matches!(
            s.fill(base, &too_many).unwrap_err(),
            SessionError::Unmapped(_)
        ));
        assert_eq!(s.read_u64(base).unwrap(), 7);
    }

    #[test]
    fn idle_run_is_empty() {
        let run = RecordedRun::idle(1);
        assert!(run.is_empty());
        assert_eq!(run.len(), 0);
    }

    #[test]
    fn packed_trace_roundtrips_ops() {
        // The SoA encoding (packed mcu/write byte + address vector) must
        // reproduce every TraceOp exactly, through push, get, and iter.
        let ops = [
            TraceOp {
                mcu: 0,
                local_addr: 0,
                is_write: false,
            },
            TraceOp {
                mcu: 3,
                local_addr: !7u64,
                is_write: true,
            },
            TraceOp {
                mcu: 127,
                local_addr: 0x8192,
                is_write: true,
            },
        ];
        let run = RecordedRun::from_trace(ops, 1);
        assert_eq!(run.len(), 3);
        for (i, op) in ops.iter().enumerate() {
            assert_eq!(run.get(i), *op);
        }
        let collected: Vec<TraceOp> = run.iter().collect();
        assert_eq!(collected, ops);
        let mut merged = RecordedRun::idle(1);
        merged.append_run(&run);
        merged.append_run(&run);
        assert_eq!(merged.len(), 6);
        assert_eq!(merged.get(5), ops[2]);
    }
}
