//! Fitness evaluation.

use crate::genome::Genome;
use serde::{Deserialize, Serialize};

/// How an evaluation fault should be handled by the supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A passing failure (flaky platform, thermal drift, lost run):
    /// retrying the same candidate may succeed.
    Transient,
    /// A deterministic failure (bad template instantiation, hard substrate
    /// error): retrying cannot help.
    Permanent,
    /// The evaluation panicked; caught by the supervisor's `catch_unwind`
    /// isolation and treated as permanent.
    Panic,
    /// The step-budget watchdog fired (the VM's `ExecutionLimit`): the
    /// candidate does not terminate within its budget, so retrying the same
    /// deterministic program cannot help.
    BudgetExhausted,
}

/// Why a fitness evaluation failed, classified for the supervisor: only
/// [`FaultKind::Transient`] faults are retried; everything else quarantines
/// the candidate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvalFault {
    /// The retry classification.
    pub kind: FaultKind,
    /// Human-readable description, recorded in the incident stream.
    pub message: String,
}

impl EvalFault {
    /// A transient (retryable) fault.
    pub fn transient(message: impl Into<String>) -> Self {
        EvalFault {
            kind: FaultKind::Transient,
            message: message.into(),
        }
    }

    /// A permanent (non-retryable) fault.
    pub fn permanent(message: impl Into<String>) -> Self {
        EvalFault {
            kind: FaultKind::Permanent,
            message: message.into(),
        }
    }

    /// A step-budget-watchdog fault (non-retryable).
    pub fn budget_exhausted(message: impl Into<String>) -> Self {
        EvalFault {
            kind: FaultKind::BudgetExhausted,
            message: message.into(),
        }
    }

    /// Whether the supervisor may retry after this fault.
    pub fn is_retryable(&self) -> bool {
        self.kind == FaultKind::Transient
    }
}

impl std::fmt::Display for EvalFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            FaultKind::Transient => write!(f, "transient fault: {}", self.message),
            FaultKind::Permanent => write!(f, "permanent fault: {}", self.message),
            FaultKind::Panic => write!(f, "panic: {}", self.message),
            FaultKind::BudgetExhausted => write!(f, "step budget exhausted: {}", self.message),
        }
    }
}

impl std::error::Error for EvalFault {}

/// Something that scores chromosomes. Higher is always better inside the
/// engine; minimization searches (the paper's best-case data pattern,
/// §V-A.1) are handled by the engine's `minimize` flag, which negates the
/// reported objective.
pub trait Fitness<G: Genome> {
    /// Scores one chromosome. May be stochastic (DRAM fitness is: VRT makes
    /// error counts vary run-to-run).
    fn evaluate(&mut self, genome: &G) -> f64;

    /// Fallible scoring: the supervised evaluation path calls this so a
    /// substrate can report faults instead of panicking or smuggling them
    /// into the fitness value. The default adapter wraps [`evaluate`] and
    /// never fails; substrates with real failure modes (the DStress
    /// evaluator's VM watchdog, live-hardware platforms) override it.
    ///
    /// Implementations must stay pure in the [`ParallelFitness`] sense:
    /// whether a chromosome faults — and how — must be a function of the
    /// chromosome, not of call order or the replica evaluating it.
    ///
    /// # Errors
    ///
    /// An [`EvalFault`] classifying the failure as transient (retryable) or
    /// permanent.
    ///
    /// [`evaluate`]: Fitness::evaluate
    fn try_evaluate(&mut self, genome: &G) -> Result<f64, EvalFault> {
        Ok(self.evaluate(genome))
    }

    /// Scores a whole generation at once — the entry point the serial
    /// engine path feeds each population through. The default evaluates
    /// candidates one at a time in population order; substrates with
    /// generation-level batching (shared compilation, repeat-chromosome
    /// dedup, grouped plan preparation) override it. Overrides must be
    /// observationally identical to the per-candidate loop: slot `i` of
    /// the result is exactly `evaluate(&population[i])`.
    fn evaluate_generation(&mut self, population: &[G]) -> Vec<f64> {
        population.iter().map(|g| self.evaluate(g)).collect()
    }
}

/// A fitness that can be replicated across evaluation workers.
///
/// The engine's parallel path ([`crate::GaEngine::run_parallel`]) hands each
/// worker thread its own replica and splits every generation's population
/// among them, so implementations must uphold two contracts:
///
/// * **Purity** — `evaluate` must be a pure function of the genome: the same
///   chromosome scores identically on every replica, in any order. This is
///   what makes `workers = 1` and `workers = N` produce bit-identical
///   [`crate::SearchResult`]s, and what makes the engine's evaluation cache
///   transparent. Stochastic substrates satisfy this by deriving their noise
///   from the chromosome itself (as the DStress evaluator derives its VRT
///   nonce from the bound chromosome) rather than from call order.
/// * **Replica independence** — a replica owns all the state it mutates;
///   evaluating on one replica must not affect another.
///
/// Bookkeeping that replicas accumulate (failed-evaluation counts, run
/// logs …) is folded back into the master through [`absorb`] when the
/// search finishes.
///
/// [`absorb`]: ParallelFitness::absorb
pub trait ParallelFitness<G: Genome>: Fitness<G> + Send {
    /// Creates an independent replica that scores identically to `self`.
    fn replicate(&self) -> Self
    where
        Self: Sized;

    /// Folds a worker replica's bookkeeping back into the master after the
    /// search. The default drops the replica.
    fn absorb(&mut self, _replica: Self)
    where
        Self: Sized,
    {
    }

    /// Monotone counters of the replica's internal caches, as
    /// `(warm_hits, cold_misses)` — e.g. compile-cache hits vs fresh
    /// compiles. The persistent evaluation pool samples these around every
    /// task to report how warm each long-lived replica stays across
    /// generations ([`crate::EvalStats::replica_warm_hits`] /
    /// [`crate::EvalStats::replica_cold_misses`]). The default — for
    /// substrates with no internal caches — reports zeros.
    fn cache_counters(&self) -> (u64, u64) {
        (0, 0)
    }
}

/// Adapts a closure into a [`Fitness`].
///
/// # Examples
///
/// ```
/// use dstress_ga::{BitGenome, Fitness, FnFitness};
///
/// let mut f = FnFitness::new(|g: &BitGenome| g.count_ones() as f64);
/// let g = BitGenome::from_words(&[0xFF], 64);
/// assert_eq!(f.evaluate(&g), 8.0);
/// ```
pub struct FnFitness<F> {
    f: F,
}

impl<F> FnFitness<F> {
    /// Wraps a closure.
    pub fn new(f: F) -> Self {
        FnFitness { f }
    }
}

impl<G: Genome, F: FnMut(&G) -> f64> Fitness<G> for FnFitness<F> {
    fn evaluate(&mut self, genome: &G) -> f64 {
        (self.f)(genome)
    }
}

impl<G: Genome, F: FnMut(&G) -> f64 + Clone + Send> ParallelFitness<G> for FnFitness<F> {
    fn replicate(&self) -> Self {
        FnFitness { f: self.f.clone() }
    }
}

impl<F> std::fmt::Debug for FnFitness<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnFitness").finish_non_exhaustive()
    }
}

/// Averages a noisy inner fitness over `runs` evaluations — the paper runs
/// "each virus ten times and average\[s\] the number of obtained CEs since the
/// number of errors may vary from run-to-run due to … Variable Retention
/// Time" (§V-A.1).
#[derive(Debug)]
pub struct AveragedFitness<F> {
    inner: F,
    runs: u32,
}

impl<F> AveragedFitness<F> {
    /// Wraps `inner`, averaging over `runs` evaluations per chromosome.
    ///
    /// # Panics
    ///
    /// Panics if `runs` is zero.
    pub fn new(inner: F, runs: u32) -> Self {
        assert!(runs > 0, "averaging requires at least one run");
        AveragedFitness { inner, runs }
    }

    /// The configured number of runs.
    pub fn runs(&self) -> u32 {
        self.runs
    }
}

impl<G: Genome, F: Fitness<G>> Fitness<G> for AveragedFitness<F> {
    fn evaluate(&mut self, genome: &G) -> f64 {
        let sum: f64 = (0..self.runs).map(|_| self.inner.evaluate(genome)).sum();
        sum / self.runs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::BitGenome;

    #[test]
    fn fn_fitness_delegates() {
        let mut f = FnFitness::new(|g: &BitGenome| g.len() as f64);
        assert_eq!(f.evaluate(&BitGenome::zeros(10)), 10.0);
    }

    #[test]
    fn default_try_evaluate_wraps_evaluate() {
        let mut f = FnFitness::new(|g: &BitGenome| g.count_ones() as f64);
        assert_eq!(f.try_evaluate(&BitGenome::from_words(&[0b111], 8)), Ok(3.0));
    }

    #[test]
    fn fault_classification_drives_retryability() {
        assert!(EvalFault::transient("flaky").is_retryable());
        assert!(!EvalFault::permanent("broken").is_retryable());
        assert!(!EvalFault::budget_exhausted("hung").is_retryable());
        let fault = EvalFault::budget_exhausted("5000 steps");
        assert_eq!(fault.to_string(), "step budget exhausted: 5000 steps");
    }

    #[test]
    fn averaging_reduces_noise() {
        // A fitness that alternates 0/10: the average over 10 runs is 5±1.
        let mut toggle = 0u32;
        let noisy = FnFitness::new(move |_: &BitGenome| {
            toggle += 1;
            if toggle.is_multiple_of(2) {
                10.0
            } else {
                0.0
            }
        });
        let mut avg = AveragedFitness::new(noisy, 10);
        let v = avg.evaluate(&BitGenome::zeros(4));
        assert!((v - 5.0).abs() <= 1.0, "averaged value {v}");
        assert_eq!(avg.runs(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_panics() {
        AveragedFitness::new(FnFitness::new(|_: &BitGenome| 0.0), 0);
    }
}
