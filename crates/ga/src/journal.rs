//! Crash-safe campaign persistence (paper §III-F).
//!
//! The paper's virus database exists so a two-week search can be interrupted
//! and resumed without losing work. This module makes that guarantee real:
//!
//! * every evaluated virus and every per-generation engine checkpoint is
//!   first **acknowledged** into an append-only JSONL write-ahead journal
//!   (`<db>.journal`) — a record is acked once its append *and* fsync have
//!   both returned;
//! * the journal is periodically **compacted** into an atomic snapshot
//!   (`<db>`): the full state is written to `<db>.tmp`, fsynced, and
//!   renamed over the snapshot, so a crash mid-compaction leaves either the
//!   old snapshot or the new one — never a hybrid;
//! * **recovery** loads the snapshot and replays the journal's longest
//!   valid prefix of lines. A torn tail (crash mid-append) is discarded,
//!   and records the snapshot already holds are skipped, so replay is
//!   idempotent across every crash point of the compaction protocol.
//!
//! All I/O goes through the [`Storage`] trait; [`MemStorage`] injects
//! faults into individual appends/fsyncs/renames and simulates crashes
//! (unsynced bytes vanish), which is how the fault-injection suite proves
//! that no schedule of failures loses an acknowledged record.

use crate::db::{VirusDatabase, VirusRecord};
use crate::engine::{EngineState, SearchResult, SearchSession};
use crate::fitness::ParallelFitness;
use crate::genome::Genome;
use crate::supervise::{HazardPlan, Incident, SupervisionPolicy};
use crate::GaConfig;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use std::hash::Hash;
use std::io;
use std::path::{Path, PathBuf};

/// The primitive filesystem operations the journal needs, kept separate so
/// a test harness can fail each one independently. Implementations must
/// make [`append`] + [`sync`] durable (the ack point) and [`rename`]
/// atomic.
///
/// [`append`]: Storage::append
/// [`sync`]: Storage::sync
/// [`rename`]: Storage::rename
pub trait Storage {
    /// Reads a whole file; `Ok(None)` when it does not exist.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures other than the file being absent.
    fn read(&self, path: &Path) -> io::Result<Option<Vec<u8>>>;

    /// Appends bytes to a file, creating it if missing. Not durable until
    /// [`sync`](Storage::sync) returns.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn append(&mut self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Makes every previously written byte of the file durable (fsync).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn sync(&mut self, path: &Path) -> io::Result<()>;

    /// Creates or truncates a file with the given contents (used for the
    /// snapshot temporary). Not durable until synced.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn write(&mut self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Atomically renames `from` over `to`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes a file; succeeds if it is already absent.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures other than the file being absent.
    fn remove(&mut self, path: &Path) -> io::Result<()>;

    /// Creates a directory and all missing parents; succeeds if it
    /// already exists. Counted as a mutating operation by fault-injecting
    /// implementations.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn create_dir_all(&mut self, path: &Path) -> io::Result<()>;

    /// Lists the files directly inside `dir`, in a deterministic
    /// (sorted) order. A missing directory lists as empty.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
}

/// The real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct DiskStorage;

impl DiskStorage {
    /// A disk-backed storage.
    pub fn new() -> Self {
        DiskStorage
    }
}

impl Storage for DiskStorage {
    fn read(&self, path: &Path) -> io::Result<Option<Vec<u8>>> {
        match std::fs::read(path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn append(&mut self, path: &Path, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)?;
        f.write_all(data)
    }

    fn sync(&mut self, path: &Path) -> io::Result<()> {
        std::fs::OpenOptions::new()
            .read(true)
            .open(path)?
            .sync_all()
    }

    fn write(&mut self, path: &Path, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        std::fs::File::create(path)?.write_all(data)
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&mut self, path: &Path) -> io::Result<()> {
        match std::fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn create_dir_all(&mut self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let entries = match std::fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut paths = Vec::new();
        for entry in entries {
            paths.push(entry?.path());
        }
        paths.sort();
        Ok(paths)
    }
}

#[derive(Debug, Default, Clone)]
struct MemFile {
    /// Current visible contents.
    content: Vec<u8>,
    /// Byte count guaranteed to survive a crash (everything synced).
    durable: usize,
}

/// An in-memory [`Storage`] with fault injection and crash simulation.
///
/// Mutating operations (append/sync/write/rename/remove) are numbered from
/// zero; [`fail_op`](MemStorage::fail_op) makes exactly one of them return
/// an error without taking effect. [`crash`](MemStorage::crash) reverts
/// every file to its durable prefix — the bytes an fsync acknowledged —
/// which is how tests model power loss.
#[derive(Debug, Default, Clone)]
pub struct MemStorage {
    files: BTreeMap<PathBuf, MemFile>,
    ops: u64,
    fail_at: Option<u64>,
}

impl MemStorage {
    /// An empty in-memory filesystem.
    pub fn new() -> Self {
        MemStorage::default()
    }

    /// Makes the `n`-th mutating operation (0-based, counted from now on)
    /// fail with an error instead of taking effect.
    pub fn fail_op(&mut self, n: u64) {
        self.fail_at = Some(self.ops + n);
    }

    /// Cancels any scheduled fault.
    pub fn clear_faults(&mut self) {
        self.fail_at = None;
    }

    /// Mutating operations attempted so far (including the failed one).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Simulates a crash: every file reverts to its durable prefix.
    pub fn crash(&mut self) {
        for file in self.files.values_mut() {
            file.content.truncate(file.durable);
        }
    }

    /// Simulates a crash where up to `extra` unsynced bytes of each file
    /// happened to reach the medium — the torn-tail case a crash mid-append
    /// produces.
    pub fn crash_with_tail(&mut self, extra: usize) {
        for file in self.files.values_mut() {
            let keep = (file.durable + extra).min(file.content.len());
            file.content.truncate(keep);
            file.durable = file.durable.min(keep);
        }
    }

    /// The current contents of a file, if it exists (for assertions).
    pub fn contents(&self, path: &Path) -> Option<&[u8]> {
        self.files.get(path).map(|f| f.content.as_slice())
    }

    /// Creates a file with the given durable contents (test setup).
    pub fn install(&mut self, path: impl Into<PathBuf>, data: Vec<u8>) {
        let durable = data.len();
        self.files.insert(
            path.into(),
            MemFile {
                content: data,
                durable,
            },
        );
    }

    fn gate(&mut self) -> io::Result<()> {
        let op = self.ops;
        self.ops += 1;
        if self.fail_at == Some(op) {
            return Err(io::Error::other(format!("injected fault at op {op}")));
        }
        Ok(())
    }
}

impl Storage for MemStorage {
    fn read(&self, path: &Path) -> io::Result<Option<Vec<u8>>> {
        Ok(self.files.get(path).map(|f| f.content.clone()))
    }

    fn append(&mut self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.gate()?;
        self.files
            .entry(path.to_path_buf())
            .or_default()
            .content
            .extend_from_slice(data);
        Ok(())
    }

    fn sync(&mut self, path: &Path) -> io::Result<()> {
        self.gate()?;
        let file = self
            .files
            .get_mut(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "sync of missing file"))?;
        file.durable = file.content.len();
        Ok(())
    }

    fn write(&mut self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.gate()?;
        self.files.insert(
            path.to_path_buf(),
            MemFile {
                content: data.to_vec(),
                durable: 0,
            },
        );
        Ok(())
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        self.gate()?;
        let file = self
            .files
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "rename of missing file"))?;
        self.files.insert(to.to_path_buf(), file);
        Ok(())
    }

    fn remove(&mut self, path: &Path) -> io::Result<()> {
        self.gate()?;
        self.files.remove(path);
        Ok(())
    }

    fn create_dir_all(&mut self, _path: &Path) -> io::Result<()> {
        // The in-memory filesystem is flat, but directory creation is
        // still a mutating operation: gate it so fault sweeps cover it.
        self.gate()
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        // BTreeMap keys are already sorted.
        Ok(self
            .files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .cloned()
            .collect())
    }
}

/// A [`Storage`] shared between several owners — the campaign registry
/// and every per-campaign journal of a service engine see one filesystem.
///
/// [`DiskStorage`] is trivially shareable (the real filesystem *is* the
/// shared state), but [`MemStorage`] is a value: without this wrapper
/// each journal would get its own private in-memory filesystem and a
/// fault injected into one could never be scheduled against the ops of
/// another. Cloning shares the underlying storage; [`with`] grants
/// direct access for fault scheduling and crash simulation.
///
/// [`with`]: SharedStorage::with
#[derive(Debug, Default)]
pub struct SharedStorage<S> {
    inner: std::sync::Arc<std::sync::Mutex<S>>,
}

impl<S> Clone for SharedStorage<S> {
    fn clone(&self) -> Self {
        SharedStorage {
            inner: std::sync::Arc::clone(&self.inner),
        }
    }
}

impl<S> SharedStorage<S> {
    /// Wraps a storage for sharing.
    pub fn new(inner: S) -> Self {
        SharedStorage {
            inner: std::sync::Arc::new(std::sync::Mutex::new(inner)),
        }
    }

    /// Runs `f` with exclusive access to the underlying storage (for
    /// fault scheduling, crash simulation, and assertions).
    pub fn with<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut inner)
    }
}

impl<S: Storage> Storage for SharedStorage<S> {
    fn read(&self, path: &Path) -> io::Result<Option<Vec<u8>>> {
        self.with(|s| s.read(path))
    }

    fn append(&mut self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.with(|s| s.append(path, data))
    }

    fn sync(&mut self, path: &Path) -> io::Result<()> {
        self.with(|s| s.sync(path))
    }

    fn write(&mut self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.with(|s| s.write(path, data))
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        self.with(|s| s.rename(from, to))
    }

    fn remove(&mut self, path: &Path) -> io::Result<()> {
        self.with(|s| s.remove(path))
    }

    fn create_dir_all(&mut self, path: &Path) -> io::Result<()> {
        self.with(|s| s.create_dir_all(path))
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.with(|s| s.list(dir))
    }
}

/// A mid-search engine checkpoint as stored on disk: the campaign it
/// belongs to and the engine state as a nested JSON document. Keeping the
/// state opaque here keeps the journal independent of the genome type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredCheckpoint {
    /// The campaign the interrupted search belongs to.
    pub campaign: String,
    /// The serialized [`EngineState`](crate::engine::EngineState).
    pub state: String,
}

/// A supervision incident as stored on disk, tagged with its campaign so
/// several campaigns can share one journal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredIncident {
    /// The campaign whose supervisor made the decision.
    pub campaign: String,
    /// The decision itself (sequence-numbered within the campaign).
    pub incident: Incident,
}

/// The snapshot file format: the full database next to the latest engine
/// checkpoint (absent once a search finishes).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// All compacted virus records.
    pub db: VirusDatabase,
    /// The in-flight search, if one was interrupted.
    #[serde(default)]
    pub checkpoint: Option<StoredCheckpoint>,
    /// Every acked supervision incident (absent in pre-supervision
    /// snapshots).
    #[serde(default)]
    pub incidents: Vec<StoredIncident>,
}

impl Snapshot {
    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Propagates parse failures.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// One journal line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum JournalEntry {
    /// An evaluated virus.
    Record(VirusRecord),
    /// A per-generation engine checkpoint (the latest one wins).
    Checkpoint(StoredCheckpoint),
    /// A supervision decision (retry / quarantine / worker loss).
    Incident(StoredIncident),
}

/// A crash-safe virus database: a [`VirusDatabase`] whose every mutation is
/// write-ahead journaled through a [`Storage`], plus the engine checkpoint
/// that lets an interrupted search continue bit-identically.
///
/// # Examples
///
/// ```
/// use dstress_ga::journal::{CampaignJournal, MemStorage};
/// use dstress_ga::VirusRecord;
///
/// let mut journal = CampaignJournal::open(MemStorage::new(), "viruses.json").unwrap();
/// journal
///     .append_record(VirusRecord {
///         campaign: "word64-ce".into(),
///         genes: vec![0x3333_3333_3333_3333],
///         gene_len: 64,
///         fitness: 812.0,
///         ce: 8120,
///         ue: 0,
///         sequence: 0,
///     })
///     .unwrap();
/// // A crash that loses every unsynced byte keeps the acked record.
/// let mut storage = journal.into_storage();
/// storage.crash();
/// let recovered = CampaignJournal::open(storage, "viruses.json").unwrap();
/// assert_eq!(recovered.db().records().len(), 1);
/// ```
#[derive(Debug)]
pub struct CampaignJournal<S: Storage> {
    storage: S,
    snapshot_path: PathBuf,
    journal_path: PathBuf,
    tmp_path: PathBuf,
    db: VirusDatabase,
    checkpoint: Option<StoredCheckpoint>,
    incidents: Vec<StoredIncident>,
    /// `(campaign, sequence)` pairs already present, for idempotent replay.
    seen: HashSet<(String, u64)>,
    /// `(campaign, incident seq)` pairs already present.
    seen_incidents: HashSet<(String, u64)>,
}

impl<S: Storage> CampaignJournal<S> {
    /// Opens (or creates) the database at `path`, recovering any state the
    /// journal holds. Accepts a legacy bare-[`VirusDatabase`] snapshot. A
    /// torn journal tail — the longest-valid-prefix rule — triggers an
    /// immediate compaction so later appends land on a clean journal.
    ///
    /// # Errors
    ///
    /// Propagates storage failures; a present but unparseable snapshot is
    /// [`io::ErrorKind::InvalidData`].
    pub fn open(storage: S, path: impl Into<PathBuf>) -> io::Result<Self> {
        let snapshot_path = path.into();
        let journal_path = sibling(&snapshot_path, ".journal");
        let tmp_path = sibling(&snapshot_path, ".tmp");
        let (mut db, mut checkpoint, mut incidents) = match storage.read(&snapshot_path)? {
            None => (VirusDatabase::new(), None, Vec::new()),
            Some(bytes) => {
                let json = String::from_utf8(bytes).map_err(invalid_data)?;
                if let Ok(db) = VirusDatabase::from_json(&json) {
                    (db, None, Vec::new())
                } else {
                    let snap = Snapshot::from_json(&json).map_err(invalid_data)?;
                    (snap.db, snap.checkpoint, snap.incidents)
                }
            }
        };
        let mut seen: HashSet<(String, u64)> = db
            .records()
            .iter()
            .map(|r| (r.campaign.clone(), r.sequence))
            .collect();
        let mut seen_incidents: HashSet<(String, u64)> = incidents
            .iter()
            .map(|i| (i.campaign.clone(), i.incident.seq))
            .collect();
        let mut torn = false;
        let mut replayed = false;
        if let Some(bytes) = storage.read(&journal_path)? {
            replayed = !bytes.is_empty();
            let mut rest = bytes.as_slice();
            loop {
                let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
                    // No terminator: an append was cut short.
                    torn = torn || !rest.is_empty();
                    break;
                };
                let line = &rest[..nl];
                rest = &rest[nl + 1..];
                let Ok(text) = std::str::from_utf8(line) else {
                    torn = true;
                    break;
                };
                let Ok(entry) = serde_json::from_str::<JournalEntry>(text) else {
                    // Invalid line: everything after it is untrusted.
                    torn = true;
                    break;
                };
                match entry {
                    JournalEntry::Record(r) => {
                        if seen.insert((r.campaign.clone(), r.sequence)) {
                            db.record(r);
                        }
                    }
                    JournalEntry::Checkpoint(c) => checkpoint = Some(c),
                    JournalEntry::Incident(i) => {
                        if seen_incidents.insert((i.campaign.clone(), i.incident.seq)) {
                            incidents.push(i);
                        }
                    }
                }
            }
        }
        let mut journal = CampaignJournal {
            storage,
            snapshot_path,
            journal_path,
            tmp_path,
            db,
            checkpoint,
            incidents,
            seen,
            seen_incidents,
        };
        if torn {
            // The recovered prefix becomes the snapshot and the torn
            // journal is dropped, so the next append starts a fresh file.
            journal.compact()?;
        } else if replayed {
            // A valid journal tail may contain entries whose fsync never
            // ran (the crash hit between append and sync). Recovery exposed
            // them, so they must now be durable — otherwise a second crash
            // would make two recoveries disagree about the database.
            journal.storage.sync(&journal.journal_path)?;
        }
        Ok(journal)
    }

    /// The recovered database.
    pub fn db(&self) -> &VirusDatabase {
        &self.db
    }

    /// The latest engine checkpoint, if a search is in flight.
    pub fn checkpoint(&self) -> Option<&StoredCheckpoint> {
        self.checkpoint.as_ref()
    }

    /// Every acked supervision incident, in ack order.
    pub fn incidents(&self) -> &[StoredIncident] {
        &self.incidents
    }

    /// The acked incidents of one campaign, in ack order.
    pub fn campaign_incidents<'a>(
        &'a self,
        campaign: &'a str,
    ) -> impl Iterator<Item = &'a Incident> {
        self.incidents
            .iter()
            .filter(move |i| i.campaign == campaign)
            .map(|i| &i.incident)
    }

    /// The snapshot path this journal persists to.
    pub fn path(&self) -> &Path {
        &self.snapshot_path
    }

    /// Fault-injection access to the underlying storage.
    pub fn storage_mut(&mut self) -> &mut S {
        &mut self.storage
    }

    /// Consumes the journal, returning the storage (for crash simulation).
    pub fn into_storage(self) -> S {
        self.storage
    }

    /// Journals one evaluated virus: assigns its campaign sequence number,
    /// appends the line, and fsyncs. The record is **acknowledged** — it
    /// survives any later crash — exactly when this returns `Ok`; on error
    /// the record may or may not survive and the caller must treat the
    /// campaign as failed.
    ///
    /// # Errors
    ///
    /// Propagates storage and serialization failures.
    pub fn append_record(&mut self, record: VirusRecord) -> io::Result<u64> {
        self.db.record(record);
        let stored = self
            .db
            .records()
            .last()
            .expect("record was just appended")
            .clone();
        let sequence = stored.sequence;
        self.seen.insert((stored.campaign.clone(), sequence));
        self.append_entry(&JournalEntry::Record(stored))?;
        Ok(sequence)
    }

    /// Journals a supervision incident (append + fsync): the supervisor's
    /// retry/quarantine/worker-loss decision is **acknowledged** — a resume
    /// replays it instead of re-deciding — exactly when this returns `Ok`.
    /// Re-acking an already-journaled `(campaign, seq)` is a no-op, which
    /// makes the resume window's replayed decisions idempotent.
    ///
    /// # Errors
    ///
    /// Propagates storage and serialization failures.
    pub fn append_incident(&mut self, campaign: &str, incident: Incident) -> io::Result<()> {
        if !self
            .seen_incidents
            .insert((campaign.to_string(), incident.seq))
        {
            return Ok(());
        }
        let stored = StoredIncident {
            campaign: campaign.to_string(),
            incident,
        };
        self.append_entry(&JournalEntry::Incident(stored.clone()))?;
        self.incidents.push(stored);
        Ok(())
    }

    /// Journals a per-generation engine checkpoint (append + fsync). The
    /// latest checkpoint wins on recovery.
    ///
    /// # Errors
    ///
    /// Propagates storage and serialization failures.
    pub fn append_checkpoint(&mut self, campaign: &str, state: String) -> io::Result<()> {
        let checkpoint = StoredCheckpoint {
            campaign: campaign.to_string(),
            state,
        };
        self.append_entry(&JournalEntry::Checkpoint(checkpoint.clone()))?;
        self.checkpoint = Some(checkpoint);
        Ok(())
    }

    fn append_entry(&mut self, entry: &JournalEntry) -> io::Result<()> {
        let mut line = serde_json::to_string(entry).map_err(io::Error::other)?;
        line.push('\n');
        self.storage.append(&self.journal_path, line.as_bytes())?;
        self.storage.sync(&self.journal_path)
    }

    /// Compacts the journal into an atomic snapshot: full state to
    /// `<db>.tmp`, fsync, rename over `<db>`, then drop the journal. Every
    /// crash point leaves a recoverable combination (the replay skips
    /// records the snapshot already holds).
    ///
    /// # Errors
    ///
    /// Propagates storage and serialization failures.
    pub fn compact(&mut self) -> io::Result<()> {
        let snapshot = Snapshot {
            db: self.db.clone(),
            checkpoint: self.checkpoint.clone(),
            incidents: self.incidents.clone(),
        };
        let json = snapshot.to_json().map_err(io::Error::other)?;
        self.storage.write(&self.tmp_path, json.as_bytes())?;
        self.storage.sync(&self.tmp_path)?;
        self.storage.rename(&self.tmp_path, &self.snapshot_path)?;
        self.storage.remove(&self.journal_path)
    }

    /// Marks the in-flight search finished: clears the checkpoint and
    /// compacts, leaving a clean snapshot.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn finish(&mut self) -> io::Result<()> {
        self.checkpoint = None;
        self.compact()
    }
}

fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(suffix);
    PathBuf::from(s)
}

fn invalid_data<E: std::fmt::Display>(e: E) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

/// Drives a journaled GA search to completion (or a step budget),
/// journaling every newly evaluated virus, every supervision incident, and
/// a checkpoint per generation.
///
/// If `journal` holds a checkpoint for `campaign`, the search **resumes**
/// from it and continues bit-identically to an uninterrupted run (`config`
/// and `seed` are then ignored — the checkpoint pins them; `supervision`
/// is re-applied and must match the interrupted run's policy). Otherwise a
/// fresh search starts from `seed`. Records are journaled *before* the
/// checkpoint whose evaluation cache contains them, so a crash in between
/// re-evaluates (purity makes the values identical) and the sequence-level
/// dedup below drops the repeats — no crash point loses or duplicates an
/// acknowledged record. Incidents replayed in the resume window carry the
/// same sequence numbers (the supervisor is deterministic), so their
/// re-acks dedup the same way.
///
/// Returns `Ok(None)` when `max_steps` ran out before the search finished
/// (the checkpoint is journaled, ready to resume); `Ok(Some(result))` when
/// the search completed, after compacting the journal into a snapshot with
/// the checkpoint cleared.
///
/// Evaluation runs on a persistent [`crate::pool::EvalPool`] whose worker
/// replicas stay warm across generations; their bookkeeping is absorbed
/// back into `fitness` on **every** exit — including the step-budget pause
/// — so counters like the word64 evaluator's compile statistics stay exact
/// across resume windows instead of reflecting only the primary replica.
///
/// # Errors
///
/// Propagates storage failures and checkpoint decode failures.
#[allow(clippy::too_many_arguments)] // the knobs mirror a campaign definition
pub fn run_journaled<G, F, S>(
    journal: &mut CampaignJournal<S>,
    campaign: &str,
    config: GaConfig,
    seed: u64,
    init: impl FnMut(&mut StdRng) -> G,
    fitness: &mut F,
    workers: usize,
    make_record: impl Fn(&G, f64) -> VirusRecord,
    max_steps: Option<u32>,
    supervision: SupervisionPolicy,
    hazards: Option<HazardPlan>,
) -> io::Result<Option<SearchResult<G>>>
where
    G: Genome + PartialEq + Eq + Hash + Sync + Serialize + Deserialize + 'static,
    F: ParallelFitness<G> + 'static,
    S: Storage,
{
    assert!(workers >= 1, "at least one evaluation worker is required");
    let mut session = match journal.checkpoint() {
        Some(cp) if cp.campaign == campaign => {
            let state = EngineState::<G>::from_json(&cp.state).map_err(invalid_data)?;
            SearchSession::resume(state)
        }
        _ => SearchSession::start(config, seed, init),
    };
    session.set_supervision(supervision);
    session.set_hazards(hazards);
    let pool = crate::pool::EvalPool::new(&*fitness, workers);
    let absorb_pool = |fitness: &mut F, pool: crate::pool::EvalPool<G, F>| {
        for replica in pool.shutdown() {
            fitness.absorb(replica);
        }
    };
    // Chromosomes this campaign has already journaled: a resume re-executes
    // the window after its checkpoint, and the repeats must not re-append.
    let mut recorded: HashSet<Vec<u64>> = journal
        .db()
        .campaign(campaign)
        .map(|r| r.genes.clone())
        .collect();
    let mut steps = 0u32;
    loop {
        for (genome, value) in session.take_newly_evaluated() {
            let record = make_record(&genome, value);
            if recorded.insert(record.genes.clone()) {
                journal.append_record(record)?;
            }
        }
        for incident in session.take_new_incidents() {
            // `(campaign, seq)` dedup inside the journal absorbs the
            // resume window's replayed decisions.
            journal.append_incident(campaign, incident)?;
        }
        if session.done() {
            break;
        }
        let state = session.checkpoint().to_json().map_err(io::Error::other)?;
        journal.append_checkpoint(campaign, state)?;
        if max_steps.is_some_and(|limit| steps >= limit) {
            absorb_pool(fitness, pool);
            return Ok(None);
        }
        session.step_pooled(&pool);
        steps += 1;
    }
    absorb_pool(fitness, pool);
    journal.finish()?;
    Ok(Some(session.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::Fitness;
    use crate::genome::BitGenome;

    fn record(campaign: &str, fitness: f64, genes: Vec<u64>) -> VirusRecord {
        VirusRecord {
            campaign: campaign.into(),
            genes,
            gene_len: 64,
            fitness,
            ce: fitness as u64,
            ue: 0,
            sequence: 0,
        }
    }

    /// A pure, replicable popcount fitness for driving journaled searches.
    struct Popcount;

    impl Fitness<BitGenome> for Popcount {
        fn evaluate(&mut self, genome: &BitGenome) -> f64 {
            genome.count_ones() as f64
        }
    }

    impl ParallelFitness<BitGenome> for Popcount {
        fn replicate(&self) -> Self {
            Popcount
        }
    }

    fn small_config() -> GaConfig {
        let mut config = GaConfig::paper_defaults();
        config.population_size = 10;
        config.max_generations = 8;
        config.stagnation_window = 3;
        config
    }

    #[test]
    fn acked_records_survive_a_crash_with_a_torn_tail() {
        let mut journal = CampaignJournal::open(MemStorage::new(), "db.json").unwrap();
        for i in 0..3 {
            journal
                .append_record(record("c", i as f64, vec![i]))
                .unwrap();
        }
        // A fourth append reaches the file but its fsync never happens;
        // the crash leaves a few of its bytes behind — a torn tail.
        let path = PathBuf::from("db.json.journal");
        let mut storage = journal.into_storage();
        storage
            .append(&path, br#"{"Record":{"campaign":"c","genes":[99"#)
            .unwrap();
        storage.crash_with_tail(7);
        let recovered = CampaignJournal::open(storage, "db.json").unwrap();
        let genes: Vec<u64> = recovered.db().campaign("c").map(|r| r.genes[0]).collect();
        assert_eq!(genes, vec![0, 1, 2], "acked prefix must survive verbatim");
        // The torn journal was compacted away: appends start a clean file.
        assert!(recovered
            .into_storage()
            .contents(&path)
            .is_none_or(|c| c.is_empty()));
    }

    #[test]
    fn compact_roundtrips_records_and_checkpoint() {
        let mut journal = CampaignJournal::open(MemStorage::new(), "db.json").unwrap();
        journal.append_record(record("c", 5.0, vec![5])).unwrap();
        journal
            .append_checkpoint("c", "{\"fake\":1}".into())
            .unwrap();
        journal.compact().unwrap();
        let db_before = journal.db().clone();
        let mut storage = journal.into_storage();
        storage.crash();
        let reopened = CampaignJournal::open(storage, "db.json").unwrap();
        assert_eq!(*reopened.db(), db_before);
        assert_eq!(reopened.checkpoint().unwrap().campaign, "c");
        assert_eq!(reopened.checkpoint().unwrap().state, "{\"fake\":1}");
    }

    #[test]
    fn crash_between_snapshot_rename_and_journal_remove_does_not_duplicate() {
        let mut journal = CampaignJournal::open(MemStorage::new(), "db.json").unwrap();
        journal.append_record(record("c", 1.0, vec![1])).unwrap();
        journal.append_record(record("c", 2.0, vec![2])).unwrap();
        // compact = write tmp, sync tmp, rename, remove journal: fail the
        // remove, so both the new snapshot and the old journal survive.
        journal.storage_mut().fail_op(3);
        assert!(journal.compact().is_err());
        let mut storage = journal.into_storage();
        storage.clear_faults();
        storage.crash();
        let reopened = CampaignJournal::open(storage, "db.json").unwrap();
        let seqs: Vec<u64> = reopened.db().campaign("c").map(|r| r.sequence).collect();
        assert_eq!(seqs, vec![0, 1], "replay over the snapshot must dedup");
    }

    #[test]
    fn failed_append_or_sync_is_not_acked_and_loses_nothing_acked() {
        for fail in 0..2u64 {
            let mut journal = CampaignJournal::open(MemStorage::new(), "db.json").unwrap();
            journal.append_record(record("c", 1.0, vec![1])).unwrap();
            // append = op0, sync = op1 of the next record.
            journal.storage_mut().fail_op(fail);
            assert!(journal.append_record(record("c", 2.0, vec![2])).is_err());
            let mut storage = journal.into_storage();
            storage.clear_faults();
            storage.crash();
            let reopened = CampaignJournal::open(storage, "db.json").unwrap();
            let genes: Vec<u64> = reopened.db().campaign("c").map(|r| r.genes[0]).collect();
            assert_eq!(genes, vec![1], "fail at op {fail}");
        }
    }

    #[test]
    fn opens_legacy_bare_database_snapshots() {
        let mut db = VirusDatabase::new();
        db.record(record("legacy", 3.0, vec![3]));
        let mut storage = MemStorage::new();
        storage.install("db.json", db.to_json().unwrap().into_bytes());
        let journal = CampaignJournal::open(storage, "db.json").unwrap();
        assert_eq!(*journal.db(), db);
        assert!(journal.checkpoint().is_none());
    }

    #[test]
    fn unparseable_snapshot_is_invalid_data() {
        let mut storage = MemStorage::new();
        storage.install("db.json", b"not json".to_vec());
        let err = CampaignJournal::open(storage, "db.json").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    use crate::supervise::{Hazard, HazardPlan, IncidentKind};

    fn incident(seq: u64, eval_index: u64) -> Incident {
        Incident {
            seq,
            eval_index,
            kind: IncidentKind::WorkerLoss,
        }
    }

    #[test]
    fn acked_incidents_survive_a_crash() {
        let mut journal = CampaignJournal::open(MemStorage::new(), "db.json").unwrap();
        journal.append_record(record("c", 1.0, vec![1])).unwrap();
        journal.append_incident("c", incident(0, 4)).unwrap();
        journal.append_incident("c", incident(1, 9)).unwrap();
        let mut storage = journal.into_storage();
        storage.crash();
        let recovered = CampaignJournal::open(storage, "db.json").unwrap();
        let replayed: Vec<&Incident> = recovered.campaign_incidents("c").collect();
        assert_eq!(replayed, vec![&incident(0, 4), &incident(1, 9)]);
        assert_eq!(recovered.db().campaign("c").count(), 1);
    }

    #[test]
    fn incident_appends_dedup_on_sequence_number() {
        // A resumed session replays supervision decisions it already made;
        // re-acking the same (campaign, seq) must be a no-op, including on
        // a journal that replayed duplicated entries after a crash.
        let mut journal = CampaignJournal::open(MemStorage::new(), "db.json").unwrap();
        journal.append_incident("c", incident(0, 4)).unwrap();
        journal.append_incident("c", incident(0, 4)).unwrap();
        assert_eq!(journal.incidents().len(), 1);
        // Distinct campaigns keep their own numbering.
        journal.append_incident("other", incident(0, 2)).unwrap();
        assert_eq!(journal.incidents().len(), 2);
        assert_eq!(journal.campaign_incidents("c").count(), 1);
    }

    #[test]
    fn compact_roundtrips_incidents() {
        let mut journal = CampaignJournal::open(MemStorage::new(), "db.json").unwrap();
        journal.append_record(record("c", 1.0, vec![1])).unwrap();
        journal.append_incident("c", incident(0, 7)).unwrap();
        journal.compact().unwrap();
        let mut storage = journal.into_storage();
        storage.crash();
        let reopened = CampaignJournal::open(storage, "db.json").unwrap();
        assert_eq!(
            reopened.campaign_incidents("c").collect::<Vec<_>>(),
            vec![&incident(0, 7)]
        );
        // The incident came back from the snapshot, so re-acking it after
        // compaction still dedups.
        let mut reopened = reopened;
        reopened.append_incident("c", incident(0, 7)).unwrap();
        assert_eq!(reopened.incidents().len(), 1);
    }

    #[test]
    fn journaled_search_under_hazards_replays_incidents_after_a_crash() {
        let config = small_config();
        let init = |rng: &mut StdRng| BitGenome::random(rng, 24);
        let make = |g: &BitGenome, v: f64| record("pop", v, g.to_words());
        let make_plan = || {
            let plan = HazardPlan::new();
            plan.schedule(2, Hazard::Panic);
            plan.schedule(5, Hazard::Transient);
            plan.schedule(8, Hazard::KillWorker);
            plan.schedule(13, Hazard::BudgetBlowout);
            plan
        };
        let run = |journal: &mut CampaignJournal<MemStorage>, max_steps: Option<u32>| {
            run_journaled(
                journal,
                "pop",
                config,
                7,
                init,
                &mut Popcount,
                2,
                make,
                max_steps,
                SupervisionPolicy::default(),
                Some(make_plan()),
            )
            .unwrap()
        };
        let mut clean = CampaignJournal::open(MemStorage::new(), "db.json").unwrap();
        let reference = run(&mut clean, None).expect("search must finish");
        assert!(reference.quarantined() >= 2);
        let clean_incidents: Vec<&Incident> = clean.campaign_incidents("pop").collect();
        assert_eq!(clean_incidents.len(), reference.incidents.len());
        // Crash after two generations, reopen, resume with a fresh copy of
        // the same plan: pre-crash hazards are served from the cache (they
        // never re-fire), post-crash hazards fire exactly once, and the
        // journaled incident stream matches the uninterrupted run.
        let mut journal = CampaignJournal::open(MemStorage::new(), "db.json").unwrap();
        assert!(run(&mut journal, Some(2)).is_none());
        let mut storage = journal.into_storage();
        storage.crash();
        let mut journal = CampaignJournal::open(storage, "db.json").unwrap();
        let resumed = run(&mut journal, None).expect("resumed search must finish");
        assert_eq!(resumed.best, reference.best);
        assert_eq!(resumed.incidents, reference.incidents);
        assert_eq!(
            journal.campaign_incidents("pop").collect::<Vec<_>>(),
            clean_incidents,
            "the journaled incident stream is bit-identical"
        );
        assert_eq!(*journal.db(), *clean.db());
    }

    #[test]
    fn journaled_search_resumes_bit_identically_after_budget_interruption() {
        let config = small_config();
        let init = |rng: &mut StdRng| BitGenome::random(rng, 24);
        let make = |g: &BitGenome, v: f64| record("pop", v, g.to_words());
        let run = |journal: &mut CampaignJournal<MemStorage>, max_steps: Option<u32>| {
            run_journaled(
                journal,
                "pop",
                config,
                7,
                init,
                &mut Popcount,
                2,
                make,
                max_steps,
                SupervisionPolicy::default(),
                None,
            )
            .unwrap()
        };
        // Uninterrupted reference run.
        let mut clean = CampaignJournal::open(MemStorage::new(), "db.json").unwrap();
        let reference = run(&mut clean, None).expect("search must finish");
        // Interrupted run: stop after 3 steps, reopen from crashed storage,
        // resume to completion.
        let mut journal = CampaignJournal::open(MemStorage::new(), "db.json").unwrap();
        assert!(
            run(&mut journal, Some(3)).is_none(),
            "budget must interrupt"
        );
        let mut storage = journal.into_storage();
        storage.crash();
        let mut journal = CampaignJournal::open(storage, "db.json").unwrap();
        assert!(
            journal.checkpoint().is_some(),
            "checkpoint must be recovered"
        );
        let resumed = run(&mut journal, None).expect("resumed search must finish");
        assert_eq!(resumed.best, reference.best);
        assert_eq!(resumed.best_fitness, reference.best_fitness);
        assert_eq!(resumed.leaderboard, reference.leaderboard);
        assert_eq!(resumed.generations, reference.generations);
        assert_eq!(resumed.converged, reference.converged);
        assert_eq!(resumed.history, reference.history);
        // The record stream is identical too, and the checkpoint is gone.
        assert_eq!(*journal.db(), *clean.db());
        assert!(journal.checkpoint().is_none());
    }
}
