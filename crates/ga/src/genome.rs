//! Chromosome encodings.
//!
//! [`BitGenome`] is bit-packed: the paper's 24 KB and 512 KB data-pattern
//! chromosomes run to hundreds of thousands of bits, and the convergence
//! criterion computes ~800 pairwise similarities per generation, so
//! similarity and crossover work on whole 64-bit words (XOR + popcount)
//! and mutation draws the number of flipped genes from the binomial instead
//! of rolling every gene.

use dstress_stats::weighted_jaccard;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A chromosome: something the GA can mutate, recombine and compare.
///
/// The two implementations mirror the paper's two encodings: binary vectors
/// (data patterns, row bitmaps — compared with Sokal–Michener, Eq. 2) and
/// bounded integer vectors (access-stride coefficients — compared with
/// weighted Jaccard, Eq. 3).
pub trait Genome: Clone + Send {
    /// Stochastically perturbs the chromosome. `gene_rate` is the per-gene
    /// perturbation probability.
    fn mutate(&mut self, rng: &mut StdRng, gene_rate: f64);

    /// Single-point crossover, producing two offspring.
    fn crossover(&self, other: &Self, rng: &mut StdRng) -> (Self, Self);

    /// Similarity in `[0, 1]` (1 = identical) — the convergence measure.
    fn similarity(&self, other: &Self) -> f64;

    /// Number of genes.
    fn len(&self) -> usize;

    /// Whether the chromosome has no genes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A binary chromosome, bit-packed LSB-first into 64-bit words.
///
/// # Examples
///
/// ```
/// use dstress_ga::BitGenome;
///
/// let g = BitGenome::from_words(&[0x3333_3333_3333_3333], 64);
/// assert_eq!(g.count_ones(), 32);
/// assert_eq!(g.to_words()[0], 0x3333_3333_3333_3333);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitGenome {
    words: Vec<u64>,
    len: usize,
}

impl BitGenome {
    /// A uniformly random chromosome of `len` bits.
    pub fn random(rng: &mut StdRng, len: usize) -> Self {
        let mut words: Vec<u64> = (0..len.div_ceil(64)).map(|_| rng.gen()).collect();
        mask_tail(&mut words, len);
        BitGenome { words, len }
    }

    /// All-zero chromosome.
    pub fn zeros(len: usize) -> Self {
        BitGenome {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Builds from packed 64-bit words (LSB-first within each word),
    /// truncated to `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `words` holds fewer than `len` bits.
    pub fn from_words(words: &[u64], len: usize) -> Self {
        assert!(words.len() * 64 >= len, "not enough words for {len} bits");
        let mut words = words[..len.div_ceil(64)].to_vec();
        mask_tail(&mut words, len);
        BitGenome { words, len }
    }

    /// Builds a chromosome by repeating a 64-bit word.
    pub fn repeat_word(word: u64, len: usize) -> Self {
        let mut words = vec![word; len.div_ceil(64)];
        mask_tail(&mut words, len);
        BitGenome { words, len }
    }

    /// Packs into 64-bit words (LSB-first; the tail is zero-padded).
    pub fn to_words(&self) -> Vec<u64> {
        self.words.clone()
    }

    /// The value of bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range");
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets the value of bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range");
        if value {
            self.words[i / 64] |= 1 << (i % 64);
        } else {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// The bits expanded to a `Vec<bool>` (bit 0 first).
    pub fn bits(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.bit(i)).collect()
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Hamming distance to another chromosome of the same length.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hamming(&self, other: &Self) -> usize {
        assert_eq!(self.len, other.len, "hamming requires equal lengths");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Renders the chromosome as a `0`/`1` string, bit 0 first — the
    /// orientation of the paper's Fig. 8 x-axis.
    pub fn render(&self) -> String {
        (0..self.len)
            .map(|i| if self.bit(i) { '1' } else { '0' })
            .collect()
    }
}

/// Clears bits beyond `len` in the last word.
fn mask_tail(words: &mut [u64], len: usize) {
    let tail = len % 64;
    if tail != 0 {
        if let Some(last) = words.last_mut() {
            *last &= (1u64 << tail) - 1;
        }
    }
}

/// Draws `Binomial(n, p)` — the number of mutated genes — cheaply: exact
/// Bernoulli summation for small `n`, Poisson/normal approximations beyond.
fn binomial_draw(rng: &mut StdRng, n: usize, p: f64) -> usize {
    if p <= 0.0 || n == 0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if n <= 64 {
        return (0..n).filter(|_| rng.gen::<f64>() < p).count();
    }
    let lambda = n as f64 * p;
    if lambda < 30.0 {
        // Knuth's Poisson sampler.
        let l = (-lambda).exp();
        let mut k = 0usize;
        let mut prod = 1.0;
        loop {
            prod *= rng.gen::<f64>();
            if prod <= l || k > n {
                break;
            }
            k += 1;
        }
        k.min(n)
    } else {
        // Normal approximation with continuity correction.
        let sigma = (lambda * (1.0 - p)).sqrt();
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        ((lambda + sigma * z).round().max(0.0) as usize).min(n)
    }
}

impl Genome for BitGenome {
    fn mutate(&mut self, rng: &mut StdRng, gene_rate: f64) {
        let flips = binomial_draw(rng, self.len, gene_rate);
        if flips == 0 {
            return;
        }
        let mut chosen = HashSet::with_capacity(flips);
        while chosen.len() < flips {
            chosen.insert(rng.gen_range(0..self.len));
        }
        for i in chosen {
            self.words[i / 64] ^= 1 << (i % 64);
        }
    }

    fn crossover(&self, other: &Self, rng: &mut StdRng) -> (Self, Self) {
        assert_eq!(self.len, other.len, "crossover needs equal lengths");
        if self.len < 2 {
            return (self.clone(), other.clone());
        }
        let point = rng.gen_range(1..self.len);
        let mut a = self.clone();
        let mut b = other.clone();
        // Words wholly after the point swap; the boundary word splits.
        let boundary = point / 64;
        let within = point % 64;
        for w in (boundary + 1)..self.words.len() {
            a.words[w] = other.words[w];
            b.words[w] = self.words[w];
        }
        if within != 0 {
            let low_mask = (1u64 << within) - 1;
            a.words[boundary] =
                (self.words[boundary] & low_mask) | (other.words[boundary] & !low_mask);
            b.words[boundary] =
                (other.words[boundary] & low_mask) | (self.words[boundary] & !low_mask);
        } else {
            a.words[boundary] = other.words[boundary];
            b.words[boundary] = self.words[boundary];
        }
        (a, b)
    }

    fn similarity(&self, other: &Self) -> f64 {
        if self.len == 0 {
            return 1.0;
        }
        let hamming = self.hamming(other);
        (self.len - hamming) as f64 / self.len as f64
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// A bounded integer-vector chromosome (each gene in `[lo, hi]` inclusive).
///
/// # Examples
///
/// ```
/// use dstress_ga::IntGenome;
///
/// let g = IntGenome::new(vec![3, 7], 0, 20).unwrap();
/// assert_eq!(g.values(), &[3, 7]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IntGenome {
    values: Vec<u64>,
    lo: u64,
    hi: u64,
}

impl IntGenome {
    /// Builds a chromosome, validating the genes against the domain.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message when `lo > hi` or a gene lies outside
    /// the domain.
    pub fn new(values: Vec<u64>, lo: u64, hi: u64) -> Result<Self, String> {
        if lo > hi {
            return Err(format!("empty domain [{lo}, {hi}]"));
        }
        if let Some(v) = values.iter().find(|v| **v < lo || **v > hi) {
            return Err(format!("gene {v} outside [{lo}, {hi}]"));
        }
        Ok(IntGenome { values, lo, hi })
    }

    /// A uniformly random chromosome of `len` genes in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn random(rng: &mut StdRng, len: usize, lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "empty domain [{lo}, {hi}]");
        IntGenome {
            values: (0..len).map(|_| rng.gen_range(lo..=hi)).collect(),
            lo,
            hi,
        }
    }

    /// The gene values.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// The inclusive gene domain.
    pub fn bounds(&self) -> (u64, u64) {
        (self.lo, self.hi)
    }
}

impl Genome for IntGenome {
    fn mutate(&mut self, rng: &mut StdRng, gene_rate: f64) {
        for v in &mut self.values {
            if rng.gen::<f64>() < gene_rate {
                *v = rng.gen_range(self.lo..=self.hi);
            }
        }
    }

    fn crossover(&self, other: &Self, rng: &mut StdRng) -> (Self, Self) {
        assert_eq!(
            self.values.len(),
            other.values.len(),
            "crossover needs equal lengths"
        );
        if self.values.len() < 2 {
            return (self.clone(), other.clone());
        }
        let point = rng.gen_range(1..self.values.len());
        let mut a = self.clone();
        let mut b = other.clone();
        for i in point..self.values.len() {
            a.values[i] = other.values[i];
            b.values[i] = self.values[i];
        }
        (a, b)
    }

    fn similarity(&self, other: &Self) -> f64 {
        let xs: Vec<f64> = self.values.iter().map(|&v| v as f64).collect();
        let ys: Vec<f64> = other.values.iter().map(|&v| v as f64).collect();
        weighted_jaccard(&xs, &ys)
    }

    fn len(&self) -> usize {
        self.values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn bit_words_roundtrip() {
        let words = [0xDEAD_BEEF_0123_4567u64, 0x0000_0000_0000_ffff];
        let g = BitGenome::from_words(&words, 128);
        assert_eq!(g.to_words(), words.to_vec());
    }

    #[test]
    fn from_words_masks_the_tail() {
        let g = BitGenome::from_words(&[u64::MAX], 8);
        assert_eq!(g.to_words(), vec![0xFF]);
        assert_eq!(g.count_ones(), 8);
    }

    #[test]
    fn bit_render_is_lsb_first() {
        let g = BitGenome::from_words(&[0b0011], 8);
        assert_eq!(g.render(), "11000000");
    }

    #[test]
    fn paper_worst_pattern_renders_1100_repeating() {
        // 0x3333… prints as `1100 1100 …` bit-0-first — the paper's Fig. 8
        // worst-case sub-pattern.
        let g = BitGenome::from_words(&[0x3333_3333_3333_3333], 64);
        assert!(g.render().starts_with("110011001100"));
    }

    #[test]
    fn repeat_word_tiles() {
        let g = BitGenome::repeat_word(0x3333_3333_3333_3333, 128);
        assert_eq!(g.to_words(), vec![0x3333_3333_3333_3333; 2]);
    }

    #[test]
    fn bit_get_set() {
        let mut g = BitGenome::zeros(70);
        g.set_bit(69, true);
        assert!(g.bit(69));
        assert_eq!(g.count_ones(), 1);
        g.set_bit(69, false);
        assert_eq!(g.count_ones(), 0);
    }

    #[test]
    fn bit_mutation_rate_extremes() {
        let mut g = BitGenome::zeros(128);
        g.mutate(&mut rng(), 0.0);
        assert_eq!(g.count_ones(), 0);
        g.mutate(&mut rng(), 1.0);
        assert_eq!(g.count_ones(), 128);
    }

    #[test]
    fn bit_mutation_flips_roughly_rate_fraction() {
        let mut total = 0usize;
        let mut r = rng();
        for _ in 0..50 {
            let mut g = BitGenome::zeros(10_000);
            g.mutate(&mut r, 0.01);
            total += g.count_ones();
        }
        let avg = total as f64 / 50.0;
        assert!(
            (60.0..140.0).contains(&avg),
            "average flips {avg}, expected ~100"
        );
    }

    #[test]
    fn bit_crossover_preserves_genes() {
        let a = BitGenome::zeros(64);
        let mut ones = BitGenome::zeros(64);
        ones.mutate(&mut rng(), 1.0);
        let (c, d) = a.crossover(&ones, &mut rng());
        assert_eq!(c.count_ones() + d.count_ones(), 64);
        // Single-point: exactly one 0/1 boundary across the concatenation.
        let flips = (0..63).filter(|&i| c.bit(i) != c.bit(i + 1)).count();
        assert_eq!(flips, 1, "single-point crossover has one boundary");
    }

    #[test]
    fn bit_similarity_is_match_fraction() {
        let a = BitGenome::from_words(&[0b1100], 4);
        let b = BitGenome::from_words(&[0b1000], 4);
        assert!((a.similarity(&b) - 0.75).abs() < 1e-12);
        assert_eq!(a.similarity(&a), 1.0);
    }

    #[test]
    fn bit_similarity_matches_smf_reference() {
        // Packed similarity must agree with the OTU-based definition.
        let mut r = rng();
        for _ in 0..20 {
            let a = BitGenome::random(&mut r, 131);
            let b = BitGenome::random(&mut r, 131);
            let reference = dstress_stats::sokal_michener(&a.bits(), &b.bits());
            assert!((a.similarity(&b) - reference).abs() < 1e-12);
        }
    }

    #[test]
    fn hamming_distance() {
        let a = BitGenome::from_words(&[0b1010], 4);
        let b = BitGenome::from_words(&[0b0101], 4);
        assert_eq!(a.hamming(&b), 4);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    fn int_construction_validates() {
        assert!(IntGenome::new(vec![1, 2], 0, 20).is_ok());
        assert!(IntGenome::new(vec![21], 0, 20).is_err());
        assert!(IntGenome::new(vec![], 5, 2).is_err());
    }

    #[test]
    fn int_mutation_respects_bounds() {
        let mut g = IntGenome::random(&mut rng(), 32, 0, 20);
        for _ in 0..50 {
            g.mutate(&mut rng(), 1.0);
            assert!(g.values().iter().all(|&v| v <= 20));
        }
    }

    #[test]
    fn int_similarity_is_weighted_jaccard() {
        let a = IntGenome::new(vec![1, 2], 0, 20).unwrap();
        let b = IntGenome::new(vec![2, 2], 0, 20).unwrap();
        assert!((a.similarity(&b) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn random_genomes_differ() {
        let mut r = rng();
        let a = BitGenome::random(&mut r, 64);
        let b = BitGenome::random(&mut r, 64);
        assert_ne!(a, b);
    }

    #[test]
    fn binomial_draw_sane_in_all_regimes() {
        let mut r = rng();
        // Exact regime.
        let small: usize = (0..200).map(|_| binomial_draw(&mut r, 32, 0.5)).sum();
        assert!((2000..4500).contains(&small), "sum {small}, expected ~3200");
        // Poisson regime.
        let poisson: usize = (0..200).map(|_| binomial_draw(&mut r, 10_000, 0.001)).sum();
        assert!(
            (1300..2800).contains(&poisson),
            "sum {poisson}, expected ~2000"
        );
        // Normal regime.
        let normal: usize = (0..50).map(|_| binomial_draw(&mut r, 100_000, 0.01)).sum();
        assert!(
            (40_000..60_000).contains(&normal),
            "sum {normal}, expected ~50000"
        );
        // Edge cases.
        assert_eq!(binomial_draw(&mut r, 0, 0.5), 0);
        assert_eq!(binomial_draw(&mut r, 100, 0.0), 0);
        assert_eq!(binomial_draw(&mut r, 100, 1.0), 100);
    }

    proptest! {
        #[test]
        fn bit_crossover_children_are_blends(seed in any::<u64>()) {
            let mut r = StdRng::seed_from_u64(seed);
            let a = BitGenome::random(&mut r, 100);
            let b = BitGenome::random(&mut r, 100);
            let (c, d) = a.crossover(&b, &mut r);
            for i in 0..100 {
                let (ai, bi) = (a.bit(i), b.bit(i));
                prop_assert!(c.bit(i) == ai || c.bit(i) == bi);
                prop_assert!(d.bit(i) == ai || d.bit(i) == bi);
                prop_assert!((c.bit(i) == ai) == (d.bit(i) == bi));
            }
        }

        #[test]
        fn int_crossover_children_stay_in_domain(seed in any::<u64>()) {
            let mut r = StdRng::seed_from_u64(seed);
            let a = IntGenome::random(&mut r, 16, 0, 20);
            let b = IntGenome::random(&mut r, 16, 0, 20);
            let (c, d) = a.crossover(&b, &mut r);
            prop_assert!(c.values().iter().all(|&v| v <= 20));
            prop_assert!(d.values().iter().all(|&v| v <= 20));
        }

        #[test]
        fn packed_tail_never_leaks(len in 1usize..200, seed in any::<u64>()) {
            let mut r = StdRng::seed_from_u64(seed);
            let mut g = BitGenome::random(&mut r, len);
            g.mutate(&mut r, 0.3);
            prop_assert!(g.count_ones() <= len);
            let h = BitGenome::from_words(&g.to_words(), len);
            prop_assert_eq!(g, h);
        }
    }
}
