//! Genetic operators.

pub mod crossover;
pub mod selection;
