//! Parent-selection schemes.

use crate::supervise::nan_last_cmp;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// How parents are drawn from the scored population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SelectionScheme {
    /// Classic fitness-proportional roulette wheel (scores shifted so the
    /// weakest member has a small positive weight).
    #[default]
    Roulette,
    /// k-way tournament: draw `k` members, keep the best.
    Tournament {
        /// Tournament size (≥ 1).
        k: usize,
    },
    /// Truncation: parents drawn uniformly from the best `fraction` of the
    /// population.
    Truncation {
        /// Surviving fraction in `(0, 1]`, in percent to stay `Eq`-able.
        keep_percent: u8,
    },
}

impl SelectionScheme {
    /// Draws the index of one parent. `scores` are engine-internal (already
    /// negated for minimization), higher is better. Quarantined members
    /// carry `NaN` scores and sort below — and are weighted below — every
    /// finite member, so supervision cannot poison selection.
    ///
    /// # Panics
    ///
    /// Panics on an empty population, a zero tournament size, or a zero
    /// truncation fraction.
    pub fn pick(&self, scores: &[f64], rng: &mut StdRng) -> usize {
        assert!(!scores.is_empty(), "selection over an empty population");
        match *self {
            SelectionScheme::Roulette => {
                // f64::min/max ignore NaN in the folds, so the span is over
                // the finite members only; NaN scores get zero weight rather
                // than poisoning the cumulative total.
                let min = scores.iter().copied().fold(f64::INFINITY, f64::min);
                let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let span = (max - min).max(1e-12);
                // Shift so the weakest still has ~5 % of the strongest's
                // weight; degenerate (all-equal) populations become uniform.
                let weights: Vec<f64> = scores
                    .iter()
                    .map(|s| {
                        if s.is_nan() {
                            0.0
                        } else {
                            (s - min) / span + 0.05
                        }
                    })
                    .collect();
                let total: f64 = weights.iter().sum();
                let mut target = rng.gen::<f64>() * total;
                for (i, w) in weights.iter().enumerate() {
                    target -= w;
                    if target <= 0.0 {
                        return i;
                    }
                }
                scores.len() - 1
            }
            SelectionScheme::Tournament { k } => {
                assert!(k > 0, "tournament size must be positive");
                let mut best = rng.gen_range(0..scores.len());
                for _ in 1..k {
                    let challenger = rng.gen_range(0..scores.len());
                    if nan_last_cmp(scores[challenger], scores[best]) == Ordering::Greater {
                        best = challenger;
                    }
                }
                best
            }
            SelectionScheme::Truncation { keep_percent } => {
                assert!(
                    (1..=100).contains(&keep_percent),
                    "truncation keep_percent must be in 1..=100"
                );
                let mut order: Vec<usize> = (0..scores.len()).collect();
                order.sort_by(|&a, &b| nan_last_cmp(scores[b], scores[a]));
                let survivors = ((scores.len() * keep_percent as usize).div_ceil(100)).max(1);
                order[rng.gen_range(0..survivors)]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn pick_histogram(scheme: SelectionScheme, scores: &[f64], draws: usize) -> Vec<usize> {
        let mut rng = rng();
        let mut hist = vec![0usize; scores.len()];
        for _ in 0..draws {
            hist[scheme.pick(scores, &mut rng)] += 1;
        }
        hist
    }

    #[test]
    fn roulette_prefers_fitter_members() {
        let hist = pick_histogram(SelectionScheme::Roulette, &[1.0, 1.0, 100.0], 3000);
        assert!(hist[2] > hist[0] * 3, "histogram {hist:?}");
        assert!(hist[0] > 0, "weak members keep a nonzero chance");
    }

    #[test]
    fn roulette_handles_uniform_scores() {
        let hist = pick_histogram(SelectionScheme::Roulette, &[5.0, 5.0, 5.0, 5.0], 4000);
        for &h in &hist {
            assert!(
                (700..1300).contains(&h),
                "expected near-uniform, got {hist:?}"
            );
        }
    }

    #[test]
    fn roulette_handles_negative_scores() {
        let hist = pick_histogram(SelectionScheme::Roulette, &[-10.0, -1.0], 2000);
        assert!(hist[1] > hist[0]);
    }

    #[test]
    fn tournament_concentrates_with_k() {
        let scores = [1.0, 2.0, 3.0, 4.0];
        let loose = pick_histogram(SelectionScheme::Tournament { k: 2 }, &scores, 4000);
        let tight = pick_histogram(SelectionScheme::Tournament { k: 4 }, &scores, 4000);
        assert!(
            tight[3] > loose[3],
            "larger k should pick the best more often"
        );
    }

    #[test]
    fn truncation_only_picks_survivors() {
        let scores = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        let hist = pick_histogram(
            SelectionScheme::Truncation { keep_percent: 30 },
            &scores,
            1000,
        );
        for (i, &h) in hist.iter().enumerate() {
            if i < 7 {
                assert_eq!(h, 0, "member {i} should never be selected: {hist:?}");
            } else {
                assert!(h > 0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty population")]
    fn empty_population_panics() {
        SelectionScheme::Roulette.pick(&[], &mut rng());
    }

    #[test]
    fn quarantined_members_are_never_selected_by_roulette_or_truncation() {
        // Index 1 is quarantined (NaN): roulette gives it zero weight and
        // truncation sorts it below every finite member.
        let scores = [3.0, f64::NAN, 1.0, 2.0];
        for scheme in [
            SelectionScheme::Roulette,
            SelectionScheme::Truncation { keep_percent: 75 },
        ] {
            let hist = pick_histogram(scheme, &scores, 2000);
            assert_eq!(hist[1], 0, "{scheme:?} selected a quarantined member");
            assert!(hist[0] > 0 && hist[2] > 0 && hist[3] > 0, "{scheme:?}");
        }
    }

    #[test]
    fn tournament_ranks_quarantined_members_below_every_finite_score() {
        // A quarantined member only wins a tournament in which every single
        // draw lands on it; any finite challenger beats NaN.
        let scores = [3.0, f64::NAN, 1.0, 2.0];
        let hist = pick_histogram(SelectionScheme::Tournament { k: 3 }, &scores, 4000);
        // Uniform share would be ~1000; all-same-draw probability is
        // (1/4)^3, so the quarantined member wins ≈ 62 of 4000.
        assert!(
            hist[1] < 200,
            "quarantined member should almost never win: {hist:?}"
        );
        assert!(hist[0] > hist[2], "finite ordering is preserved: {hist:?}");
    }

    #[test]
    fn all_quarantined_population_still_selects_deterministically() {
        // Degenerate but reachable mid-campaign: selection must not panic
        // or hang even when every member is quarantined.
        let scores = [f64::NAN, f64::NAN, f64::NAN];
        for scheme in [
            SelectionScheme::Roulette,
            SelectionScheme::Tournament { k: 2 },
            SelectionScheme::Truncation { keep_percent: 50 },
        ] {
            let mut rng = rng();
            for _ in 0..50 {
                let picked = scheme.pick(&scores, &mut rng);
                assert!(picked < scores.len());
            }
        }
    }
}
