//! Crossover strategies.
//!
//! The engine's default is single-point crossover (implemented directly on
//! the genomes for speed); this module adds the classic alternatives for
//! the ablation benches — two-point and uniform recombination — behind a
//! common strategy enum.

use crate::genome::{BitGenome, Genome, IntGenome};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A recombination strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CrossoverOp {
    /// One cut point; tails swap (the classic choice, and the default).
    #[default]
    SinglePoint,
    /// Two cut points; the middle segment swaps.
    TwoPoint,
    /// Every gene independently picks a parent (50/50).
    Uniform,
}

impl CrossoverOp {
    /// Recombines two bit genomes.
    ///
    /// # Panics
    ///
    /// Panics if the genomes have different lengths.
    pub fn cross_bits(
        &self,
        a: &BitGenome,
        b: &BitGenome,
        rng: &mut StdRng,
    ) -> (BitGenome, BitGenome) {
        assert_eq!(a.len(), b.len(), "crossover needs equal lengths");
        match self {
            CrossoverOp::SinglePoint => a.crossover(b, rng),
            CrossoverOp::TwoPoint => {
                if a.len() < 3 {
                    return a.crossover(b, rng);
                }
                let mut p1 = rng.gen_range(1..a.len());
                let mut p2 = rng.gen_range(1..a.len());
                if p1 > p2 {
                    std::mem::swap(&mut p1, &mut p2);
                }
                let mut c = a.clone();
                let mut d = b.clone();
                for i in p1..p2 {
                    c.set_bit(i, b.bit(i));
                    d.set_bit(i, a.bit(i));
                }
                (c, d)
            }
            CrossoverOp::Uniform => {
                let mut c = a.clone();
                let mut d = b.clone();
                for i in 0..a.len() {
                    if rng.gen::<bool>() {
                        c.set_bit(i, b.bit(i));
                        d.set_bit(i, a.bit(i));
                    }
                }
                (c, d)
            }
        }
    }

    /// Recombines two integer genomes.
    ///
    /// # Panics
    ///
    /// Panics if the genomes have different lengths or domains.
    pub fn cross_ints(
        &self,
        a: &IntGenome,
        b: &IntGenome,
        rng: &mut StdRng,
    ) -> (IntGenome, IntGenome) {
        assert_eq!(a.len(), b.len(), "crossover needs equal lengths");
        assert_eq!(a.bounds(), b.bounds(), "crossover needs matching domains");
        match self {
            CrossoverOp::SinglePoint => a.crossover(b, rng),
            CrossoverOp::TwoPoint => {
                if a.len() < 3 {
                    return a.crossover(b, rng);
                }
                let mut p1 = rng.gen_range(1..a.len());
                let mut p2 = rng.gen_range(1..a.len());
                if p1 > p2 {
                    std::mem::swap(&mut p1, &mut p2);
                }
                let (lo, hi) = a.bounds();
                let mut va = a.values().to_vec();
                let mut vb = b.values().to_vec();
                for i in p1..p2 {
                    std::mem::swap(&mut va[i], &mut vb[i]);
                }
                (
                    IntGenome::new(va, lo, hi).expect("children stay in domain"),
                    IntGenome::new(vb, lo, hi).expect("children stay in domain"),
                )
            }
            CrossoverOp::Uniform => {
                let (lo, hi) = a.bounds();
                let mut va = a.values().to_vec();
                let mut vb = b.values().to_vec();
                for i in 0..va.len() {
                    if rng.gen::<bool>() {
                        std::mem::swap(&mut va[i], &mut vb[i]);
                    }
                }
                (
                    IntGenome::new(va, lo, hi).expect("children stay in domain"),
                    IntGenome::new(vb, lo, hi).expect("children stay in domain"),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    fn parents() -> (BitGenome, BitGenome) {
        (BitGenome::zeros(64), BitGenome::repeat_word(u64::MAX, 64))
    }

    fn boundaries(g: &BitGenome) -> usize {
        (0..g.len() - 1)
            .filter(|&i| g.bit(i) != g.bit(i + 1))
            .count()
    }

    #[test]
    fn single_point_has_one_boundary() {
        let (a, b) = parents();
        let (c, _) = CrossoverOp::SinglePoint.cross_bits(&a, &b, &mut rng());
        assert_eq!(boundaries(&c), 1);
    }

    #[test]
    fn two_point_has_at_most_two_boundaries() {
        let (a, b) = parents();
        for _ in 0..20 {
            let (c, d) = CrossoverOp::TwoPoint.cross_bits(&a, &b, &mut rng());
            assert!(boundaries(&c) <= 2, "{}", c.render());
            assert_eq!(c.count_ones() + d.count_ones(), 64, "genes conserved");
        }
    }

    #[test]
    fn uniform_mixes_thoroughly() {
        let (a, b) = parents();
        let (c, d) = CrossoverOp::Uniform.cross_bits(&a, &b, &mut rng());
        // Roughly half the genes from each parent, complementary children.
        assert!((16..48).contains(&c.count_ones()), "{}", c.count_ones());
        assert_eq!(c.count_ones() + d.count_ones(), 64);
        assert!(boundaries(&c) > 5, "uniform crossover fragments heavily");
    }

    #[test]
    fn children_genes_come_from_parents() {
        let mut r = rng();
        let a = BitGenome::random(&mut r, 48);
        let b = BitGenome::random(&mut r, 48);
        for op in [
            CrossoverOp::SinglePoint,
            CrossoverOp::TwoPoint,
            CrossoverOp::Uniform,
        ] {
            let (c, d) = op.cross_bits(&a, &b, &mut r);
            for i in 0..48 {
                assert!(c.bit(i) == a.bit(i) || c.bit(i) == b.bit(i));
                assert!((c.bit(i) == a.bit(i)) == (d.bit(i) == b.bit(i)));
            }
        }
    }

    #[test]
    fn int_variants_respect_domains() {
        let mut r = rng();
        let a = IntGenome::random(&mut r, 16, 0, 20);
        let b = IntGenome::random(&mut r, 16, 0, 20);
        for op in [
            CrossoverOp::SinglePoint,
            CrossoverOp::TwoPoint,
            CrossoverOp::Uniform,
        ] {
            let (c, d) = op.cross_ints(&a, &b, &mut r);
            assert!(c.values().iter().all(|&v| v <= 20));
            assert!(d.values().iter().all(|&v| v <= 20));
            // Multiset of genes is conserved position-wise.
            for i in 0..16 {
                let pair = (c.values()[i], d.values()[i]);
                let orig = (a.values()[i], b.values()[i]);
                assert!(pair == orig || pair == (orig.1, orig.0));
            }
        }
    }

    #[test]
    fn tiny_genomes_fall_back_gracefully() {
        let a = BitGenome::zeros(2);
        let b = BitGenome::repeat_word(u64::MAX, 2);
        let (c, d) = CrossoverOp::TwoPoint.cross_bits(&a, &b, &mut rng());
        assert_eq!(c.count_ones() + d.count_ones(), 2);
    }
}
