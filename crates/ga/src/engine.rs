//! The GA main loop (paper §III-E).
//!
//! Convergence follows the paper's observable: Fig. 8 plots "the 40
//! discovered worst-case patterns which trigger the highest number of CEs"
//! and §V-A.1 says "GA stopped the search process when the similarity
//! function for the 40 worst-case 64-bit patterns exceeded 0.85". The
//! engine therefore maintains a **leaderboard** of the top-N *distinct*
//! chromosomes ever evaluated and stops when the leaderboard's mean pairwise
//! similarity crosses the threshold. A unimodal landscape funnels the
//! leaderboard into one neighbourhood (convergence); a multi-modal or
//! saturating landscape fills it with unrelated high scorers and the search
//! runs out its generation budget — exactly the paper's convergent CE
//! searches vs. non-convergent UE/access searches.

use crate::fitness::{Fitness, ParallelFitness};
use crate::genome::Genome;
use crate::ops::selection::SelectionScheme;
use crate::pool::{EvalPool, PoolTask, RoundSubmission};
use crate::supervise::{
    finite_mean, nan_last_cmp, nan_last_max, supervise_one, EvalVerdict, HazardPlan, Incident,
    IncidentKind, PendingIncident, SupervisionPolicy,
};
use dstress_stats::mean_pairwise;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize, Value};
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::Hash;
use std::time::Instant;

/// GA hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// Population size (paper optimum: 40). Also the leaderboard size.
    pub population_size: usize,
    /// Per-chromosome probability of undergoing mutation (paper optimum:
    /// 0.5).
    pub mutation_prob: f64,
    /// Per-gene perturbation rate applied when a chromosome mutates. `None`
    /// selects `1.5/len`.
    pub gene_rate: Option<f64>,
    /// Per-pair probability of crossover (paper optimum: 0.9); otherwise
    /// the parents are copied unchanged.
    pub crossover_prob: f64,
    /// Members copied verbatim into the next generation, best-first.
    pub elitism: usize,
    /// Parent-selection scheme.
    pub selection: SelectionScheme,
    /// Mean pairwise leaderboard similarity above which the search is
    /// converged (paper: 0.85).
    pub convergence_threshold: f64,
    /// Generation budget — the stand-in for the paper's two-week wall-clock
    /// cap on a search.
    pub max_generations: u32,
    /// Minimize instead of maximize (the paper's best-case data-pattern
    /// search flips the fitness function, §V-A.1).
    pub minimize: bool,
    /// Generations without a new best required (together with the
    /// similarity threshold) to declare convergence. Guards against
    /// stopping while the search is still climbing.
    pub stagnation_window: u32,
}

impl GaConfig {
    /// The paper's calibrated parameters: population 40, mutation 0.5,
    /// crossover 0.9 ("GA finds the 64-bit chromosome … for the minimum
    /// number of generations, which is about 80", §V).
    pub fn paper_defaults() -> Self {
        GaConfig {
            population_size: 40,
            mutation_prob: 0.5,
            gene_rate: None,
            crossover_prob: 0.9,
            elitism: 2,
            selection: SelectionScheme::Tournament { k: 2 },
            convergence_threshold: 0.85,
            max_generations: 400,
            minimize: false,
            stagnation_window: 20,
        }
    }

    /// Validates the hyper-parameters.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.population_size < 2 {
            return Err("population must have at least two members".into());
        }
        for (name, p) in [
            ("mutation_prob", self.mutation_prob),
            ("crossover_prob", self.crossover_prob),
            ("convergence_threshold", self.convergence_threshold),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must lie in [0, 1], got {p}"));
            }
        }
        if let Some(r) = self.gene_rate {
            if !(0.0..=1.0).contains(&r) {
                return Err(format!("gene_rate must lie in [0, 1], got {r}"));
            }
        }
        if self.max_generations == 0 {
            return Err("max_generations must be positive".into());
        }
        Ok(())
    }
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig::paper_defaults()
    }
}

/// Per-generation progress record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationStats {
    /// Generation index (0-based).
    pub generation: u32,
    /// Best objective value so far (in the user's orientation — larger is
    /// better for maximization searches, smaller for minimization).
    pub best: f64,
    /// Mean objective value of the generation.
    pub mean: f64,
    /// Mean pairwise similarity of the leaderboard.
    pub similarity: f64,
}

/// Evaluation-side bookkeeping for one search: how much substrate work the
/// fitness evaluations cost and how it was distributed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct EvalStats {
    /// Fitness evaluations actually executed on the substrate.
    pub evaluations: u64,
    /// Population slots served without touching the substrate because the
    /// chromosome had already been scored (elites, converged populations and
    /// within-generation duplicates). Only the parallel path caches; the
    /// legacy serial path always reports zero.
    pub cache_hits: u64,
    /// Evaluation worker threads used (1 = serial).
    pub workers: usize,
    /// Chromosomes currently retained in the evaluation cache (bounded by
    /// a fixed cap; see [`EngineState::cache`]). Absent in checkpoints
    /// written before the cache was bounded, defaulting to zero.
    #[serde(default)]
    pub cache_size: usize,
    /// Substrate evaluations whose virus program was served from the
    /// evaluator's bounded compile cache instead of being re-instantiated
    /// and re-compiled. The engine itself never compiles anything — the
    /// campaign driver stitches this in from its evaluator after the
    /// search — so checkpoints written mid-search carry zero. Absent in
    /// checkpoints from before the compile cache existed.
    #[serde(default)]
    pub compile_hits: u64,
    /// Tasks executed by a worker other than the one they were dealt to —
    /// work-stealing rebalance events on the persistent-pool path. The
    /// per-generation scoped path always reports zero. A runtime
    /// observable (like the timing vector), not part of the determinism
    /// contract. Absent in checkpoints from before the pool existed.
    #[serde(default)]
    pub steals: u64,
    /// The longest any pool worker sat idle inside a single scored round,
    /// in nanoseconds (round wall-clock minus that worker's busy time) —
    /// the straggler-tail measure work stealing exists to shrink. Zero on
    /// the scoped path. Absent in pre-pool checkpoints.
    #[serde(default)]
    pub max_worker_idle_ns: u64,
    /// Substrate tasks each pool worker executed, indexed by worker slot.
    /// Empty on the scoped path. Absent in pre-pool checkpoints.
    #[serde(default)]
    pub worker_tasks: Vec<u64>,
    /// Evaluations served by a warm replica-internal cache (the compile
    /// cache a persistent worker keeps across generations). Zero on the
    /// scoped path. Absent in pre-pool checkpoints.
    #[serde(default)]
    pub replica_warm_hits: u64,
    /// Evaluations that went through a replica-internal cache cold (a
    /// fresh compile). Zero on the scoped path. Absent in pre-pool
    /// checkpoints.
    #[serde(default)]
    pub replica_cold_misses: u64,
    /// Wall-clock seconds spent evaluating each scored round; index 0 is
    /// the initial population, subsequent entries are generations.
    pub generation_eval_seconds: Vec<f64>,
}

impl EvalStats {
    /// Total wall-clock seconds spent in fitness evaluation.
    pub fn eval_seconds(&self) -> f64 {
        self.generation_eval_seconds.iter().sum()
    }

    /// Folds one pool round's observability counters in.
    pub(crate) fn note_pool_round(&mut self, round: &PoolRoundStats) {
        self.steals += round.steals;
        self.max_worker_idle_ns = self.max_worker_idle_ns.max(round.max_worker_idle_ns);
        if self.worker_tasks.len() < round.worker_tasks.len() {
            self.worker_tasks.resize(round.worker_tasks.len(), 0);
        }
        for (total, &n) in self.worker_tasks.iter_mut().zip(&round.worker_tasks) {
            *total += n;
        }
        self.replica_warm_hits += round.warm_hits;
        self.replica_cold_misses += round.cold_misses;
    }

    /// Merges another campaign's stats into this one — the scheduler's
    /// cross-campaign view. The merge is a deterministic function of the
    /// two inputs: counters add, worker-indexed vectors add elementwise
    /// (padded), per-round timings add round-by-round, and the idle
    /// high-water mark takes the max, so folding campaigns in any fixed
    /// order yields the same totals and [`eval_seconds`] stays the summed
    /// wall-clock.
    ///
    /// [`eval_seconds`]: EvalStats::eval_seconds
    pub fn merge(&mut self, other: &EvalStats) {
        self.evaluations += other.evaluations;
        self.cache_hits += other.cache_hits;
        self.workers = self.workers.max(other.workers);
        self.cache_size += other.cache_size;
        self.compile_hits += other.compile_hits;
        self.steals += other.steals;
        self.max_worker_idle_ns = self.max_worker_idle_ns.max(other.max_worker_idle_ns);
        if self.worker_tasks.len() < other.worker_tasks.len() {
            self.worker_tasks.resize(other.worker_tasks.len(), 0);
        }
        for (total, &n) in self.worker_tasks.iter_mut().zip(&other.worker_tasks) {
            *total += n;
        }
        self.replica_warm_hits += other.replica_warm_hits;
        self.replica_cold_misses += other.replica_cold_misses;
        if self.generation_eval_seconds.len() < other.generation_eval_seconds.len() {
            self.generation_eval_seconds
                .resize(other.generation_eval_seconds.len(), 0.0);
        }
        for (total, &s) in self
            .generation_eval_seconds
            .iter_mut()
            .zip(&other.generation_eval_seconds)
        {
            *total += s;
        }
    }
}

/// One pool round's observability counters, handed back from the executor
/// and folded into [`EvalStats`] by the drain. Runtime observables — which
/// worker ran which task, how long anyone waited — so, unlike verdicts and
/// incidents, these are *not* part of the bit-identity contract.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct PoolRoundStats {
    pub(crate) steals: u64,
    pub(crate) max_worker_idle_ns: u64,
    pub(crate) worker_tasks: Vec<u64>,
    pub(crate) warm_hits: u64,
    pub(crate) cold_misses: u64,
}

/// The outcome of a GA search.
#[derive(Debug, Clone)]
pub struct SearchResult<G> {
    /// The best chromosome found.
    pub best: G,
    /// Its objective value (user orientation).
    pub best_fitness: f64,
    /// The leaderboard: the top distinct chromosomes discovered over the
    /// whole search, best-first — the paper's "40 worst-case patterns"
    /// (Fig. 8/9/10/11/12 plot exactly this set).
    pub leaderboard: Vec<(G, f64)>,
    /// Generations executed.
    pub generations: u32,
    /// Whether the similarity criterion was met (vs. hitting the budget —
    /// the paper reports both outcomes: CE searches converge, UE/access
    /// searches run out their two weeks).
    pub converged: bool,
    /// Final mean pairwise leaderboard similarity.
    pub similarity: f64,
    /// Per-generation history.
    pub history: Vec<GenerationStats>,
    /// Evaluation bookkeeping (substrate evaluations, cache hits, workers,
    /// wall-clock).
    pub eval_stats: EvalStats,
    /// Every supervision decision (retry, quarantine, worker loss) the
    /// evaluation runtime made, in stream order. Empty for unsupervised
    /// (serial-path) searches and for fault-free supervised ones.
    pub incidents: Vec<Incident>,
}

impl<G> SearchResult<G> {
    /// Candidates the supervisor quarantined.
    pub fn quarantined(&self) -> usize {
        self.incidents
            .iter()
            .filter(|i| matches!(i.kind, IncidentKind::Quarantine { .. }))
            .count()
    }

    /// Workers lost (and redealt around) during the search.
    pub fn workers_lost(&self) -> usize {
        self.incidents
            .iter()
            .filter(|i| matches!(i.kind, IncidentKind::WorkerLoss))
            .count()
    }
}

/// The top-N distinct chromosomes seen so far.
#[derive(Debug, Clone)]
struct Leaderboard<G> {
    entries: Vec<(G, f64)>,
    capacity: usize,
}

impl<G: Genome + PartialEq> Leaderboard<G> {
    fn new(capacity: usize) -> Self {
        Leaderboard {
            entries: Vec::with_capacity(capacity + 1),
            capacity,
        }
    }

    /// Rebuilds a leaderboard from checkpointed entries (already sorted).
    fn from_entries(entries: Vec<(G, f64)>, capacity: usize) -> Self {
        Leaderboard { entries, capacity }
    }

    /// Offers a scored chromosome (engine orientation: higher is better;
    /// `NaN` — the quarantine score — ranks below everything).
    fn offer(&mut self, genome: &G, score: f64) {
        if let Some(existing) = self.entries.iter_mut().find(|(g, _)| g == genome) {
            if nan_last_cmp(score, existing.1) == std::cmp::Ordering::Greater {
                existing.1 = score;
            }
            self.entries.sort_by(|a, b| nan_last_cmp(b.1, a.1));
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((genome.clone(), score));
        } else if nan_last_cmp(score, self.entries.last().expect("leaderboard non-empty").1)
            == std::cmp::Ordering::Greater
        {
            *self.entries.last_mut().expect("leaderboard non-empty") = (genome.clone(), score);
        } else {
            return;
        }
        self.entries.sort_by(|a, b| nan_last_cmp(b.1, a.1));
    }

    fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    fn similarity(&self) -> f64 {
        let genomes: Vec<&G> = self.entries.iter().map(|(g, _)| g).collect();
        mean_pairwise(&genomes, |a, b| a.similarity(b))
    }
}

/// The search engine.
///
/// See the crate-level example.
#[derive(Debug)]
pub struct GaEngine {
    config: GaConfig,
    rng: StdRng,
    supervision: SupervisionPolicy,
    hazards: Option<HazardPlan>,
}

impl GaEngine {
    /// Creates an engine with a validated configuration and a seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`GaConfig::validate`]).
    pub fn new(config: GaConfig, seed: u64) -> Self {
        config.validate().expect("invalid GA configuration");
        GaEngine {
            config,
            rng: StdRng::seed_from_u64(seed),
            supervision: SupervisionPolicy::default(),
            hazards: None,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &GaConfig {
        &self.config
    }

    /// Sets the retry/quarantine policy the parallel evaluation path runs
    /// under (the serial [`run`](GaEngine::run) path is unsupervised).
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid (see [`SupervisionPolicy::validate`]).
    pub fn set_supervision(&mut self, policy: SupervisionPolicy) {
        policy.validate().expect("invalid supervision policy");
        self.supervision = policy;
    }

    /// Installs (or clears) a fault-injection plan for the parallel
    /// evaluation path — test instrumentation, mirroring
    /// [`MemStorage::fail_op`](crate::journal::MemStorage::fail_op).
    pub fn set_hazards(&mut self, hazards: Option<HazardPlan>) {
        self.hazards = hazards;
    }

    /// Runs a search from a randomly initialized population ("the
    /// chromosomes from the first offspring are generated randomly",
    /// §III-E).
    pub fn run<G, F, Init>(&mut self, mut init: Init, fitness: &mut F) -> SearchResult<G>
    where
        G: Genome + PartialEq,
        F: Fitness<G>,
        Init: FnMut(&mut StdRng) -> G,
    {
        let population: Vec<G> = (0..self.config.population_size)
            .map(|_| init(&mut self.rng))
            .collect();
        self.run_from(population, fitness)
    }

    /// Runs a search from a caller-supplied initial population — how an
    /// interrupted search resumes from the virus database (§III-F).
    ///
    /// # Panics
    ///
    /// Panics if the population size does not match the configuration.
    pub fn run_from<G, F>(&mut self, population: Vec<G>, fitness: &mut F) -> SearchResult<G>
    where
        G: Genome + PartialEq,
        F: Fitness<G>,
    {
        self.search_loop(population, 1, |pop, stats| {
            stats.evaluations += pop.len() as u64;
            let scores = fitness.evaluate_generation(pop);
            assert_eq!(scores.len(), pop.len(), "one score per candidate");
            scores
        })
    }

    /// Runs a search from a randomly initialized population, evaluating
    /// each generation's chromosomes on `workers` threads.
    ///
    /// Each worker owns an independent replica of the fitness substrate
    /// (see [`ParallelFitness`]); repeat chromosomes are served from an
    /// evaluation cache instead of re-running the substrate. Because the
    /// fitness contract requires purity, the result is bit-identical for
    /// any worker count, including `workers = 1`.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or an evaluation worker panics.
    pub fn run_parallel<G, F, Init>(
        &mut self,
        workers: usize,
        mut init: Init,
        fitness: &mut F,
    ) -> SearchResult<G>
    where
        G: Genome + PartialEq + Eq + Hash + Sync + 'static,
        F: ParallelFitness<G> + 'static,
        Init: FnMut(&mut StdRng) -> G,
    {
        let population: Vec<G> = (0..self.config.population_size)
            .map(|_| init(&mut self.rng))
            .collect();
        self.run_from_parallel(workers, population, fitness)
    }

    /// Runs a search from a caller-supplied population on `workers`
    /// evaluation threads — the parallel counterpart of [`run_from`].
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero, the population size does not match the
    /// configuration, or an evaluation worker panics.
    ///
    /// [`run_from`]: GaEngine::run_from
    pub fn run_from_parallel<G, F>(
        &mut self,
        workers: usize,
        population: Vec<G>,
        fitness: &mut F,
    ) -> SearchResult<G>
    where
        G: Genome + PartialEq + Eq + Hash + Sync + 'static,
        F: ParallelFitness<G> + 'static,
    {
        assert!(workers >= 1, "at least one evaluation worker is required");
        // One persistent pool for the whole campaign: workers are spawned
        // once, each owning a warm replica whose internal caches survive
        // across generations, and retired (absorbed) only at the end.
        let pool = EvalPool::new(fitness, workers);
        let rng = StdRng::from_state(self.rng.to_state());
        let mut session = SearchSession::with_rng(self.config, rng, population);
        session.set_supervision(self.supervision);
        session.set_hazards(self.hazards.clone());
        while !session.done() {
            session.step_pooled(&pool);
        }
        for replica in pool.shutdown() {
            fitness.absorb(replica);
        }
        // The session consumed part of the engine's RNG stream; keep the
        // engine's position in step so later campaigns draw fresh numbers.
        self.rng = StdRng::from_state(session.rng_state());
        session.finish()
    }

    /// The shared generation loop: scores rounds through `evaluate` (which
    /// returns raw user-orientation fitness values, one per member, and
    /// updates the evaluation counters), then applies selection, crossover,
    /// mutation and the convergence criterion. All engine-side randomness
    /// stays in this (single-threaded) loop, so every evaluation strategy
    /// draws the same RNG stream.
    fn search_loop<G, E>(
        &mut self,
        mut population: Vec<G>,
        workers: usize,
        mut evaluate: E,
    ) -> SearchResult<G>
    where
        G: Genome + PartialEq,
        E: FnMut(&[G], &mut EvalStats) -> Vec<f64>,
    {
        assert_eq!(
            population.len(),
            self.config.population_size,
            "initial population size mismatch"
        );
        let sign = if self.config.minimize { -1.0 } else { 1.0 };
        let mut eval_stats = EvalStats {
            workers,
            ..EvalStats::default()
        };
        let mut leaderboard = Leaderboard::new(self.config.population_size);
        // Scores one round and offers every member to the leaderboard in
        // population order — the same order the serial loop used, so the
        // leaderboard's tie-breaking is identical across strategies.
        let mut score_round =
            |pop: &[G], leaderboard: &mut Leaderboard<G>, stats: &mut EvalStats| -> Vec<f64> {
                let started = Instant::now();
                let raw = evaluate(pop, stats);
                stats
                    .generation_eval_seconds
                    .push(started.elapsed().as_secs_f64());
                let scores: Vec<f64> = raw.into_iter().map(|v| sign * v).collect();
                for (g, s) in pop.iter().zip(&scores) {
                    leaderboard.offer(g, *s);
                }
                scores
            };
        let mut scores = score_round(&population, &mut leaderboard, &mut eval_stats);
        let mut history = Vec::new();
        let mut generations = 0;
        let mut converged = false;
        let mut similarity = leaderboard.similarity();
        let mut best_so_far = nan_last_max(&scores);
        let mut stagnant_generations = 0u32;

        for generation in 0..self.config.max_generations {
            generations = generation + 1;
            history.push(round_stats(generation, &scores, sign, similarity));

            population = breed_next(&self.config, &population, &scores, &mut self.rng);
            scores = score_round(&population, &mut leaderboard, &mut eval_stats);
            similarity = leaderboard.similarity();
            let generation_best = nan_last_max(&scores);
            if nan_last_cmp(generation_best, best_so_far) == std::cmp::Ordering::Greater {
                best_so_far = generation_best;
                stagnant_generations = 0;
            } else {
                stagnant_generations += 1;
            }
            if leaderboard.is_full()
                && similarity >= self.config.convergence_threshold
                && stagnant_generations >= self.config.stagnation_window
            {
                converged = true;
                history.push(round_stats(generation + 1, &scores, sign, similarity));
                break;
            }
        }

        let leaderboard: Vec<(G, f64)> = leaderboard
            .entries
            .into_iter()
            .map(|(g, s)| (g, sign * s))
            .collect();
        let (best, best_fitness) = leaderboard[0].clone();
        SearchResult {
            best,
            best_fitness,
            leaderboard,
            generations,
            converged,
            similarity,
            history,
            eval_stats,
            incidents: Vec::new(),
        }
    }
}

// Best/mean ignore quarantined (`NaN`) members; an all-quarantined round
// reports `NaN`, which round-trips through JSON checkpoints (`-inf` would
// not). For finite scores this is exactly the old fold-based arithmetic.
fn round_stats(generation: u32, scores: &[f64], sign: f64, similarity: f64) -> GenerationStats {
    let best_engine = nan_last_max(scores);
    let mean_engine = finite_mean(scores);
    GenerationStats {
        generation,
        best: sign * best_engine,
        mean: sign * mean_engine,
        similarity,
    }
}

/// One generation of breeding: elitism, then selection + crossover +
/// mutation until the population is refilled. Shared by the legacy serial
/// loop and [`SearchSession`] so the two can never drift apart.
fn breed_next<G: Genome>(
    config: &GaConfig,
    population: &[G],
    scores: &[f64],
    rng: &mut StdRng,
) -> Vec<G> {
    // Elitism: carry the best members over unchanged. Quarantined (`NaN`)
    // members rank below every finite score, so they are never elite.
    let mut order: Vec<usize> = (0..population.len()).collect();
    order.sort_by(|&a, &b| nan_last_cmp(scores[b], scores[a]));
    let mut next: Vec<G> = order
        .iter()
        .take(config.elitism.min(population.len()))
        .map(|&i| population[i].clone())
        .collect();

    // Offspring via selection + crossover + mutation.
    while next.len() < config.population_size {
        let a = config.selection.pick(scores, rng);
        let b = config.selection.pick(scores, rng);
        let (mut c, mut d) = if rng.gen::<f64>() < config.crossover_prob {
            population[a].crossover(&population[b], rng)
        } else {
            (population[a].clone(), population[b].clone())
        };
        for child in [&mut c, &mut d] {
            if rng.gen::<f64>() < config.mutation_prob {
                let rate = config.gene_rate.unwrap_or(1.5 / child.len().max(1) as f64);
                child.mutate(rng, rate);
            }
        }
        next.push(c);
        if next.len() < config.population_size {
            next.push(d);
        }
    }
    next
}

/// What one worker brought back from its share of a dealing round: the
/// candidates it finished (with their supervision incidents) and, if it
/// died, the evaluation index the kill fired at.
struct WorkerReport {
    completed: Vec<(usize, EvalVerdict, Vec<PendingIncident>)>,
    died_at: Option<u64>,
}

/// Retention bound of the evaluation cache: the most recently used
/// chromosomes kept, everything older evicted. Generous next to a
/// population (the paper's is 40) — elites and within-search repeats stay
/// resident — while keeping every [`EngineState`] checkpoint a fixed size
/// instead of growing with the full evaluation history of a long campaign.
const EVAL_CACHE_CAP: usize = 1024;

/// The bounded evaluation cache: chromosome → raw user-orientation fitness
/// (quarantined chromosomes carry `NaN`), with deterministic
/// least-recently-used retention.
///
/// Recency is defined purely by the search's own canonical orders — lookups
/// promote in population-slot order during the cache pre-pass, inserts
/// land in dealing order — never by worker identity or thread timing, so
/// the cache contents (and therefore every future hit, miss and eviction)
/// are bit-identical for any worker count. Checkpoints serialize the queue
/// oldest-first and [`EvalCache::from_entries`] rebuilds it verbatim, so a
/// resumed search evicts exactly as the uninterrupted one would.
#[derive(Debug, Clone)]
struct EvalCache<G> {
    map: HashMap<G, f64>,
    /// Recency queue: front = least recently used.
    queue: VecDeque<G>,
    cap: usize,
}

impl<G: Genome + Eq + Hash> EvalCache<G> {
    fn new() -> Self {
        Self::with_cap(EVAL_CACHE_CAP)
    }

    fn with_cap(cap: usize) -> Self {
        EvalCache {
            map: HashMap::new(),
            queue: VecDeque::new(),
            cap,
        }
    }

    /// Rebuilds a cache from checkpoint entries in queue (oldest-first)
    /// order. Entries beyond the cap — a checkpoint written under a larger
    /// cap — evict oldest-first, exactly as live inserts would.
    fn from_entries(entries: Vec<(G, f64)>) -> Self {
        let mut cache = EvalCache::new();
        for (genome, value) in entries {
            cache.insert(genome, value);
        }
        cache
    }

    /// Looks up a chromosome, promoting it to most-recently-used on a hit.
    fn lookup(&mut self, genome: &G) -> Option<f64> {
        let &value = self.map.get(genome)?;
        let at = self
            .queue
            .iter()
            .position(|g| g == genome)
            .expect("every cached chromosome is in the recency queue");
        let g = self.queue.remove(at).expect("position is in range");
        self.queue.push_back(g);
        Some(value)
    }

    /// Inserts (or refreshes) a chromosome as most-recently-used, evicting
    /// the least recently used entry beyond the cap.
    fn insert(&mut self, genome: G, value: f64) {
        if self.map.insert(genome.clone(), value).is_some() {
            let at = self
                .queue
                .iter()
                .position(|g| g == &genome)
                .expect("every cached chromosome is in the recency queue");
            self.queue.remove(at);
        }
        self.queue.push_back(genome);
        if self.queue.len() > self.cap {
            let evicted = self.queue.pop_front().expect("cache is over capacity");
            self.map.remove(&evicted);
        }
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    /// The cache contents in queue (oldest-first) order — the canonical
    /// checkpoint form.
    fn entries(&self) -> Vec<(G, f64)> {
        self.queue
            .iter()
            .map(|g| (g.clone(), self.map[g]))
            .collect()
    }
}

/// The cache pre-pass of one scoring round: repeats resolved, distinct new
/// chromosomes collected in dealing order with the population slots each
/// fills, and the round's base evaluation index pinned. Shared verbatim by
/// the scoped executor, the persistent pool and the campaign scheduler, so
/// the canonical numbering can never drift between paths.
#[derive(Debug)]
pub(crate) struct RoundPlan<G> {
    /// Scores with cache hits pre-filled; pending slots still zero.
    pub(crate) scores: Vec<f64>,
    /// Each distinct new chromosome with the population slots it fills,
    /// in dealing order.
    pub(crate) pending: Vec<(G, Vec<usize>)>,
    /// Search-global evaluation index of `pending[0]`: cache hits never
    /// consume indices, so the numbering is the same for every worker
    /// count and every resume.
    pub(crate) base_index: u64,
}

impl<G: Genome> RoundPlan<G> {
    /// The plan's pending candidates as owned pool tasks, dealing order.
    pub(crate) fn pool_tasks(&self) -> Vec<PoolTask<G>> {
        self.pending
            .iter()
            .enumerate()
            .map(|(j, (genome, _))| PoolTask {
                slot: j,
                eval_index: self.base_index + j as u64,
                genome: genome.clone(),
            })
            .collect()
    }
}

/// What an executor (scoped or pooled) brought back from one round: a
/// verdict per pending candidate in dealing order, the round's supervision
/// incidents already canonically sorted by [`PendingIncident::sort_key`],
/// the worker count surviving the round, and — on the pool path — the
/// round's observability counters.
#[derive(Debug)]
pub(crate) struct RoundExecution {
    pub(crate) verdicts: Vec<EvalVerdict>,
    pub(crate) incidents: Vec<PendingIncident>,
    pub(crate) alive_workers: usize,
    pub(crate) pool: Option<PoolRoundStats>,
}

/// One opened step of a [`SearchSession`]: the round plan plus the timing
/// anchor, produced by [`SearchSession::begin_round`] and consumed by
/// [`SearchSession::finish_round`] after an executor ran the plan.
#[derive(Debug)]
pub(crate) struct PreparedRound<G> {
    pub(crate) plan: RoundPlan<G>,
    started: Instant,
}

/// Resolves repeats against the cache and numbers the distinct new
/// chromosomes (see [`RoundPlan`]). Updates `evaluations`, `cache_hits`
/// and `cache_size` exactly as the fused loop did.
fn plan_round<G>(population: &[G], cache: &mut EvalCache<G>, stats: &mut EvalStats) -> RoundPlan<G>
where
    G: Genome + PartialEq + Eq + Hash,
{
    let mut scores = vec![0.0f64; population.len()];
    // Resolve repeats first: chromosomes scored in an earlier round come
    // from the cache, and a chromosome occurring several times in this
    // round is evaluated once. `pending` holds each distinct new chromosome
    // with the population slots it fills.
    let mut pending: Vec<(G, Vec<usize>)> = Vec::new();
    let mut pending_index: HashMap<&G, usize> = HashMap::new();
    for (i, g) in population.iter().enumerate() {
        if let Some(hit) = cache.lookup(g) {
            scores[i] = hit;
            stats.cache_hits += 1;
        } else if let Some(&p) = pending_index.get(g) {
            pending[p].1.push(i);
            stats.cache_hits += 1;
        } else {
            pending_index.insert(g, pending.len());
            pending.push((g.clone(), vec![i]));
        }
    }
    let base_index = stats.evaluations;
    stats.evaluations += pending.len() as u64;
    stats.cache_size = cache.len();
    RoundPlan {
        scores,
        pending,
        base_index,
    }
}

/// Runs one planned round on per-generation scoped threads — the
/// pre-pool executor, kept as the differential baseline the persistent
/// pool is benched and tested against. Candidates are dealt by static
/// round-robin over the live workers and evaluated under supervision
/// (panic isolation, deterministic retry/quarantine — see
/// [`crate::supervise`]).
///
/// A worker that dies mid-round (a [`Hazard::KillWorker`]) is removed from
/// the pool (`dead`) and its unfinished share is redealt to the survivors;
/// if the last worker dies it is revived, so the round always completes.
/// Every verdict and incident is keyed by the search-global evaluation
/// index, never by worker identity, so the result — scores, `newly` order,
/// incident stream — is bit-identical for any worker count.
///
/// [`Hazard::KillWorker`]: crate::supervise::Hazard::KillWorker
fn run_round_scoped<G, F>(
    plan: &RoundPlan<G>,
    replicas: &mut [F],
    dead: &mut HashSet<usize>,
    policy: &SupervisionPolicy,
    hazards: Option<&HazardPlan>,
) -> RoundExecution
where
    G: Genome + PartialEq + Eq + Hash + Sync,
    F: ParallelFitness<G>,
{
    let pending = &plan.pending;
    let base_index = plan.base_index;
    // A stale dead-set (the pool was resized between steps) must not mask
    // every worker; dead workers stay dead only while their index exists.
    dead.retain(|&w| w < replicas.len());
    if dead.len() >= replicas.len() {
        dead.clear();
    }
    let mut verdicts: Vec<Option<EvalVerdict>> = vec![None; pending.len()];
    let mut round_incidents: Vec<PendingIncident> = Vec::new();
    // Dealing-order indices into `pending` still awaiting a verdict. Each
    // pass deals them round-robin over the live workers; a worker loss
    // leaves its unfinished share here for the next pass.
    let mut remaining: Vec<usize> = (0..pending.len()).collect();
    while !remaining.is_empty() {
        let alive: Vec<usize> = (0..replicas.len()).filter(|w| !dead.contains(w)).collect();
        let lanes = alive.len();
        let mut alive_replicas: Vec<&mut F> = replicas
            .iter_mut()
            .enumerate()
            .filter(|(w, _)| !dead.contains(w))
            .map(|(_, replica)| replica)
            .collect();
        let reports: Vec<WorkerReport> = crossbeam::scope(|s| {
            let handles: Vec<_> = alive_replicas
                .iter_mut()
                .enumerate()
                .map(|(lane, replica)| {
                    let share: Vec<(usize, &G)> = remaining
                        .iter()
                        .enumerate()
                        .filter(|(pos, _)| pos % lanes == lane)
                        .map(|(_, &j)| (j, &pending[j].0))
                        .collect();
                    s.spawn(move |_| {
                        let mut completed = Vec::new();
                        for (j, genome) in share {
                            let eval_index = base_index + j as u64;
                            if hazards.is_some_and(|h| h.take_kill(eval_index)) {
                                // The worker dies before touching this
                                // candidate; the rest of its share is
                                // abandoned for the survivors.
                                return WorkerReport {
                                    completed,
                                    died_at: Some(eval_index),
                                };
                            }
                            let mut local = Vec::new();
                            let verdict = supervise_one(
                                &mut **replica,
                                genome,
                                eval_index,
                                policy,
                                hazards,
                                &mut local,
                            );
                            completed.push((j, verdict, local));
                        }
                        WorkerReport {
                            completed,
                            died_at: None,
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("evaluation worker panicked"))
                .collect()
        })
        .expect("evaluation scope panicked");
        for (lane, report) in reports.into_iter().enumerate() {
            if let Some(eval_index) = report.died_at {
                dead.insert(alive[lane]);
                round_incidents.push(PendingIncident {
                    eval_index,
                    attempt: 0,
                    kind: IncidentKind::WorkerLoss,
                });
            }
            for (j, verdict, local) in report.completed {
                verdicts[j] = Some(verdict);
                round_incidents.extend(local);
            }
        }
        // Graceful degradation, never extinction: losing the last worker
        // revives the pool (one fresh dealing lane) so the round finishes.
        if dead.len() >= replicas.len() {
            dead.clear();
        }
        remaining.retain(|&j| verdicts[j].is_none());
    }
    // Canonicalize the incident stream: order by evaluation index, then
    // attempt, then phase — a pure function of the search, independent of
    // which worker interleaving produced it.
    round_incidents.sort_by_key(|incident| incident.sort_key());
    RoundExecution {
        verdicts: verdicts
            .into_iter()
            .map(|v| v.expect("every pending candidate has a verdict"))
            .collect(),
        incidents: round_incidents,
        alive_workers: replicas.len() - dead.len(),
        pool: None,
    }
}

/// Drains an executed round back into the search in canonical dealing
/// order: verdicts fill scores, newly evaluated chromosomes are pushed
/// onto `newly` (raw user-orientation values) so a journal can persist
/// exactly the substrate work that happened, and quarantined chromosomes
/// are cached as `NaN` (the incident stream carries the decision instead).
/// Because the drain order is the plan's dealing order — never worker
/// identity or completion order — `newly`, the cache recency queue and
/// every score are bit-identical for any worker count and any steal
/// interleaving.
fn drain_round<G>(
    plan: RoundPlan<G>,
    execution: Option<RoundExecution>,
    cache: &mut EvalCache<G>,
    newly: &mut Vec<(G, f64)>,
    stats: &mut EvalStats,
) -> (Vec<f64>, Vec<PendingIncident>)
where
    G: Genome + PartialEq + Eq + Hash,
{
    let RoundPlan {
        mut scores,
        pending,
        ..
    } = plan;
    // An all-cached round never reached an executor: nothing to drain, and
    // (as before the pool) the surviving-worker count is left untouched.
    let Some(execution) = execution else {
        debug_assert!(pending.is_empty(), "unexecuted rounds must be empty");
        return (scores, Vec::new());
    };
    stats.workers = execution.alive_workers;
    if let Some(pool_stats) = &execution.pool {
        stats.note_pool_round(pool_stats);
    }
    debug_assert_eq!(execution.verdicts.len(), pending.len());
    for (verdict, (genome, slots)) in execution.verdicts.into_iter().zip(&pending) {
        let value = match verdict {
            EvalVerdict::Scored(value) => {
                newly.push((genome.clone(), value));
                value
            }
            // Quarantined: cached as NaN so the chromosome is never
            // re-evaluated, ranked worst by the NaN-last total order, and
            // kept out of the journal's virus records.
            EvalVerdict::Quarantined => f64::NAN,
        };
        cache.insert(genome.clone(), value);
        for &i in slots {
            scores[i] = value;
        }
    }
    stats.cache_size = cache.len();
    (scores, execution.incidents)
}

/// A stepwise, checkpointable GA search: the parallel engine loop unrolled
/// so callers can persist the complete engine state between generations and
/// continue an interrupted search **bit-identically** (§III-F).
///
/// One [`step`] call scores the initial population; each further call runs
/// exactly one generation. [`checkpoint`] captures everything the next step
/// depends on — population, scores, leaderboard, history, RNG stream
/// position, evaluation cache and counters — and [`resume`] reconstructs
/// the session so the remaining steps draw the same random numbers and the
/// same cached fitness values as an uninterrupted run.
///
/// [`step`]: SearchSession::step
/// [`checkpoint`]: SearchSession::checkpoint
/// [`resume`]: SearchSession::resume
#[derive(Debug)]
pub struct SearchSession<G> {
    config: GaConfig,
    rng: StdRng,
    population: Vec<G>,
    /// Engine-orientation scores of the current population.
    scores: Vec<f64>,
    leaderboard: Leaderboard<G>,
    history: Vec<GenerationStats>,
    eval_stats: EvalStats,
    /// Raw user-orientation fitness of recently evaluated chromosomes
    /// (bounded LRU; see [`EvalCache`]).
    cache: EvalCache<G>,
    /// Chromosomes evaluated on the substrate since the last
    /// [`take_newly_evaluated`](SearchSession::take_newly_evaluated).
    newly: Vec<(G, f64)>,
    /// Every supervision incident so far (checkpointed: the sequence
    /// numbering must continue across a resume).
    incidents: Vec<Incident>,
    /// Incidents since the last
    /// [`take_new_incidents`](SearchSession::take_new_incidents).
    fresh_incidents: Vec<Incident>,
    /// Retry/quarantine policy for supervised evaluation.
    policy: SupervisionPolicy,
    /// Injected faults (tests); `None` in production.
    hazards: Option<HazardPlan>,
    /// Workers lost this process (runtime state, deliberately not
    /// checkpointed: a resume starts with a fresh pool).
    dead_workers: HashSet<usize>,
    /// Completed generations.
    generation: u32,
    /// Whether the initial population has been scored.
    initialized: bool,
    converged: bool,
    similarity: f64,
    best_so_far: f64,
    stagnant: u32,
    done: bool,
}

impl<G: Genome + PartialEq + Eq + Hash + Sync> SearchSession<G> {
    /// Starts a fresh session: seeds the RNG and draws the initial
    /// population (nothing is evaluated until the first [`step`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    ///
    /// [`step`]: SearchSession::step
    pub fn start(config: GaConfig, seed: u64, mut init: impl FnMut(&mut StdRng) -> G) -> Self {
        config.validate().expect("invalid GA configuration");
        let mut rng = StdRng::seed_from_u64(seed);
        let population: Vec<G> = (0..config.population_size)
            .map(|_| init(&mut rng))
            .collect();
        SearchSession::with_rng(config, rng, population)
    }

    /// Starts a session from an explicit RNG and population (how the engine
    /// facade hands over its stream).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the population size does
    /// not match it.
    pub fn with_rng(config: GaConfig, rng: StdRng, population: Vec<G>) -> Self {
        config.validate().expect("invalid GA configuration");
        assert_eq!(
            population.len(),
            config.population_size,
            "initial population size mismatch"
        );
        SearchSession {
            leaderboard: Leaderboard::new(config.population_size),
            config,
            rng,
            population,
            scores: Vec::new(),
            history: Vec::new(),
            eval_stats: EvalStats {
                workers: 1,
                ..EvalStats::default()
            },
            cache: EvalCache::new(),
            newly: Vec::new(),
            incidents: Vec::new(),
            fresh_incidents: Vec::new(),
            policy: SupervisionPolicy::default(),
            hazards: None,
            dead_workers: HashSet::new(),
            generation: 0,
            initialized: false,
            converged: false,
            similarity: 0.0,
            best_so_far: 0.0,
            stagnant: 0,
            done: false,
        }
    }

    /// Reconstructs a session from a checkpoint. The checkpoint pins the
    /// configuration, so the continuation is bit-identical to the search
    /// that produced it.
    ///
    /// # Panics
    ///
    /// Panics if the checkpointed configuration is invalid.
    pub fn resume(state: EngineState<G>) -> Self {
        state.config.validate().expect("invalid GA configuration");
        SearchSession {
            leaderboard: Leaderboard::from_entries(state.leaderboard, state.config.population_size),
            config: state.config,
            rng: StdRng::from_state(state.rng),
            population: state.population,
            scores: state.scores,
            history: state.history,
            eval_stats: state.eval_stats,
            cache: EvalCache::from_entries(state.cache),
            newly: Vec::new(),
            incidents: state.incidents,
            fresh_incidents: Vec::new(),
            policy: SupervisionPolicy::default(),
            hazards: None,
            dead_workers: HashSet::new(),
            generation: state.generation,
            initialized: state.initialized,
            converged: state.converged,
            similarity: state.similarity,
            best_so_far: state.best_so_far,
            stagnant: state.stagnant,
            done: state.done,
        }
    }

    /// Whether the search has finished (converged or out of budget).
    pub fn done(&self) -> bool {
        self.done
    }

    /// Completed generations.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// The session's configuration.
    pub fn config(&self) -> &GaConfig {
        &self.config
    }

    fn rng_state(&self) -> [u64; 4] {
        self.rng.to_state()
    }

    /// Sets the retry/quarantine policy for all subsequent steps.
    ///
    /// The policy is deliberately not checkpointed: a resumed campaign must
    /// re-apply the same policy (the CLI derives it from the same flags) or
    /// accept different supervision decisions in the replay window.
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid.
    pub fn set_supervision(&mut self, policy: SupervisionPolicy) {
        policy.validate().expect("invalid supervision policy");
        self.policy = policy;
    }

    /// Installs (or clears) a fault-injection plan (test instrumentation).
    pub fn set_hazards(&mut self, hazards: Option<HazardPlan>) {
        self.hazards = hazards;
    }

    /// Every supervision incident so far, in stream order.
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// Chromosomes evaluated on the substrate since the last call, with
    /// their raw (user-orientation) fitness values, in evaluation order.
    pub fn take_newly_evaluated(&mut self) -> Vec<(G, f64)> {
        std::mem::take(&mut self.newly)
    }

    /// Supervision incidents since the last call, in stream order — the
    /// journal acks these next to the evaluated-virus records.
    pub fn take_new_incidents(&mut self) -> Vec<Incident> {
        std::mem::take(&mut self.fresh_incidents)
    }

    /// Captures the complete engine state between steps.
    pub fn checkpoint(&self) -> EngineState<G> {
        EngineState {
            config: self.config,
            rng: self.rng.to_state(),
            population: self.population.clone(),
            scores: self.scores.clone(),
            leaderboard: self.leaderboard.entries.clone(),
            history: self.history.clone(),
            eval_stats: self.eval_stats.clone(),
            cache: self.cache.entries(),
            incidents: self.incidents.clone(),
            generation: self.generation,
            initialized: self.initialized,
            converged: self.converged,
            similarity: self.similarity,
            best_so_far: self.best_so_far,
            stagnant: self.stagnant,
            done: self.done,
        }
    }

    /// Runs one step: the first call scores the initial population, each
    /// later call runs exactly one generation (breed, score, update the
    /// convergence state). A no-op once [`done`](SearchSession::done).
    ///
    /// Evaluation runs on per-generation scoped threads — the pre-pool
    /// executor, kept as the baseline the persistent pool
    /// ([`step_pooled`](SearchSession::step_pooled)) is benched and
    /// differentially tested against. Both paths are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty or an evaluation worker panics.
    pub fn step<F: ParallelFitness<G>>(&mut self, replicas: &mut [F]) {
        assert!(
            !replicas.is_empty(),
            "at least one evaluation worker is required"
        );
        if self.done {
            return;
        }
        self.eval_stats.workers = replicas.len();
        let Some(round) = self.begin_round() else {
            return;
        };
        let execution = if round.plan.pending.is_empty() {
            None
        } else {
            Some(run_round_scoped(
                &round.plan,
                replicas,
                &mut self.dead_workers,
                &self.policy,
                self.hazards.as_ref(),
            ))
        };
        self.finish_round(round, execution);
    }

    /// Runs one step on a persistent evaluation pool — the production
    /// executor: candidates become tasks in the pool's work-stealing
    /// deques, evaluated by long-lived workers whose replica caches stay
    /// warm across generations. Bit-identical to
    /// [`step`](SearchSession::step) for any worker count, any steal
    /// interleaving and any hazard schedule, because verdicts are keyed by
    /// the campaign-dense evaluation index and drained in dealing order.
    ///
    /// # Panics
    ///
    /// Panics if a pool worker panics outside the supervised evaluation.
    pub fn step_pooled<F>(&mut self, pool: &EvalPool<G, F>)
    where
        G: Send + 'static,
        F: ParallelFitness<G> + 'static,
    {
        if self.done {
            return;
        }
        self.eval_stats.workers = pool.workers();
        let Some(round) = self.begin_round() else {
            return;
        };
        let execution = if round.plan.pending.is_empty() {
            None
        } else {
            let submission = RoundSubmission {
                tasks: round.plan.pool_tasks(),
                policy: self.policy,
                hazards: self.hazards.clone(),
            };
            let mut executions = pool.execute(vec![submission]);
            debug_assert_eq!(executions.len(), 1);
            executions.pop()
        };
        self.finish_round(round, execution);
    }

    /// Opens one step: breeds the next population (when past the initial
    /// round) and runs the cache pre-pass, yielding the round's plan.
    /// `None` once the search is done. The caller must pass the plan to an
    /// executor (scoped or pooled) iff it has pending candidates, then
    /// hand the outcome to [`finish_round`](SearchSession::finish_round) —
    /// the seam that lets the campaign scheduler interleave many sessions'
    /// rounds into one pool batch.
    pub(crate) fn begin_round(&mut self) -> Option<PreparedRound<G>> {
        if self.done {
            return None;
        }
        let sign = if self.config.minimize { -1.0 } else { 1.0 };
        if self.initialized {
            self.history.push(round_stats(
                self.generation,
                &self.scores,
                sign,
                self.similarity,
            ));
            self.population =
                breed_next(&self.config, &self.population, &self.scores, &mut self.rng);
        }
        let started = Instant::now();
        let plan = plan_round(&self.population, &mut self.cache, &mut self.eval_stats);
        Some(PreparedRound { plan, started })
    }

    /// Closes one step: drains the executed round (in canonical dealing
    /// order), sequences its incidents, and advances the convergence
    /// state. `execution` is `None` exactly when the round had no pending
    /// candidates.
    pub(crate) fn finish_round(
        &mut self,
        round: PreparedRound<G>,
        execution: Option<RoundExecution>,
    ) {
        let sign = if self.config.minimize { -1.0 } else { 1.0 };
        let was_initialized = self.initialized;
        let (raw, pending_incidents) = drain_round(
            round.plan,
            execution,
            &mut self.cache,
            &mut self.newly,
            &mut self.eval_stats,
        );
        // Sequence the round's (already canonically ordered) incidents
        // behind everything recorded so far; a resume restores the counter
        // from the checkpoint, so the numbering survives interruptions.
        for pending in pending_incidents {
            let incident = Incident {
                seq: self.incidents.len() as u64,
                eval_index: pending.eval_index,
                kind: pending.kind,
            };
            self.incidents.push(incident.clone());
            self.fresh_incidents.push(incident);
        }
        self.eval_stats
            .generation_eval_seconds
            .push(round.started.elapsed().as_secs_f64());
        self.scores = raw.into_iter().map(|v| sign * v).collect();
        for (g, s) in self.population.iter().zip(&self.scores) {
            self.leaderboard.offer(g, *s);
        }
        self.similarity = self.leaderboard.similarity();
        if !was_initialized {
            self.best_so_far = nan_last_max(&self.scores);
            self.stagnant = 0;
            self.initialized = true;
            return;
        }
        let generation = self.generation;
        let generation_best = nan_last_max(&self.scores);
        if nan_last_cmp(generation_best, self.best_so_far) == std::cmp::Ordering::Greater {
            self.best_so_far = generation_best;
            self.stagnant = 0;
        } else {
            self.stagnant += 1;
        }
        self.generation += 1;
        if self.leaderboard.is_full()
            && self.similarity >= self.config.convergence_threshold
            && self.stagnant >= self.config.stagnation_window
        {
            self.converged = true;
            self.history.push(round_stats(
                generation + 1,
                &self.scores,
                sign,
                self.similarity,
            ));
            self.done = true;
        } else if self.generation >= self.config.max_generations {
            self.done = true;
        }
    }

    /// Records the worker count a scheduler is about to run this session
    /// on (what [`step`](SearchSession::step) does with `replicas.len()`).
    pub(crate) fn note_workers(&mut self, workers: usize) {
        self.eval_stats.workers = workers;
    }

    /// The session's supervision policy (for the scheduler's submissions).
    pub(crate) fn supervision_policy(&self) -> SupervisionPolicy {
        self.policy
    }

    /// The session's hazard plan, shared (for the scheduler's submissions).
    pub(crate) fn hazard_plan(&self) -> Option<HazardPlan> {
        self.hazards.clone()
    }

    /// The evaluation bookkeeping so far (counters, timings, pool
    /// observability) — what [`SearchResult::eval_stats`] will carry.
    pub fn eval_stats(&self) -> &EvalStats {
        &self.eval_stats
    }

    /// The current leaderboard, best-first, in **user orientation** (the
    /// sign flip for `minimize` searches already applied) — what a live
    /// progress stream reports between steps.
    pub fn leaderboard(&self) -> Vec<(G, f64)> {
        let sign = if self.config.minimize { -1.0 } else { 1.0 };
        self.leaderboard
            .entries
            .iter()
            .map(|(g, s)| (g.clone(), sign * s))
            .collect()
    }

    /// Whether the similarity criterion has been met so far.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Consumes the session into a [`SearchResult`].
    ///
    /// # Panics
    ///
    /// Panics if nothing was ever evaluated (no [`step`] call).
    ///
    /// [`step`]: SearchSession::step
    pub fn finish(self) -> SearchResult<G> {
        let sign = if self.config.minimize { -1.0 } else { 1.0 };
        let leaderboard: Vec<(G, f64)> = self
            .leaderboard
            .entries
            .into_iter()
            .map(|(g, s)| (g, sign * s))
            .collect();
        let (best, best_fitness) = leaderboard[0].clone();
        SearchResult {
            best,
            best_fitness,
            leaderboard,
            generations: self.generation,
            converged: self.converged,
            similarity: self.similarity,
            history: self.history,
            eval_stats: self.eval_stats,
            incidents: self.incidents,
        }
    }
}

/// The serializable between-steps state of a [`SearchSession`]: everything
/// the next generation depends on, including the raw RNG stream position
/// and the evaluation-cache contents. Persisting this per generation is
/// what makes a resumed search bit-identical to an uninterrupted one.
#[derive(Debug, Clone)]
pub struct EngineState<G> {
    /// The search configuration (pinned: a resume ignores any other).
    pub config: GaConfig,
    /// Raw xoshiro256** RNG state.
    pub rng: [u64; 4],
    /// The current population.
    pub population: Vec<G>,
    /// Engine-orientation scores of the current population.
    pub scores: Vec<f64>,
    /// Leaderboard entries, best-first (engine orientation).
    pub leaderboard: Vec<(G, f64)>,
    /// Per-generation history so far.
    pub history: Vec<GenerationStats>,
    /// Evaluation counters and timing so far.
    pub eval_stats: EvalStats,
    /// The evaluation cache in least-recently-used-first order
    /// (quarantined chromosomes carry `NaN`, which round-trips through the
    /// JSON checkpoint as `null`). Bounded: old entries are evicted, so
    /// this no longer grows with the full evaluation history.
    pub cache: Vec<(G, f64)>,
    /// Every supervision incident so far, in stream order.
    pub incidents: Vec<Incident>,
    /// Completed generations.
    pub generation: u32,
    /// Whether the initial population has been scored.
    pub initialized: bool,
    /// Whether the similarity criterion was met.
    pub converged: bool,
    /// Current mean pairwise leaderboard similarity.
    pub similarity: f64,
    /// Best engine-orientation score seen so far.
    pub best_so_far: f64,
    /// Generations without a new best.
    pub stagnant: u32,
    /// Whether the search has finished.
    pub done: bool,
}

impl<G: Serialize> EngineState<G> {
    /// Serializes to compact JSON (one line — journal-embeddable).
    ///
    /// # Errors
    ///
    /// Propagates serialization failures.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }
}

impl<G: Deserialize> EngineState<G> {
    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Propagates parse failures.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

// The derive macro does not handle generic types, so the state serializes
// by hand — a plain field map, like the derive would emit.
impl<G: Serialize> Serialize for EngineState<G> {
    fn serialize(&self) -> Value {
        Value::Map(vec![
            ("config".into(), self.config.serialize()),
            ("rng".into(), self.rng.serialize()),
            ("population".into(), self.population.serialize()),
            ("scores".into(), self.scores.serialize()),
            ("leaderboard".into(), self.leaderboard.serialize()),
            ("history".into(), self.history.serialize()),
            ("eval_stats".into(), self.eval_stats.serialize()),
            ("cache".into(), self.cache.serialize()),
            ("incidents".into(), self.incidents.serialize()),
            ("generation".into(), self.generation.serialize()),
            ("initialized".into(), self.initialized.serialize()),
            ("converged".into(), self.converged.serialize()),
            ("similarity".into(), self.similarity.serialize()),
            ("best_so_far".into(), self.best_so_far.serialize()),
            ("stagnant".into(), self.stagnant.serialize()),
            ("done".into(), self.done.serialize()),
        ])
    }
}

impl<G: Deserialize> Deserialize for EngineState<G> {
    fn deserialize(value: &Value) -> Result<Self, serde::Error> {
        let map = value
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected EngineState map"))?;
        fn req<'a>(
            map: &'a [(String, Value)],
            key: &'static str,
        ) -> Result<&'a Value, serde::Error> {
            serde::__find(map, key)
                .ok_or_else(|| serde::Error::custom(format!("missing EngineState field `{key}`")))
        }
        Ok(EngineState {
            config: Deserialize::deserialize(req(map, "config")?)?,
            rng: Deserialize::deserialize(req(map, "rng")?)?,
            population: Deserialize::deserialize(req(map, "population")?)?,
            scores: Deserialize::deserialize(req(map, "scores")?)?,
            leaderboard: Deserialize::deserialize(req(map, "leaderboard")?)?,
            history: Deserialize::deserialize(req(map, "history")?)?,
            eval_stats: Deserialize::deserialize(req(map, "eval_stats")?)?,
            cache: Deserialize::deserialize(req(map, "cache")?)?,
            // Absent in pre-supervision checkpoints: default to no
            // incidents rather than rejecting the state.
            incidents: match serde::__find(map, "incidents") {
                Some(value) => Deserialize::deserialize(value)?,
                None => Vec::new(),
            },
            generation: Deserialize::deserialize(req(map, "generation")?)?,
            initialized: Deserialize::deserialize(req(map, "initialized")?)?,
            converged: Deserialize::deserialize(req(map, "converged")?)?,
            similarity: Deserialize::deserialize(req(map, "similarity")?)?,
            best_so_far: Deserialize::deserialize(req(map, "best_so_far")?)?,
            stagnant: Deserialize::deserialize(req(map, "stagnant")?)?,
            done: Deserialize::deserialize(req(map, "done")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::FnFitness;
    use crate::genome::{BitGenome, IntGenome};

    #[test]
    fn config_validation() {
        assert!(GaConfig::paper_defaults().validate().is_ok());
        let mut c = GaConfig::paper_defaults();
        c.population_size = 1;
        assert!(c.validate().is_err());
        let mut c = GaConfig::paper_defaults();
        c.mutation_prob = 1.5;
        assert!(c.validate().is_err());
        let mut c = GaConfig::paper_defaults();
        c.max_generations = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn popcount_calibration_reaches_optimum_in_tens_of_generations() {
        // The paper's §V calibration: with mutation 0.5 / crossover 0.9 /
        // population 40 the GA solves 64-bit popcount in ~80 generations.
        let mut engine = GaEngine::new(GaConfig::paper_defaults(), 11);
        let mut fitness = FnFitness::new(|g: &BitGenome| g.count_ones() as f64);
        let result = engine.run(|rng| BitGenome::random(rng, 64), &mut fitness);
        assert!(
            result.best_fitness >= 63.0,
            "best = {}",
            result.best_fitness
        );
        assert!(result.converged, "popcount search should converge");
        assert!(
            (20..=250).contains(&result.generations),
            "generations = {}",
            result.generations
        );
    }

    #[test]
    fn history_best_is_monotone_with_elitism() {
        let mut engine = GaEngine::new(GaConfig::paper_defaults(), 3);
        let mut fitness = FnFitness::new(|g: &BitGenome| g.count_ones() as f64);
        let result = engine.run(|rng| BitGenome::random(rng, 64), &mut fitness);
        for w in result.history.windows(2) {
            assert!(w[1].best >= w[0].best - 1e-9, "best dropped: {w:?}");
        }
    }

    #[test]
    fn minimization_mode_minimizes() {
        let mut config = GaConfig::paper_defaults();
        config.minimize = true;
        let mut engine = GaEngine::new(config, 5);
        let mut fitness = FnFitness::new(|g: &BitGenome| g.count_ones() as f64);
        let result = engine.run(|rng| BitGenome::random(rng, 64), &mut fitness);
        assert!(result.best_fitness <= 1.0, "best = {}", result.best_fitness);
        // Leaderboard is sorted best-first in the *minimization* sense.
        for w in result.leaderboard.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn flat_fitness_never_converges() {
        // A constant fitness keeps the leaderboard at its first 40 distinct
        // random entries: similarity stays ~0.5 and the budget expires —
        // the paper's non-convergent UE/access searches behave like this.
        let mut config = GaConfig::paper_defaults();
        config.max_generations = 60;
        let mut engine = GaEngine::new(config, 9);
        let mut fitness = FnFitness::new(|_: &BitGenome| 1.0);
        let result = engine.run(|rng| BitGenome::random(rng, 256), &mut fitness);
        assert!(!result.converged);
        assert_eq!(result.generations, 60);
        assert!(result.similarity < 0.65, "similarity {}", result.similarity);
    }

    #[test]
    fn noisy_plateau_resists_convergence() {
        // A saturating landscape with evaluation noise: every genome with
        // at least half its bits set scores on the same plateau, and noise
        // reorders them. The leaderboard keeps collecting *unrelated*
        // plateau members, capping its similarity — the mechanism behind
        // the paper's non-convergent access-pattern searches (Fig. 11,
        // SMF ≈ 0.5: disturbance saturates, VRT adds noise).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut config = GaConfig::paper_defaults();
        config.max_generations = 120;
        let mut engine = GaEngine::new(config, 21);
        let mut noise = StdRng::seed_from_u64(99);
        let mut fitness = FnFitness::new(move |g: &BitGenome| {
            let plateau = (g.count_ones() as f64).min(32.0);
            plateau * 10.0 + noise.gen_range(0.0..30.0)
        });
        let result = engine.run(|rng| BitGenome::random(rng, 64), &mut fitness);
        assert!(!result.converged, "plateau search must not converge");
        assert!(result.similarity < 0.8, "similarity {}", result.similarity);
    }

    #[test]
    fn leaderboard_is_distinct_and_sorted() {
        let mut engine = GaEngine::new(GaConfig::paper_defaults(), 13);
        let mut fitness = FnFitness::new(|g: &BitGenome| g.count_ones() as f64);
        let result = engine.run(|rng| BitGenome::random(rng, 64), &mut fitness);
        assert_eq!(result.leaderboard.len(), 40);
        for w in result.leaderboard.windows(2) {
            assert!(w[0].1 >= w[1].1, "leaderboard must be sorted best-first");
        }
        for i in 0..result.leaderboard.len() {
            for j in (i + 1)..result.leaderboard.len() {
                assert_ne!(
                    result.leaderboard[i].0, result.leaderboard[j].0,
                    "leaderboard entries must be distinct"
                );
            }
        }
        assert_eq!(result.best_fitness, result.leaderboard[0].1);
    }

    #[test]
    fn int_genome_search_works() {
        // Maximize the sum of 16 genes in [0, 20].
        let mut engine = GaEngine::new(GaConfig::paper_defaults(), 17);
        let mut fitness = FnFitness::new(|g: &IntGenome| g.values().iter().sum::<u64>() as f64);
        let result = engine.run(|rng| IntGenome::random(rng, 16, 0, 20), &mut fitness);
        assert!(
            result.best_fitness >= 0.9 * 320.0,
            "best = {}",
            result.best_fitness
        );
    }

    #[test]
    fn run_from_resumes_a_seeded_population() {
        // Seeding the population near the optimum lets the leaderboard fill
        // with near-optimal variants quickly.
        let mut config = GaConfig::paper_defaults();
        let mut engine = GaEngine::new(config, 19);
        let mut fitness = FnFitness::new(|g: &BitGenome| g.count_ones() as f64);
        let seeded = vec![BitGenome::from_words(&[u64::MAX], 64); 40];
        let seeded_result = engine.run_from(seeded, &mut fitness);
        assert_eq!(seeded_result.best_fitness, 64.0);
        config.max_generations = seeded_result.generations;
        // A fresh random search given the same (small) budget does worse on
        // its first generations.
        let mut fresh_engine = GaEngine::new(config, 19);
        let fresh = fresh_engine.run(|rng| BitGenome::random(rng, 64), &mut fitness);
        assert!(seeded_result.generations <= fresh.generations);
    }

    #[test]
    #[should_panic(expected = "population size mismatch")]
    fn run_from_validates_population_size() {
        let mut engine = GaEngine::new(GaConfig::paper_defaults(), 1);
        let mut fitness = FnFitness::new(|g: &BitGenome| g.count_ones() as f64);
        engine.run_from(vec![BitGenome::zeros(8); 3], &mut fitness);
    }

    /// A pure, replicable fitness that counts how many substrate
    /// evaluations actually ran across all replicas.
    struct CountingPopcount {
        executed: std::sync::Arc<std::sync::atomic::AtomicU64>,
    }

    impl CountingPopcount {
        fn new() -> Self {
            CountingPopcount {
                executed: std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0)),
            }
        }

        fn executed(&self) -> u64 {
            self.executed.load(std::sync::atomic::Ordering::SeqCst)
        }
    }

    impl Fitness<BitGenome> for CountingPopcount {
        fn evaluate(&mut self, genome: &BitGenome) -> f64 {
            self.executed
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            genome.count_ones() as f64
        }
    }

    impl ParallelFitness<BitGenome> for CountingPopcount {
        fn replicate(&self) -> Self {
            CountingPopcount {
                executed: self.executed.clone(),
            }
        }
    }

    #[test]
    fn parallel_search_is_bit_identical_to_serial() {
        // The tentpole acceptance criterion: the same seed produces the
        // same SearchResult (leaderboard, history, everything but timing)
        // through the legacy serial path and through the parallel path at
        // any worker count.
        let serial = {
            let mut engine = GaEngine::new(GaConfig::paper_defaults(), 29);
            let mut fitness = CountingPopcount::new();
            engine.run(|rng| BitGenome::random(rng, 64), &mut fitness)
        };
        for workers in [1usize, 4] {
            let mut engine = GaEngine::new(GaConfig::paper_defaults(), 29);
            let mut fitness = CountingPopcount::new();
            let parallel =
                engine.run_parallel(workers, |rng| BitGenome::random(rng, 64), &mut fitness);
            assert_eq!(parallel.best, serial.best, "workers={workers}");
            assert_eq!(parallel.best_fitness, serial.best_fitness);
            assert_eq!(parallel.leaderboard, serial.leaderboard);
            assert_eq!(parallel.generations, serial.generations);
            assert_eq!(parallel.converged, serial.converged);
            assert_eq!(parallel.similarity, serial.similarity);
            assert_eq!(parallel.history, serial.history);
            assert_eq!(parallel.eval_stats.workers, workers);
        }
    }

    #[test]
    fn parallel_worker_counts_agree_on_eval_stats() {
        let run = |workers| {
            let mut engine = GaEngine::new(GaConfig::paper_defaults(), 31);
            let mut fitness = CountingPopcount::new();
            let result =
                engine.run_parallel(workers, |rng| BitGenome::random(rng, 64), &mut fitness);
            (result, fitness.executed())
        };
        let (one, one_executed) = run(1);
        let (four, four_executed) = run(4);
        // The cache makes the substrate work identical, not just the
        // scores: every distinct chromosome runs exactly once either way.
        assert_eq!(one.eval_stats.evaluations, four.eval_stats.evaluations);
        assert_eq!(one.eval_stats.cache_hits, four.eval_stats.cache_hits);
        assert_eq!(one.eval_stats.cache_size, four.eval_stats.cache_size);
        assert_eq!(one.eval_stats.evaluations, one_executed);
        assert_eq!(four.eval_stats.evaluations, four_executed);
        assert_eq!(
            one.eval_stats.generation_eval_seconds.len(),
            four.eval_stats.generation_eval_seconds.len()
        );
    }

    #[test]
    fn eval_cache_hits_repeats_and_misses_mutants() {
        let mut config = GaConfig::paper_defaults();
        config.population_size = 8;
        config.max_generations = 1;
        let mut engine = GaEngine::new(config, 3);
        let mut fitness = CountingPopcount::new();
        let a = BitGenome::from_words(&[0x00FF], 64);
        let mut b = a.clone();
        b.set_bit(63, true); // a mutated copy must miss the cache
        let mut population = vec![a; 4];
        population.extend(std::iter::repeat_n(b, 4));
        let result = engine.run_from_parallel(2, population, &mut fitness);
        // Initial round: 8 slots but only 2 distinct chromosomes.
        assert!(
            result.eval_stats.cache_hits >= 6,
            "stats: {:?}",
            result.eval_stats
        );
        // Cache transparency: counted evaluations are exactly the substrate
        // runs that happened, everything else was served from the cache.
        assert_eq!(result.eval_stats.evaluations, fitness.executed());
        assert_eq!(
            result.eval_stats.evaluations + result.eval_stats.cache_hits,
            2 * 8,
            "every population slot is either evaluated or a cache hit"
        );
        assert_eq!(result.eval_stats.workers, 2);
        // Under the cap nothing evicts, so the cache holds exactly every
        // distinct chromosome the substrate ever ran.
        assert_eq!(
            result.eval_stats.cache_size as u64,
            result.eval_stats.evaluations
        );
        // One initial round + one generation were timed.
        assert_eq!(result.eval_stats.generation_eval_seconds.len(), 2);
        assert!(result.eval_stats.eval_seconds() >= 0.0);
    }

    #[test]
    fn serial_path_reports_eval_stats_without_cache() {
        let mut engine = GaEngine::new(GaConfig::paper_defaults(), 7);
        let mut fitness = CountingPopcount::new();
        let result = engine.run(|rng| BitGenome::random(rng, 64), &mut fitness);
        assert_eq!(result.eval_stats.workers, 1);
        assert_eq!(result.eval_stats.cache_hits, 0);
        assert_eq!(result.eval_stats.cache_size, 0);
        assert_eq!(result.eval_stats.evaluations, fitness.executed());
        assert_eq!(
            result.eval_stats.generation_eval_seconds.len() as u32,
            result.generations + 1
        );
    }

    #[test]
    fn eval_cache_evicts_oldest_and_promotes_on_hit() {
        let g = |w: u64| BitGenome::from_words(&[w], 64);
        let mut cache = EvalCache::with_cap(3);
        cache.insert(g(1), 1.0);
        cache.insert(g(2), 2.0);
        cache.insert(g(3), 3.0);
        // A hit promotes: 1 becomes most recently used.
        assert_eq!(cache.lookup(&g(1)), Some(1.0));
        // Beyond the cap the least recently used entry (now 2) goes.
        cache.insert(g(4), 4.0);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.lookup(&g(2)), None);
        assert_eq!(
            cache.entries(),
            vec![(g(3), 3.0), (g(1), 1.0), (g(4), 4.0)],
            "entries are queue order, oldest first"
        );
        // Re-inserting an existing chromosome refreshes instead of growing.
        cache.insert(g(3), 3.5);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.lookup(&g(3)), Some(3.5));
    }

    #[test]
    fn eval_cache_round_trips_checkpoint_entries() {
        let g = |w: u64| BitGenome::from_words(&[w], 64);
        let mut cache = EvalCache::with_cap(4);
        for w in 0..4 {
            cache.insert(g(w), w as f64);
        }
        assert_eq!(cache.lookup(&g(0)), Some(0.0)); // scramble the order
        let entries = cache.entries();
        let rebuilt = EvalCache::from_entries(entries.clone());
        assert_eq!(rebuilt.entries(), entries, "resume preserves recency");
    }

    #[test]
    fn eval_cache_stays_bounded_across_a_long_search() {
        // More distinct chromosomes than the cap: the cache (and therefore
        // every checkpoint) stays at the cap instead of growing with the
        // evaluation history.
        let mut cache = EvalCache::new();
        for w in 0..(EVAL_CACHE_CAP as u64 + 100) {
            cache.insert(BitGenome::from_words(&[w], 64), w as f64);
        }
        assert_eq!(cache.len(), EVAL_CACHE_CAP);
        assert_eq!(
            cache.lookup(&BitGenome::from_words(&[0], 64)),
            None,
            "the oldest entries were evicted"
        );
        assert_eq!(
            cache.lookup(&BitGenome::from_words(&[EVAL_CACHE_CAP as u64 + 99], 64)),
            Some(EVAL_CACHE_CAP as f64 + 99.0),
            "the newest entries survive"
        );
    }

    #[test]
    fn checkpoints_without_cache_size_default_to_zero() {
        // Checkpoints written before the cache was bounded have no
        // `cache_size` field in their `eval_stats`; they must still load.
        let mut config = GaConfig::paper_defaults();
        config.population_size = 6;
        config.max_generations = 2;
        let mut session =
            SearchSession::start(config, 5, |rng: &mut StdRng| BitGenome::random(rng, 32));
        let mut replicas = vec![CountingPopcount::new()];
        session.step(&mut replicas);
        let json = session.checkpoint().to_json().unwrap();
        assert!(json.contains("\"cache_size\""));
        let needle = "\"cache_size\":";
        let at = json.find(needle).unwrap();
        let rest = &json[at + needle.len()..];
        let end = rest.find(',').unwrap();
        let legacy = format!("{}{}", &json[..at], &rest[end + 1..]);
        let state = EngineState::<BitGenome>::from_json(&legacy).unwrap();
        assert_eq!(state.eval_stats.cache_size, 0);
        // And the rest of the state still resumes.
        let mut resumed = SearchSession::resume(state);
        while !resumed.done() {
            resumed.step(&mut replicas);
        }
    }

    #[test]
    #[should_panic(expected = "at least one evaluation worker")]
    fn zero_workers_panics() {
        let mut engine = GaEngine::new(GaConfig::paper_defaults(), 1);
        let mut fitness = CountingPopcount::new();
        engine.run_parallel(0, |rng| BitGenome::random(rng, 64), &mut fitness);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut engine = GaEngine::new(GaConfig::paper_defaults(), seed);
            let mut fitness = FnFitness::new(|g: &BitGenome| g.count_ones() as f64);
            engine
                .run(|rng| BitGenome::random(rng, 64), &mut fitness)
                .best_fitness
        };
        assert_eq!(run(23), run(23));
    }

    #[test]
    fn session_resume_from_json_checkpoint_is_bit_identical() {
        // Kill the session at *every* step boundary, serialize the
        // checkpoint to JSON (exactly what the journal persists), drop the
        // live session, and continue from the JSON alone — even with a
        // different worker count. Everything except wall-clock timing must
        // match the uninterrupted run.
        let mut config = GaConfig::paper_defaults();
        config.population_size = 12;
        config.max_generations = 12;
        config.stagnation_window = 4;
        let init = |rng: &mut StdRng| BitGenome::random(rng, 32);
        let clean = {
            let mut session = SearchSession::start(config, 77, init);
            let mut replicas = vec![CountingPopcount::new()];
            while !session.done() {
                session.step(&mut replicas);
            }
            session.finish()
        };
        for boundary in 0.. {
            let mut session = SearchSession::start(config, 77, init);
            let mut replicas = vec![CountingPopcount::new()];
            for _ in 0..boundary {
                session.step(&mut replicas);
            }
            let finished_already = session.done();
            let json = session.checkpoint().to_json().unwrap();
            drop(session); // the "crash"
            let state = EngineState::<BitGenome>::from_json(&json).unwrap();
            let mut resumed = SearchSession::resume(state);
            let mut replicas = vec![CountingPopcount::new(), CountingPopcount::new()];
            while !resumed.done() {
                resumed.step(&mut replicas);
            }
            let result = resumed.finish();
            assert_eq!(result.best, clean.best, "boundary={boundary}");
            assert_eq!(result.best_fitness, clean.best_fitness);
            assert_eq!(result.leaderboard, clean.leaderboard);
            assert_eq!(result.generations, clean.generations);
            assert_eq!(result.converged, clean.converged);
            assert_eq!(result.similarity, clean.similarity);
            assert_eq!(result.history, clean.history);
            // Counters resume from the checkpoint, so totals match too.
            assert_eq!(result.eval_stats.evaluations, clean.eval_stats.evaluations);
            assert_eq!(result.eval_stats.cache_hits, clean.eval_stats.cache_hits);
            if finished_already {
                break;
            }
        }
    }

    use crate::supervise::{Hazard, HazardPlan};

    /// A hazard plan exercising every fault class: a caught panic, a
    /// transient fault that succeeds on retry, a transient run that
    /// exhausts its retries, a step-budget blowout, and a worker death.
    fn full_hazard_plan() -> HazardPlan {
        let plan = HazardPlan::new();
        plan.schedule(2, Hazard::Panic);
        plan.schedule(5, Hazard::Transient); // retried, then scores normally
        for attempt in 0..4 {
            plan.schedule_attempt(9, attempt, Hazard::Transient); // exhausts retries
        }
        plan.schedule(11, Hazard::BudgetBlowout);
        plan.schedule(14, Hazard::KillWorker);
        plan
    }

    fn hazard_run(workers: usize, plan: Option<HazardPlan>) -> SearchResult<BitGenome> {
        let mut config = GaConfig::paper_defaults();
        config.population_size = 12;
        config.max_generations = 10;
        let mut engine = GaEngine::new(config, 53);
        engine.set_hazards(plan);
        let mut fitness = CountingPopcount::new();
        engine.run_parallel(workers, |rng| BitGenome::random(rng, 32), &mut fitness)
    }

    #[test]
    fn supervised_search_survives_hazards_bit_identically_across_workers() {
        let reference = hazard_run(1, Some(full_hazard_plan()));
        assert_eq!(
            reference.quarantined(),
            3,
            "panic, exhausted transient and budget blowout all quarantine"
        );
        assert_eq!(reference.workers_lost(), 1);
        assert!(
            !reference.incidents.is_empty() && reference.best_fitness.is_finite(),
            "the campaign completes with a real winner despite the hazards"
        );
        for workers in [2usize, 4] {
            let run = hazard_run(workers, Some(full_hazard_plan()));
            assert_eq!(run.best, reference.best, "workers={workers}");
            assert_eq!(run.best_fitness, reference.best_fitness);
            assert_eq!(run.leaderboard, reference.leaderboard);
            assert_eq!(run.history, reference.history);
            assert_eq!(run.generations, reference.generations);
            assert_eq!(run.incidents, reference.incidents);
            assert_eq!(run.eval_stats.evaluations, reference.eval_stats.evaluations);
            assert_eq!(run.eval_stats.cache_hits, reference.eval_stats.cache_hits);
        }
    }

    #[test]
    fn transient_retries_and_worker_loss_leave_the_search_outcome_unchanged() {
        // Recoverable hazards (a retried transient, a dead worker) must not
        // perturb the search at all: same scores, same winner, same record
        // stream as a hazard-free run — only the incident log differs.
        let clean = hazard_run(3, None);
        let plan = HazardPlan::new();
        plan.schedule(4, Hazard::Transient);
        plan.schedule(7, Hazard::KillWorker);
        plan.schedule(16, Hazard::KillWorker);
        let hazarded = hazard_run(3, Some(plan));
        assert_eq!(hazarded.best, clean.best);
        assert_eq!(hazarded.best_fitness, clean.best_fitness);
        assert_eq!(hazarded.leaderboard, clean.leaderboard);
        assert_eq!(hazarded.history, clean.history);
        assert_eq!(
            hazarded.eval_stats.evaluations,
            clean.eval_stats.evaluations
        );
        assert!(clean.incidents.is_empty());
        assert_eq!(hazarded.workers_lost(), 2);
        assert_eq!(hazarded.quarantined(), 0);
        // The pool shrank but survivors finished the search.
        assert_eq!(hazarded.eval_stats.workers, 1);
    }

    #[test]
    fn losing_the_last_worker_revives_the_pool() {
        let plan = HazardPlan::new();
        plan.schedule(3, Hazard::KillWorker);
        plan.schedule(8, Hazard::KillWorker);
        let run = hazard_run(1, Some(plan));
        assert_eq!(run.workers_lost(), 2, "the lone worker died twice");
        assert!(run.best_fitness.is_finite());
        assert_eq!(run.eval_stats.workers, 1);
    }

    #[test]
    fn incident_sequence_numbers_are_dense_and_ordered() {
        let run = hazard_run(2, Some(full_hazard_plan()));
        for (i, incident) in run.incidents.iter().enumerate() {
            assert_eq!(incident.seq, i as u64);
        }
        // Within the stream, evaluation indices never decrease.
        for w in run.incidents.windows(2) {
            assert!(w[0].eval_index <= w[1].eval_index);
        }
    }

    #[test]
    fn quarantined_chromosomes_never_reach_the_leaderboard_top() {
        // Quarantine every early evaluation: the engine keeps searching and
        // the winner is a finite-scored chromosome.
        let plan = HazardPlan::new();
        for index in 0..6 {
            plan.schedule(index, Hazard::Permanent);
        }
        let run = hazard_run(2, Some(plan));
        assert_eq!(run.quarantined(), 6);
        assert!(run.best_fitness.is_finite());
        // NaN-last order: every finite entry sorts above the NaN ones.
        let first_nan = run
            .leaderboard
            .iter()
            .position(|(_, v)| v.is_nan())
            .unwrap_or(run.leaderboard.len());
        assert!(run.leaderboard[..first_nan]
            .iter()
            .all(|(_, v)| v.is_finite()));
        assert!(run.leaderboard[first_nan..].iter().all(|(_, v)| v.is_nan()));
    }

    #[test]
    fn supervised_session_resume_replays_incidents_bit_identically() {
        // The hazard sweep's crash/resume twin: kill the session at every
        // boundary, resume from JSON (which must round-trip the NaN scores
        // of quarantined chromosomes), hand the resumed session a fresh
        // copy of the plan, and require the incident stream and the final
        // result to match the uninterrupted run.
        let mut config = GaConfig::paper_defaults();
        config.population_size = 12;
        config.max_generations = 8;
        config.stagnation_window = 3;
        let init = |rng: &mut StdRng| BitGenome::random(rng, 32);
        let make_plan = || {
            let plan = HazardPlan::new();
            plan.schedule(3, Hazard::Panic);
            plan.schedule(6, Hazard::Transient);
            plan.schedule(10, Hazard::KillWorker);
            plan.schedule(13, Hazard::BudgetBlowout);
            plan
        };
        let clean = {
            let mut session = SearchSession::start(config, 91, init);
            session.set_hazards(Some(make_plan()));
            let mut replicas = vec![CountingPopcount::new(), CountingPopcount::new()];
            while !session.done() {
                session.step(&mut replicas);
            }
            session.finish()
        };
        assert!(clean.quarantined() >= 2);
        for boundary in 0.. {
            let mut session = SearchSession::start(config, 91, init);
            session.set_hazards(Some(make_plan()));
            let mut replicas = vec![CountingPopcount::new(), CountingPopcount::new()];
            for _ in 0..boundary {
                session.step(&mut replicas);
            }
            let finished_already = session.done();
            let json = session.checkpoint().to_json().unwrap();
            drop(session); // the crash
            let state = EngineState::<BitGenome>::from_json(&json).unwrap();
            let mut resumed = SearchSession::resume(state);
            // A fresh plan: hazards at already-cached indices never re-fire
            // (the cache serves them), the rest fire exactly as scheduled.
            resumed.set_hazards(Some(make_plan()));
            let mut replicas = vec![CountingPopcount::new()];
            while !resumed.done() {
                resumed.step(&mut replicas);
            }
            let result = resumed.finish();
            assert_eq!(result.best, clean.best, "boundary={boundary}");
            assert_eq!(result.incidents, clean.incidents);
            assert_eq!(result.history, clean.history);
            assert_eq!(result.generations, clean.generations);
            assert_eq!(result.eval_stats.evaluations, clean.eval_stats.evaluations);
            if finished_already {
                break;
            }
        }
    }

    #[test]
    fn engine_state_round_trips_nan_cache_entries() {
        let mut config = GaConfig::paper_defaults();
        config.population_size = 4;
        config.max_generations = 2;
        let plan = HazardPlan::new();
        plan.schedule(0, Hazard::Permanent);
        let mut session = SearchSession::start(config, 7, |rng| BitGenome::random(rng, 16));
        session.set_hazards(Some(plan));
        let mut replicas = vec![CountingPopcount::new()];
        session.step(&mut replicas);
        let state = session.checkpoint();
        let nan_cached = state.cache.iter().filter(|(_, v)| v.is_nan()).count();
        assert_eq!(nan_cached, 1, "the quarantined chromosome is cached NaN");
        let json = state.to_json().unwrap();
        let back = EngineState::<BitGenome>::from_json(&json).unwrap();
        assert_eq!(
            back.cache.iter().filter(|(_, v)| v.is_nan()).count(),
            nan_cached,
            "NaN survives the JSON round-trip (as null)"
        );
        assert_eq!(back.incidents, session.incidents());
    }

    #[test]
    fn session_reports_newly_evaluated_chromosomes() {
        let mut config = GaConfig::paper_defaults();
        config.population_size = 8;
        config.max_generations = 3;
        let mut session = SearchSession::start(config, 41, |rng| BitGenome::random(rng, 16));
        let mut replicas = vec![CountingPopcount::new()];
        let mut seen = 0u64;
        while !session.done() {
            session.step(&mut replicas);
            let newly = session.take_newly_evaluated();
            for (g, v) in &newly {
                assert_eq!(*v, g.count_ones() as f64);
            }
            seen += newly.len() as u64;
            // Draining is idempotent until the next step.
            assert!(session.take_newly_evaluated().is_empty());
        }
        let result = session.finish();
        assert_eq!(
            seen, result.eval_stats.evaluations,
            "every substrate evaluation must be reported exactly once"
        );
    }
}
