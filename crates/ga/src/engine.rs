//! The GA main loop (paper §III-E).
//!
//! Convergence follows the paper's observable: Fig. 8 plots "the 40
//! discovered worst-case patterns which trigger the highest number of CEs"
//! and §V-A.1 says "GA stopped the search process when the similarity
//! function for the 40 worst-case 64-bit patterns exceeded 0.85". The
//! engine therefore maintains a **leaderboard** of the top-N *distinct*
//! chromosomes ever evaluated and stops when the leaderboard's mean pairwise
//! similarity crosses the threshold. A unimodal landscape funnels the
//! leaderboard into one neighbourhood (convergence); a multi-modal or
//! saturating landscape fills it with unrelated high scorers and the search
//! runs out its generation budget — exactly the paper's convergent CE
//! searches vs. non-convergent UE/access searches.

use crate::fitness::{Fitness, ParallelFitness};
use crate::genome::Genome;
use crate::ops::selection::SelectionScheme;
use dstress_stats::mean_pairwise;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::hash::Hash;
use std::time::Instant;

/// GA hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// Population size (paper optimum: 40). Also the leaderboard size.
    pub population_size: usize,
    /// Per-chromosome probability of undergoing mutation (paper optimum:
    /// 0.5).
    pub mutation_prob: f64,
    /// Per-gene perturbation rate applied when a chromosome mutates. `None`
    /// selects `1.5/len`.
    pub gene_rate: Option<f64>,
    /// Per-pair probability of crossover (paper optimum: 0.9); otherwise
    /// the parents are copied unchanged.
    pub crossover_prob: f64,
    /// Members copied verbatim into the next generation, best-first.
    pub elitism: usize,
    /// Parent-selection scheme.
    pub selection: SelectionScheme,
    /// Mean pairwise leaderboard similarity above which the search is
    /// converged (paper: 0.85).
    pub convergence_threshold: f64,
    /// Generation budget — the stand-in for the paper's two-week wall-clock
    /// cap on a search.
    pub max_generations: u32,
    /// Minimize instead of maximize (the paper's best-case data-pattern
    /// search flips the fitness function, §V-A.1).
    pub minimize: bool,
    /// Generations without a new best required (together with the
    /// similarity threshold) to declare convergence. Guards against
    /// stopping while the search is still climbing.
    pub stagnation_window: u32,
}

impl GaConfig {
    /// The paper's calibrated parameters: population 40, mutation 0.5,
    /// crossover 0.9 ("GA finds the 64-bit chromosome … for the minimum
    /// number of generations, which is about 80", §V).
    pub fn paper_defaults() -> Self {
        GaConfig {
            population_size: 40,
            mutation_prob: 0.5,
            gene_rate: None,
            crossover_prob: 0.9,
            elitism: 2,
            selection: SelectionScheme::Tournament { k: 2 },
            convergence_threshold: 0.85,
            max_generations: 400,
            minimize: false,
            stagnation_window: 20,
        }
    }

    /// Validates the hyper-parameters.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.population_size < 2 {
            return Err("population must have at least two members".into());
        }
        for (name, p) in [
            ("mutation_prob", self.mutation_prob),
            ("crossover_prob", self.crossover_prob),
            ("convergence_threshold", self.convergence_threshold),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must lie in [0, 1], got {p}"));
            }
        }
        if let Some(r) = self.gene_rate {
            if !(0.0..=1.0).contains(&r) {
                return Err(format!("gene_rate must lie in [0, 1], got {r}"));
            }
        }
        if self.max_generations == 0 {
            return Err("max_generations must be positive".into());
        }
        Ok(())
    }
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig::paper_defaults()
    }
}

/// Per-generation progress record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationStats {
    /// Generation index (0-based).
    pub generation: u32,
    /// Best objective value so far (in the user's orientation — larger is
    /// better for maximization searches, smaller for minimization).
    pub best: f64,
    /// Mean objective value of the generation.
    pub mean: f64,
    /// Mean pairwise similarity of the leaderboard.
    pub similarity: f64,
}

/// Evaluation-side bookkeeping for one search: how much substrate work the
/// fitness evaluations cost and how it was distributed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct EvalStats {
    /// Fitness evaluations actually executed on the substrate.
    pub evaluations: u64,
    /// Population slots served without touching the substrate because the
    /// chromosome had already been scored (elites, converged populations and
    /// within-generation duplicates). Only the parallel path caches; the
    /// legacy serial path always reports zero.
    pub cache_hits: u64,
    /// Evaluation worker threads used (1 = serial).
    pub workers: usize,
    /// Wall-clock seconds spent evaluating each scored round; index 0 is
    /// the initial population, subsequent entries are generations.
    pub generation_eval_seconds: Vec<f64>,
}

impl EvalStats {
    /// Total wall-clock seconds spent in fitness evaluation.
    pub fn eval_seconds(&self) -> f64 {
        self.generation_eval_seconds.iter().sum()
    }
}

/// The outcome of a GA search.
#[derive(Debug, Clone)]
pub struct SearchResult<G> {
    /// The best chromosome found.
    pub best: G,
    /// Its objective value (user orientation).
    pub best_fitness: f64,
    /// The leaderboard: the top distinct chromosomes discovered over the
    /// whole search, best-first — the paper's "40 worst-case patterns"
    /// (Fig. 8/9/10/11/12 plot exactly this set).
    pub leaderboard: Vec<(G, f64)>,
    /// Generations executed.
    pub generations: u32,
    /// Whether the similarity criterion was met (vs. hitting the budget —
    /// the paper reports both outcomes: CE searches converge, UE/access
    /// searches run out their two weeks).
    pub converged: bool,
    /// Final mean pairwise leaderboard similarity.
    pub similarity: f64,
    /// Per-generation history.
    pub history: Vec<GenerationStats>,
    /// Evaluation bookkeeping (substrate evaluations, cache hits, workers,
    /// wall-clock).
    pub eval_stats: EvalStats,
}

/// The top-N distinct chromosomes seen so far.
#[derive(Debug, Clone)]
struct Leaderboard<G> {
    entries: Vec<(G, f64)>,
    capacity: usize,
}

impl<G: Genome + PartialEq> Leaderboard<G> {
    fn new(capacity: usize) -> Self {
        Leaderboard {
            entries: Vec::with_capacity(capacity + 1),
            capacity,
        }
    }

    /// Rebuilds a leaderboard from checkpointed entries (already sorted).
    fn from_entries(entries: Vec<(G, f64)>, capacity: usize) -> Self {
        Leaderboard { entries, capacity }
    }

    /// Offers a scored chromosome (engine orientation: higher is better).
    fn offer(&mut self, genome: &G, score: f64) {
        if let Some(existing) = self.entries.iter_mut().find(|(g, _)| g == genome) {
            existing.1 = existing.1.max(score);
            self.entries
                .sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite fitness"));
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((genome.clone(), score));
        } else if score > self.entries.last().expect("leaderboard non-empty").1 {
            *self.entries.last_mut().expect("leaderboard non-empty") = (genome.clone(), score);
        } else {
            return;
        }
        self.entries
            .sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite fitness"));
    }

    fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    fn similarity(&self) -> f64 {
        let genomes: Vec<&G> = self.entries.iter().map(|(g, _)| g).collect();
        mean_pairwise(&genomes, |a, b| a.similarity(b))
    }
}

/// The search engine.
///
/// See the crate-level example.
#[derive(Debug)]
pub struct GaEngine {
    config: GaConfig,
    rng: StdRng,
}

impl GaEngine {
    /// Creates an engine with a validated configuration and a seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`GaConfig::validate`]).
    pub fn new(config: GaConfig, seed: u64) -> Self {
        config.validate().expect("invalid GA configuration");
        GaEngine {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &GaConfig {
        &self.config
    }

    /// Runs a search from a randomly initialized population ("the
    /// chromosomes from the first offspring are generated randomly",
    /// §III-E).
    pub fn run<G, F, Init>(&mut self, mut init: Init, fitness: &mut F) -> SearchResult<G>
    where
        G: Genome + PartialEq,
        F: Fitness<G>,
        Init: FnMut(&mut StdRng) -> G,
    {
        let population: Vec<G> = (0..self.config.population_size)
            .map(|_| init(&mut self.rng))
            .collect();
        self.run_from(population, fitness)
    }

    /// Runs a search from a caller-supplied initial population — how an
    /// interrupted search resumes from the virus database (§III-F).
    ///
    /// # Panics
    ///
    /// Panics if the population size does not match the configuration.
    pub fn run_from<G, F>(&mut self, population: Vec<G>, fitness: &mut F) -> SearchResult<G>
    where
        G: Genome + PartialEq,
        F: Fitness<G>,
    {
        self.search_loop(population, 1, |pop, stats| {
            stats.evaluations += pop.len() as u64;
            pop.iter().map(|g| fitness.evaluate(g)).collect()
        })
    }

    /// Runs a search from a randomly initialized population, evaluating
    /// each generation's chromosomes on `workers` threads.
    ///
    /// Each worker owns an independent replica of the fitness substrate
    /// (see [`ParallelFitness`]); repeat chromosomes are served from an
    /// evaluation cache instead of re-running the substrate. Because the
    /// fitness contract requires purity, the result is bit-identical for
    /// any worker count, including `workers = 1`.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or an evaluation worker panics.
    pub fn run_parallel<G, F, Init>(
        &mut self,
        workers: usize,
        mut init: Init,
        fitness: &mut F,
    ) -> SearchResult<G>
    where
        G: Genome + PartialEq + Eq + Hash + Sync,
        F: ParallelFitness<G>,
        Init: FnMut(&mut StdRng) -> G,
    {
        let population: Vec<G> = (0..self.config.population_size)
            .map(|_| init(&mut self.rng))
            .collect();
        self.run_from_parallel(workers, population, fitness)
    }

    /// Runs a search from a caller-supplied population on `workers`
    /// evaluation threads — the parallel counterpart of [`run_from`].
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero, the population size does not match the
    /// configuration, or an evaluation worker panics.
    ///
    /// [`run_from`]: GaEngine::run_from
    pub fn run_from_parallel<G, F>(
        &mut self,
        workers: usize,
        population: Vec<G>,
        fitness: &mut F,
    ) -> SearchResult<G>
    where
        G: Genome + PartialEq + Eq + Hash + Sync,
        F: ParallelFitness<G>,
    {
        assert!(workers >= 1, "at least one evaluation worker is required");
        let mut replicas: Vec<F> = (0..workers).map(|_| fitness.replicate()).collect();
        let rng = StdRng::from_state(self.rng.to_state());
        let mut session = SearchSession::with_rng(self.config, rng, population);
        while !session.done() {
            session.step(&mut replicas);
        }
        for replica in replicas {
            fitness.absorb(replica);
        }
        // The session consumed part of the engine's RNG stream; keep the
        // engine's position in step so later campaigns draw fresh numbers.
        self.rng = StdRng::from_state(session.rng_state());
        session.finish()
    }

    /// The shared generation loop: scores rounds through `evaluate` (which
    /// returns raw user-orientation fitness values, one per member, and
    /// updates the evaluation counters), then applies selection, crossover,
    /// mutation and the convergence criterion. All engine-side randomness
    /// stays in this (single-threaded) loop, so every evaluation strategy
    /// draws the same RNG stream.
    fn search_loop<G, E>(
        &mut self,
        mut population: Vec<G>,
        workers: usize,
        mut evaluate: E,
    ) -> SearchResult<G>
    where
        G: Genome + PartialEq,
        E: FnMut(&[G], &mut EvalStats) -> Vec<f64>,
    {
        assert_eq!(
            population.len(),
            self.config.population_size,
            "initial population size mismatch"
        );
        let sign = if self.config.minimize { -1.0 } else { 1.0 };
        let mut eval_stats = EvalStats {
            workers,
            ..EvalStats::default()
        };
        let mut leaderboard = Leaderboard::new(self.config.population_size);
        // Scores one round and offers every member to the leaderboard in
        // population order — the same order the serial loop used, so the
        // leaderboard's tie-breaking is identical across strategies.
        let mut score_round =
            |pop: &[G], leaderboard: &mut Leaderboard<G>, stats: &mut EvalStats| -> Vec<f64> {
                let started = Instant::now();
                let raw = evaluate(pop, stats);
                stats
                    .generation_eval_seconds
                    .push(started.elapsed().as_secs_f64());
                let scores: Vec<f64> = raw.into_iter().map(|v| sign * v).collect();
                for (g, s) in pop.iter().zip(&scores) {
                    leaderboard.offer(g, *s);
                }
                scores
            };
        let mut scores = score_round(&population, &mut leaderboard, &mut eval_stats);
        let mut history = Vec::new();
        let mut generations = 0;
        let mut converged = false;
        let mut similarity = leaderboard.similarity();
        let mut best_so_far = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut stagnant_generations = 0u32;

        for generation in 0..self.config.max_generations {
            generations = generation + 1;
            history.push(round_stats(generation, &scores, sign, similarity));

            population = breed_next(&self.config, &population, &scores, &mut self.rng);
            scores = score_round(&population, &mut leaderboard, &mut eval_stats);
            similarity = leaderboard.similarity();
            let generation_best = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if generation_best > best_so_far {
                best_so_far = generation_best;
                stagnant_generations = 0;
            } else {
                stagnant_generations += 1;
            }
            if leaderboard.is_full()
                && similarity >= self.config.convergence_threshold
                && stagnant_generations >= self.config.stagnation_window
            {
                converged = true;
                history.push(round_stats(generation + 1, &scores, sign, similarity));
                break;
            }
        }

        let leaderboard: Vec<(G, f64)> = leaderboard
            .entries
            .into_iter()
            .map(|(g, s)| (g, sign * s))
            .collect();
        let (best, best_fitness) = leaderboard[0].clone();
        SearchResult {
            best,
            best_fitness,
            leaderboard,
            generations,
            converged,
            similarity,
            history,
            eval_stats,
        }
    }
}

fn round_stats(generation: u32, scores: &[f64], sign: f64, similarity: f64) -> GenerationStats {
    let best_engine = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mean_engine = scores.iter().sum::<f64>() / scores.len() as f64;
    GenerationStats {
        generation,
        best: sign * best_engine,
        mean: sign * mean_engine,
        similarity,
    }
}

/// One generation of breeding: elitism, then selection + crossover +
/// mutation until the population is refilled. Shared by the legacy serial
/// loop and [`SearchSession`] so the two can never drift apart.
fn breed_next<G: Genome>(
    config: &GaConfig,
    population: &[G],
    scores: &[f64],
    rng: &mut StdRng,
) -> Vec<G> {
    // Elitism: carry the best members over unchanged.
    let mut order: Vec<usize> = (0..population.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .expect("fitness values are comparable")
    });
    let mut next: Vec<G> = order
        .iter()
        .take(config.elitism.min(population.len()))
        .map(|&i| population[i].clone())
        .collect();

    // Offspring via selection + crossover + mutation.
    while next.len() < config.population_size {
        let a = config.selection.pick(scores, rng);
        let b = config.selection.pick(scores, rng);
        let (mut c, mut d) = if rng.gen::<f64>() < config.crossover_prob {
            population[a].crossover(&population[b], rng)
        } else {
            (population[a].clone(), population[b].clone())
        };
        for child in [&mut c, &mut d] {
            if rng.gen::<f64>() < config.mutation_prob {
                let rate = config.gene_rate.unwrap_or(1.5 / child.len().max(1) as f64);
                child.mutate(rng, rate);
            }
        }
        next.push(c);
        if next.len() < config.population_size {
            next.push(d);
        }
    }
    next
}

/// Scores one round of a cached parallel evaluation: repeats are served
/// from `cache`, each distinct new chromosome runs once on the substrate,
/// dealt round-robin across the worker replicas. Newly evaluated
/// chromosomes are also pushed onto `newly` (raw user-orientation values)
/// so a journal can persist exactly the substrate work that happened.
fn score_population<G, F>(
    population: &[G],
    cache: &mut HashMap<G, f64>,
    newly: &mut Vec<(G, f64)>,
    replicas: &mut [F],
    stats: &mut EvalStats,
) -> Vec<f64>
where
    G: Genome + PartialEq + Eq + Hash + Sync,
    F: ParallelFitness<G>,
{
    let workers = replicas.len();
    let mut scores = vec![0.0f64; population.len()];
    // Resolve repeats first: chromosomes scored in an earlier round come
    // from the cache, and a chromosome occurring several times in this
    // round is evaluated once. `pending` holds each distinct new chromosome
    // with the population slots it fills.
    let mut pending: Vec<(&G, Vec<usize>)> = Vec::new();
    let mut pending_index: HashMap<&G, usize> = HashMap::new();
    for (i, g) in population.iter().enumerate() {
        if let Some(&hit) = cache.get(g) {
            scores[i] = hit;
            stats.cache_hits += 1;
        } else if let Some(&p) = pending_index.get(g) {
            pending[p].1.push(i);
            stats.cache_hits += 1;
        } else {
            pending_index.insert(g, pending.len());
            pending.push((g, vec![i]));
        }
    }
    stats.evaluations += pending.len() as u64;
    if pending.is_empty() {
        return scores;
    }
    // Deal the distinct chromosomes round-robin across the workers. Purity
    // makes the partitioning irrelevant to the scores, so the worker count
    // cannot change the search outcome.
    let evaluated: Vec<Vec<(usize, f64)>> = crossbeam::scope(|s| {
        let handles: Vec<_> = replicas
            .iter_mut()
            .enumerate()
            .map(|(w, replica)| {
                let share: Vec<(usize, &G)> = pending
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| j % workers == w)
                    .map(|(j, (g, _))| (j, *g))
                    .collect();
                s.spawn(move |_| {
                    share
                        .into_iter()
                        .map(|(j, g)| (j, replica.evaluate(g)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("evaluation worker panicked"))
            .collect()
    })
    .expect("evaluation scope panicked");
    // Restore the dealing order before draining so `newly` (and hence the
    // journal's record sequence) does not depend on the worker count.
    let mut flat: Vec<(usize, f64)> = evaluated.into_iter().flatten().collect();
    flat.sort_unstable_by_key(|&(j, _)| j);
    for (j, value) in flat {
        let (genome, slots) = &pending[j];
        cache.insert((*genome).clone(), value);
        newly.push(((*genome).clone(), value));
        for &i in slots {
            scores[i] = value;
        }
    }
    scores
}

/// A stepwise, checkpointable GA search: the parallel engine loop unrolled
/// so callers can persist the complete engine state between generations and
/// continue an interrupted search **bit-identically** (§III-F).
///
/// One [`step`] call scores the initial population; each further call runs
/// exactly one generation. [`checkpoint`] captures everything the next step
/// depends on — population, scores, leaderboard, history, RNG stream
/// position, evaluation cache and counters — and [`resume`] reconstructs
/// the session so the remaining steps draw the same random numbers and the
/// same cached fitness values as an uninterrupted run.
///
/// [`step`]: SearchSession::step
/// [`checkpoint`]: SearchSession::checkpoint
/// [`resume`]: SearchSession::resume
#[derive(Debug)]
pub struct SearchSession<G> {
    config: GaConfig,
    rng: StdRng,
    population: Vec<G>,
    /// Engine-orientation scores of the current population.
    scores: Vec<f64>,
    leaderboard: Leaderboard<G>,
    history: Vec<GenerationStats>,
    eval_stats: EvalStats,
    /// Raw user-orientation fitness of every chromosome ever evaluated.
    cache: HashMap<G, f64>,
    /// Chromosomes evaluated on the substrate since the last
    /// [`take_newly_evaluated`](SearchSession::take_newly_evaluated).
    newly: Vec<(G, f64)>,
    /// Completed generations.
    generation: u32,
    /// Whether the initial population has been scored.
    initialized: bool,
    converged: bool,
    similarity: f64,
    best_so_far: f64,
    stagnant: u32,
    done: bool,
}

impl<G: Genome + PartialEq + Eq + Hash + Sync> SearchSession<G> {
    /// Starts a fresh session: seeds the RNG and draws the initial
    /// population (nothing is evaluated until the first [`step`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    ///
    /// [`step`]: SearchSession::step
    pub fn start(config: GaConfig, seed: u64, mut init: impl FnMut(&mut StdRng) -> G) -> Self {
        config.validate().expect("invalid GA configuration");
        let mut rng = StdRng::seed_from_u64(seed);
        let population: Vec<G> = (0..config.population_size)
            .map(|_| init(&mut rng))
            .collect();
        SearchSession::with_rng(config, rng, population)
    }

    /// Starts a session from an explicit RNG and population (how the engine
    /// facade hands over its stream).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the population size does
    /// not match it.
    pub fn with_rng(config: GaConfig, rng: StdRng, population: Vec<G>) -> Self {
        config.validate().expect("invalid GA configuration");
        assert_eq!(
            population.len(),
            config.population_size,
            "initial population size mismatch"
        );
        SearchSession {
            leaderboard: Leaderboard::new(config.population_size),
            config,
            rng,
            population,
            scores: Vec::new(),
            history: Vec::new(),
            eval_stats: EvalStats {
                workers: 1,
                ..EvalStats::default()
            },
            cache: HashMap::new(),
            newly: Vec::new(),
            generation: 0,
            initialized: false,
            converged: false,
            similarity: 0.0,
            best_so_far: 0.0,
            stagnant: 0,
            done: false,
        }
    }

    /// Reconstructs a session from a checkpoint. The checkpoint pins the
    /// configuration, so the continuation is bit-identical to the search
    /// that produced it.
    ///
    /// # Panics
    ///
    /// Panics if the checkpointed configuration is invalid.
    pub fn resume(state: EngineState<G>) -> Self {
        state.config.validate().expect("invalid GA configuration");
        SearchSession {
            leaderboard: Leaderboard::from_entries(state.leaderboard, state.config.population_size),
            config: state.config,
            rng: StdRng::from_state(state.rng),
            population: state.population,
            scores: state.scores,
            history: state.history,
            eval_stats: state.eval_stats,
            cache: state.cache.into_iter().collect(),
            newly: Vec::new(),
            generation: state.generation,
            initialized: state.initialized,
            converged: state.converged,
            similarity: state.similarity,
            best_so_far: state.best_so_far,
            stagnant: state.stagnant,
            done: state.done,
        }
    }

    /// Whether the search has finished (converged or out of budget).
    pub fn done(&self) -> bool {
        self.done
    }

    /// Completed generations.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// The session's configuration.
    pub fn config(&self) -> &GaConfig {
        &self.config
    }

    fn rng_state(&self) -> [u64; 4] {
        self.rng.to_state()
    }

    /// Chromosomes evaluated on the substrate since the last call, with
    /// their raw (user-orientation) fitness values, in evaluation order.
    pub fn take_newly_evaluated(&mut self) -> Vec<(G, f64)> {
        std::mem::take(&mut self.newly)
    }

    /// Captures the complete engine state between steps.
    pub fn checkpoint(&self) -> EngineState<G> {
        EngineState {
            config: self.config,
            rng: self.rng.to_state(),
            population: self.population.clone(),
            scores: self.scores.clone(),
            leaderboard: self.leaderboard.entries.clone(),
            history: self.history.clone(),
            eval_stats: self.eval_stats.clone(),
            cache: self.cache.iter().map(|(g, v)| (g.clone(), *v)).collect(),
            generation: self.generation,
            initialized: self.initialized,
            converged: self.converged,
            similarity: self.similarity,
            best_so_far: self.best_so_far,
            stagnant: self.stagnant,
            done: self.done,
        }
    }

    /// Runs one step: the first call scores the initial population, each
    /// later call runs exactly one generation (breed, score, update the
    /// convergence state). A no-op once [`done`](SearchSession::done).
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty or an evaluation worker panics.
    pub fn step<F: ParallelFitness<G>>(&mut self, replicas: &mut [F]) {
        assert!(
            !replicas.is_empty(),
            "at least one evaluation worker is required"
        );
        if self.done {
            return;
        }
        self.eval_stats.workers = replicas.len();
        let sign = if self.config.minimize { -1.0 } else { 1.0 };
        if !self.initialized {
            self.rescore(sign, replicas);
            self.best_so_far = self
                .scores
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
            self.stagnant = 0;
            self.initialized = true;
            return;
        }
        let generation = self.generation;
        self.history
            .push(round_stats(generation, &self.scores, sign, self.similarity));
        self.population = breed_next(&self.config, &self.population, &self.scores, &mut self.rng);
        self.rescore(sign, replicas);
        let generation_best = self
            .scores
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        if generation_best > self.best_so_far {
            self.best_so_far = generation_best;
            self.stagnant = 0;
        } else {
            self.stagnant += 1;
        }
        self.generation += 1;
        if self.leaderboard.is_full()
            && self.similarity >= self.config.convergence_threshold
            && self.stagnant >= self.config.stagnation_window
        {
            self.converged = true;
            self.history.push(round_stats(
                generation + 1,
                &self.scores,
                sign,
                self.similarity,
            ));
            self.done = true;
        } else if self.generation >= self.config.max_generations {
            self.done = true;
        }
    }

    fn rescore<F: ParallelFitness<G>>(&mut self, sign: f64, replicas: &mut [F]) {
        let started = Instant::now();
        let raw = score_population(
            &self.population,
            &mut self.cache,
            &mut self.newly,
            replicas,
            &mut self.eval_stats,
        );
        self.eval_stats
            .generation_eval_seconds
            .push(started.elapsed().as_secs_f64());
        self.scores = raw.into_iter().map(|v| sign * v).collect();
        for (g, s) in self.population.iter().zip(&self.scores) {
            self.leaderboard.offer(g, *s);
        }
        self.similarity = self.leaderboard.similarity();
    }

    /// Consumes the session into a [`SearchResult`].
    ///
    /// # Panics
    ///
    /// Panics if nothing was ever evaluated (no [`step`] call).
    ///
    /// [`step`]: SearchSession::step
    pub fn finish(self) -> SearchResult<G> {
        let sign = if self.config.minimize { -1.0 } else { 1.0 };
        let leaderboard: Vec<(G, f64)> = self
            .leaderboard
            .entries
            .into_iter()
            .map(|(g, s)| (g, sign * s))
            .collect();
        let (best, best_fitness) = leaderboard[0].clone();
        SearchResult {
            best,
            best_fitness,
            leaderboard,
            generations: self.generation,
            converged: self.converged,
            similarity: self.similarity,
            history: self.history,
            eval_stats: self.eval_stats,
        }
    }
}

/// The serializable between-steps state of a [`SearchSession`]: everything
/// the next generation depends on, including the raw RNG stream position
/// and the evaluation-cache contents. Persisting this per generation is
/// what makes a resumed search bit-identical to an uninterrupted one.
#[derive(Debug, Clone)]
pub struct EngineState<G> {
    /// The search configuration (pinned: a resume ignores any other).
    pub config: GaConfig,
    /// Raw xoshiro256** RNG state.
    pub rng: [u64; 4],
    /// The current population.
    pub population: Vec<G>,
    /// Engine-orientation scores of the current population.
    pub scores: Vec<f64>,
    /// Leaderboard entries, best-first (engine orientation).
    pub leaderboard: Vec<(G, f64)>,
    /// Per-generation history so far.
    pub history: Vec<GenerationStats>,
    /// Evaluation counters and timing so far.
    pub eval_stats: EvalStats,
    /// Every chromosome ever evaluated with its raw fitness value.
    pub cache: Vec<(G, f64)>,
    /// Completed generations.
    pub generation: u32,
    /// Whether the initial population has been scored.
    pub initialized: bool,
    /// Whether the similarity criterion was met.
    pub converged: bool,
    /// Current mean pairwise leaderboard similarity.
    pub similarity: f64,
    /// Best engine-orientation score seen so far.
    pub best_so_far: f64,
    /// Generations without a new best.
    pub stagnant: u32,
    /// Whether the search has finished.
    pub done: bool,
}

impl<G: Serialize> EngineState<G> {
    /// Serializes to compact JSON (one line — journal-embeddable).
    ///
    /// # Errors
    ///
    /// Propagates serialization failures.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }
}

impl<G: Deserialize> EngineState<G> {
    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Propagates parse failures.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

// The derive macro does not handle generic types, so the state serializes
// by hand — a plain field map, like the derive would emit.
impl<G: Serialize> Serialize for EngineState<G> {
    fn serialize(&self) -> Value {
        Value::Map(vec![
            ("config".into(), self.config.serialize()),
            ("rng".into(), self.rng.serialize()),
            ("population".into(), self.population.serialize()),
            ("scores".into(), self.scores.serialize()),
            ("leaderboard".into(), self.leaderboard.serialize()),
            ("history".into(), self.history.serialize()),
            ("eval_stats".into(), self.eval_stats.serialize()),
            ("cache".into(), self.cache.serialize()),
            ("generation".into(), self.generation.serialize()),
            ("initialized".into(), self.initialized.serialize()),
            ("converged".into(), self.converged.serialize()),
            ("similarity".into(), self.similarity.serialize()),
            ("best_so_far".into(), self.best_so_far.serialize()),
            ("stagnant".into(), self.stagnant.serialize()),
            ("done".into(), self.done.serialize()),
        ])
    }
}

impl<G: Deserialize> Deserialize for EngineState<G> {
    fn deserialize(value: &Value) -> Result<Self, serde::Error> {
        let map = value
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected EngineState map"))?;
        fn req<'a>(
            map: &'a [(String, Value)],
            key: &'static str,
        ) -> Result<&'a Value, serde::Error> {
            serde::__find(map, key)
                .ok_or_else(|| serde::Error::custom(format!("missing EngineState field `{key}`")))
        }
        Ok(EngineState {
            config: Deserialize::deserialize(req(map, "config")?)?,
            rng: Deserialize::deserialize(req(map, "rng")?)?,
            population: Deserialize::deserialize(req(map, "population")?)?,
            scores: Deserialize::deserialize(req(map, "scores")?)?,
            leaderboard: Deserialize::deserialize(req(map, "leaderboard")?)?,
            history: Deserialize::deserialize(req(map, "history")?)?,
            eval_stats: Deserialize::deserialize(req(map, "eval_stats")?)?,
            cache: Deserialize::deserialize(req(map, "cache")?)?,
            generation: Deserialize::deserialize(req(map, "generation")?)?,
            initialized: Deserialize::deserialize(req(map, "initialized")?)?,
            converged: Deserialize::deserialize(req(map, "converged")?)?,
            similarity: Deserialize::deserialize(req(map, "similarity")?)?,
            best_so_far: Deserialize::deserialize(req(map, "best_so_far")?)?,
            stagnant: Deserialize::deserialize(req(map, "stagnant")?)?,
            done: Deserialize::deserialize(req(map, "done")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::FnFitness;
    use crate::genome::{BitGenome, IntGenome};

    #[test]
    fn config_validation() {
        assert!(GaConfig::paper_defaults().validate().is_ok());
        let mut c = GaConfig::paper_defaults();
        c.population_size = 1;
        assert!(c.validate().is_err());
        let mut c = GaConfig::paper_defaults();
        c.mutation_prob = 1.5;
        assert!(c.validate().is_err());
        let mut c = GaConfig::paper_defaults();
        c.max_generations = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn popcount_calibration_reaches_optimum_in_tens_of_generations() {
        // The paper's §V calibration: with mutation 0.5 / crossover 0.9 /
        // population 40 the GA solves 64-bit popcount in ~80 generations.
        let mut engine = GaEngine::new(GaConfig::paper_defaults(), 11);
        let mut fitness = FnFitness::new(|g: &BitGenome| g.count_ones() as f64);
        let result = engine.run(|rng| BitGenome::random(rng, 64), &mut fitness);
        assert!(
            result.best_fitness >= 63.0,
            "best = {}",
            result.best_fitness
        );
        assert!(result.converged, "popcount search should converge");
        assert!(
            (20..=250).contains(&result.generations),
            "generations = {}",
            result.generations
        );
    }

    #[test]
    fn history_best_is_monotone_with_elitism() {
        let mut engine = GaEngine::new(GaConfig::paper_defaults(), 3);
        let mut fitness = FnFitness::new(|g: &BitGenome| g.count_ones() as f64);
        let result = engine.run(|rng| BitGenome::random(rng, 64), &mut fitness);
        for w in result.history.windows(2) {
            assert!(w[1].best >= w[0].best - 1e-9, "best dropped: {w:?}");
        }
    }

    #[test]
    fn minimization_mode_minimizes() {
        let mut config = GaConfig::paper_defaults();
        config.minimize = true;
        let mut engine = GaEngine::new(config, 5);
        let mut fitness = FnFitness::new(|g: &BitGenome| g.count_ones() as f64);
        let result = engine.run(|rng| BitGenome::random(rng, 64), &mut fitness);
        assert!(result.best_fitness <= 1.0, "best = {}", result.best_fitness);
        // Leaderboard is sorted best-first in the *minimization* sense.
        for w in result.leaderboard.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn flat_fitness_never_converges() {
        // A constant fitness keeps the leaderboard at its first 40 distinct
        // random entries: similarity stays ~0.5 and the budget expires —
        // the paper's non-convergent UE/access searches behave like this.
        let mut config = GaConfig::paper_defaults();
        config.max_generations = 60;
        let mut engine = GaEngine::new(config, 9);
        let mut fitness = FnFitness::new(|_: &BitGenome| 1.0);
        let result = engine.run(|rng| BitGenome::random(rng, 256), &mut fitness);
        assert!(!result.converged);
        assert_eq!(result.generations, 60);
        assert!(result.similarity < 0.65, "similarity {}", result.similarity);
    }

    #[test]
    fn noisy_plateau_resists_convergence() {
        // A saturating landscape with evaluation noise: every genome with
        // at least half its bits set scores on the same plateau, and noise
        // reorders them. The leaderboard keeps collecting *unrelated*
        // plateau members, capping its similarity — the mechanism behind
        // the paper's non-convergent access-pattern searches (Fig. 11,
        // SMF ≈ 0.5: disturbance saturates, VRT adds noise).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut config = GaConfig::paper_defaults();
        config.max_generations = 120;
        let mut engine = GaEngine::new(config, 21);
        let mut noise = StdRng::seed_from_u64(99);
        let mut fitness = FnFitness::new(move |g: &BitGenome| {
            let plateau = (g.count_ones() as f64).min(32.0);
            plateau * 10.0 + noise.gen_range(0.0..30.0)
        });
        let result = engine.run(|rng| BitGenome::random(rng, 64), &mut fitness);
        assert!(!result.converged, "plateau search must not converge");
        assert!(result.similarity < 0.8, "similarity {}", result.similarity);
    }

    #[test]
    fn leaderboard_is_distinct_and_sorted() {
        let mut engine = GaEngine::new(GaConfig::paper_defaults(), 13);
        let mut fitness = FnFitness::new(|g: &BitGenome| g.count_ones() as f64);
        let result = engine.run(|rng| BitGenome::random(rng, 64), &mut fitness);
        assert_eq!(result.leaderboard.len(), 40);
        for w in result.leaderboard.windows(2) {
            assert!(w[0].1 >= w[1].1, "leaderboard must be sorted best-first");
        }
        for i in 0..result.leaderboard.len() {
            for j in (i + 1)..result.leaderboard.len() {
                assert_ne!(
                    result.leaderboard[i].0, result.leaderboard[j].0,
                    "leaderboard entries must be distinct"
                );
            }
        }
        assert_eq!(result.best_fitness, result.leaderboard[0].1);
    }

    #[test]
    fn int_genome_search_works() {
        // Maximize the sum of 16 genes in [0, 20].
        let mut engine = GaEngine::new(GaConfig::paper_defaults(), 17);
        let mut fitness = FnFitness::new(|g: &IntGenome| g.values().iter().sum::<u64>() as f64);
        let result = engine.run(|rng| IntGenome::random(rng, 16, 0, 20), &mut fitness);
        assert!(
            result.best_fitness >= 0.9 * 320.0,
            "best = {}",
            result.best_fitness
        );
    }

    #[test]
    fn run_from_resumes_a_seeded_population() {
        // Seeding the population near the optimum lets the leaderboard fill
        // with near-optimal variants quickly.
        let mut config = GaConfig::paper_defaults();
        let mut engine = GaEngine::new(config, 19);
        let mut fitness = FnFitness::new(|g: &BitGenome| g.count_ones() as f64);
        let seeded = vec![BitGenome::from_words(&[u64::MAX], 64); 40];
        let seeded_result = engine.run_from(seeded, &mut fitness);
        assert_eq!(seeded_result.best_fitness, 64.0);
        config.max_generations = seeded_result.generations;
        // A fresh random search given the same (small) budget does worse on
        // its first generations.
        let mut fresh_engine = GaEngine::new(config, 19);
        let fresh = fresh_engine.run(|rng| BitGenome::random(rng, 64), &mut fitness);
        assert!(seeded_result.generations <= fresh.generations);
    }

    #[test]
    #[should_panic(expected = "population size mismatch")]
    fn run_from_validates_population_size() {
        let mut engine = GaEngine::new(GaConfig::paper_defaults(), 1);
        let mut fitness = FnFitness::new(|g: &BitGenome| g.count_ones() as f64);
        engine.run_from(vec![BitGenome::zeros(8); 3], &mut fitness);
    }

    /// A pure, replicable fitness that counts how many substrate
    /// evaluations actually ran across all replicas.
    struct CountingPopcount {
        executed: std::sync::Arc<std::sync::atomic::AtomicU64>,
    }

    impl CountingPopcount {
        fn new() -> Self {
            CountingPopcount {
                executed: std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0)),
            }
        }

        fn executed(&self) -> u64 {
            self.executed.load(std::sync::atomic::Ordering::SeqCst)
        }
    }

    impl Fitness<BitGenome> for CountingPopcount {
        fn evaluate(&mut self, genome: &BitGenome) -> f64 {
            self.executed
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            genome.count_ones() as f64
        }
    }

    impl ParallelFitness<BitGenome> for CountingPopcount {
        fn replicate(&self) -> Self {
            CountingPopcount {
                executed: self.executed.clone(),
            }
        }
    }

    #[test]
    fn parallel_search_is_bit_identical_to_serial() {
        // The tentpole acceptance criterion: the same seed produces the
        // same SearchResult (leaderboard, history, everything but timing)
        // through the legacy serial path and through the parallel path at
        // any worker count.
        let serial = {
            let mut engine = GaEngine::new(GaConfig::paper_defaults(), 29);
            let mut fitness = CountingPopcount::new();
            engine.run(|rng| BitGenome::random(rng, 64), &mut fitness)
        };
        for workers in [1usize, 4] {
            let mut engine = GaEngine::new(GaConfig::paper_defaults(), 29);
            let mut fitness = CountingPopcount::new();
            let parallel =
                engine.run_parallel(workers, |rng| BitGenome::random(rng, 64), &mut fitness);
            assert_eq!(parallel.best, serial.best, "workers={workers}");
            assert_eq!(parallel.best_fitness, serial.best_fitness);
            assert_eq!(parallel.leaderboard, serial.leaderboard);
            assert_eq!(parallel.generations, serial.generations);
            assert_eq!(parallel.converged, serial.converged);
            assert_eq!(parallel.similarity, serial.similarity);
            assert_eq!(parallel.history, serial.history);
            assert_eq!(parallel.eval_stats.workers, workers);
        }
    }

    #[test]
    fn parallel_worker_counts_agree_on_eval_stats() {
        let run = |workers| {
            let mut engine = GaEngine::new(GaConfig::paper_defaults(), 31);
            let mut fitness = CountingPopcount::new();
            let result =
                engine.run_parallel(workers, |rng| BitGenome::random(rng, 64), &mut fitness);
            (result, fitness.executed())
        };
        let (one, one_executed) = run(1);
        let (four, four_executed) = run(4);
        // The cache makes the substrate work identical, not just the
        // scores: every distinct chromosome runs exactly once either way.
        assert_eq!(one.eval_stats.evaluations, four.eval_stats.evaluations);
        assert_eq!(one.eval_stats.cache_hits, four.eval_stats.cache_hits);
        assert_eq!(one.eval_stats.evaluations, one_executed);
        assert_eq!(four.eval_stats.evaluations, four_executed);
        assert_eq!(
            one.eval_stats.generation_eval_seconds.len(),
            four.eval_stats.generation_eval_seconds.len()
        );
    }

    #[test]
    fn eval_cache_hits_repeats_and_misses_mutants() {
        let mut config = GaConfig::paper_defaults();
        config.population_size = 8;
        config.max_generations = 1;
        let mut engine = GaEngine::new(config, 3);
        let mut fitness = CountingPopcount::new();
        let a = BitGenome::from_words(&[0x00FF], 64);
        let mut b = a.clone();
        b.set_bit(63, true); // a mutated copy must miss the cache
        let mut population = vec![a; 4];
        population.extend(std::iter::repeat_n(b, 4));
        let result = engine.run_from_parallel(2, population, &mut fitness);
        // Initial round: 8 slots but only 2 distinct chromosomes.
        assert!(
            result.eval_stats.cache_hits >= 6,
            "stats: {:?}",
            result.eval_stats
        );
        // Cache transparency: counted evaluations are exactly the substrate
        // runs that happened, everything else was served from the cache.
        assert_eq!(result.eval_stats.evaluations, fitness.executed());
        assert_eq!(
            result.eval_stats.evaluations + result.eval_stats.cache_hits,
            2 * 8,
            "every population slot is either evaluated or a cache hit"
        );
        assert_eq!(result.eval_stats.workers, 2);
        // One initial round + one generation were timed.
        assert_eq!(result.eval_stats.generation_eval_seconds.len(), 2);
        assert!(result.eval_stats.eval_seconds() >= 0.0);
    }

    #[test]
    fn serial_path_reports_eval_stats_without_cache() {
        let mut engine = GaEngine::new(GaConfig::paper_defaults(), 7);
        let mut fitness = CountingPopcount::new();
        let result = engine.run(|rng| BitGenome::random(rng, 64), &mut fitness);
        assert_eq!(result.eval_stats.workers, 1);
        assert_eq!(result.eval_stats.cache_hits, 0);
        assert_eq!(result.eval_stats.evaluations, fitness.executed());
        assert_eq!(
            result.eval_stats.generation_eval_seconds.len() as u32,
            result.generations + 1
        );
    }

    #[test]
    #[should_panic(expected = "at least one evaluation worker")]
    fn zero_workers_panics() {
        let mut engine = GaEngine::new(GaConfig::paper_defaults(), 1);
        let mut fitness = CountingPopcount::new();
        engine.run_parallel(0, |rng| BitGenome::random(rng, 64), &mut fitness);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut engine = GaEngine::new(GaConfig::paper_defaults(), seed);
            let mut fitness = FnFitness::new(|g: &BitGenome| g.count_ones() as f64);
            engine
                .run(|rng| BitGenome::random(rng, 64), &mut fitness)
                .best_fitness
        };
        assert_eq!(run(23), run(23));
    }

    #[test]
    fn session_resume_from_json_checkpoint_is_bit_identical() {
        // Kill the session at *every* step boundary, serialize the
        // checkpoint to JSON (exactly what the journal persists), drop the
        // live session, and continue from the JSON alone — even with a
        // different worker count. Everything except wall-clock timing must
        // match the uninterrupted run.
        let mut config = GaConfig::paper_defaults();
        config.population_size = 12;
        config.max_generations = 12;
        config.stagnation_window = 4;
        let init = |rng: &mut StdRng| BitGenome::random(rng, 32);
        let clean = {
            let mut session = SearchSession::start(config, 77, init);
            let mut replicas = vec![CountingPopcount::new()];
            while !session.done() {
                session.step(&mut replicas);
            }
            session.finish()
        };
        for boundary in 0.. {
            let mut session = SearchSession::start(config, 77, init);
            let mut replicas = vec![CountingPopcount::new()];
            for _ in 0..boundary {
                session.step(&mut replicas);
            }
            let finished_already = session.done();
            let json = session.checkpoint().to_json().unwrap();
            drop(session); // the "crash"
            let state = EngineState::<BitGenome>::from_json(&json).unwrap();
            let mut resumed = SearchSession::resume(state);
            let mut replicas = vec![CountingPopcount::new(), CountingPopcount::new()];
            while !resumed.done() {
                resumed.step(&mut replicas);
            }
            let result = resumed.finish();
            assert_eq!(result.best, clean.best, "boundary={boundary}");
            assert_eq!(result.best_fitness, clean.best_fitness);
            assert_eq!(result.leaderboard, clean.leaderboard);
            assert_eq!(result.generations, clean.generations);
            assert_eq!(result.converged, clean.converged);
            assert_eq!(result.similarity, clean.similarity);
            assert_eq!(result.history, clean.history);
            // Counters resume from the checkpoint, so totals match too.
            assert_eq!(result.eval_stats.evaluations, clean.eval_stats.evaluations);
            assert_eq!(result.eval_stats.cache_hits, clean.eval_stats.cache_hits);
            if finished_already {
                break;
            }
        }
    }

    #[test]
    fn session_reports_newly_evaluated_chromosomes() {
        let mut config = GaConfig::paper_defaults();
        config.population_size = 8;
        config.max_generations = 3;
        let mut session = SearchSession::start(config, 41, |rng| BitGenome::random(rng, 16));
        let mut replicas = vec![CountingPopcount::new()];
        let mut seen = 0u64;
        while !session.done() {
            session.step(&mut replicas);
            let newly = session.take_newly_evaluated();
            for (g, v) in &newly {
                assert_eq!(*v, g.count_ones() as f64);
            }
            seen += newly.len() as u64;
            // Draining is idempotent until the next step.
            assert!(session.take_newly_evaluated().is_empty());
        }
        let result = session.finish();
        assert_eq!(
            seen, result.eval_stats.evaluations,
            "every substrate evaluation must be reported exactly once"
        );
    }
}
