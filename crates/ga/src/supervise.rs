//! Supervised fault-tolerant evaluation (the paper's two-week live-hardware
//! campaigns, §V, survive flaky evaluations instead of aborting).
//!
//! A production DStress campaign evaluates every candidate virus on real
//! hardware, where hung runs, transient platform faults and outright worker
//! crashes are routine. This module is the supervision layer the engine's
//! parallel evaluation path runs every candidate under:
//!
//! * each evaluation is isolated with `catch_unwind`, so a panicking
//!   substrate downgrades to a fault instead of killing the campaign;
//! * [`EvalFault`]s are classified **transient** (retried on a bounded,
//!   deterministic backoff schedule) or **permanent** (panic, step-budget
//!   blowout, hard substrate errors — never retried);
//! * a candidate that keeps faulting is **quarantined**: it scores `NaN`,
//!   which the engine's NaN-last total order ranks below every finite
//!   fitness, and the decision is recorded as an [`Incident`] so the
//!   journal can replay it bit-identically on `--resume`;
//! * a [`HazardPlan`] injects panics, faults, budget blowouts and worker
//!   deaths at scheduled evaluation indices — the evaluation-side mirror of
//!   `MemStorage`'s op-counted storage faults — which is what lets the
//!   differential suites sweep hazards across worker counts and kill
//!   points.
//!
//! Everything the supervisor decides is a pure function of the evaluation
//! index and the attempt number, never of wall-clock time or worker
//! identity; that is what keeps a supervised search bit-identical for any
//! worker count and across crash/resume boundaries.

use crate::fitness::{EvalFault, FaultKind, ParallelFitness};
use crate::genome::Genome;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// Retry/quarantine policy for supervised evaluation.
///
/// The schedule is deterministic: the decision for a candidate depends only
/// on the sequence of faults it produced and these knobs, so the same
/// policy replays the same decisions on any worker count and on resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SupervisionPolicy {
    /// Transient faults retried per candidate before giving up (default 3).
    pub max_retries: u32,
    /// Total faults (of any kind) after which a candidate is quarantined
    /// (default 4 = `max_retries + 1`). Must be at least 1.
    pub quarantine_after: u32,
    /// Base of the exponential backoff before retry `n`:
    /// `backoff_base_ms << (n - 1)`, capped. Zero (the default) disables
    /// sleeping — the schedule is still recorded in the incidents.
    pub backoff_base_ms: u64,
    /// Upper bound on a single backoff wait (default 1000 ms).
    pub backoff_cap_ms: u64,
}

impl Default for SupervisionPolicy {
    fn default() -> Self {
        SupervisionPolicy {
            max_retries: 3,
            quarantine_after: 4,
            backoff_base_ms: 0,
            backoff_cap_ms: 1000,
        }
    }
}

impl SupervisionPolicy {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.quarantine_after == 0 {
            return Err("quarantine_after must be at least 1".into());
        }
        Ok(())
    }

    /// The deterministic backoff before retry `n` (1-based): exponential in
    /// the retry number, bounded by `backoff_cap_ms`.
    pub fn backoff_ms(&self, retry: u32) -> u64 {
        if self.backoff_base_ms == 0 || retry == 0 {
            return 0;
        }
        let shift = (retry - 1).min(20);
        self.backoff_base_ms
            .saturating_mul(1u64 << shift)
            .min(self.backoff_cap_ms)
    }
}

/// A fault injected by a [`HazardPlan`] at a scheduled evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Hazard {
    /// The evaluation panics (exercises the `catch_unwind` isolation).
    Panic,
    /// The evaluation reports a transient fault (retried).
    Transient,
    /// The evaluation reports a permanent fault (quarantined immediately).
    Permanent,
    /// The evaluation reports a step-budget blowout — the injected twin of
    /// the VM watchdog's `ExecutionLimit`.
    BudgetBlowout,
    /// The worker thread holding the candidate dies before evaluating it;
    /// its in-flight share is redealt to the surviving workers.
    KillWorker,
}

#[derive(Debug, Default)]
struct HazardSchedule {
    /// Non-fatal hazards keyed by (evaluation index, attempt).
    scheduled: HashMap<(u64, u32), Hazard>,
    /// Evaluation indices at which the dealing worker dies (fire-once).
    kills: HashSet<u64>,
}

/// A deterministic fault-injection schedule for supervised evaluation —
/// the evaluation-side mirror of [`MemStorage::fail_op`].
///
/// Hazards are keyed by the **substrate evaluation index** (the position in
/// the engine's dealing-order stream of distinct, uncached chromosomes,
/// counted across the whole search) and the attempt number, so a plan fires
/// identically for any worker count. Every hazard fires at most once.
///
/// [`MemStorage::fail_op`]: crate::journal::MemStorage::fail_op
#[derive(Debug, Clone, Default)]
pub struct HazardPlan {
    inner: Arc<Mutex<HazardSchedule>>,
}

impl HazardPlan {
    /// An empty plan (no hazards fire).
    pub fn new() -> Self {
        HazardPlan::default()
    }

    /// Schedules a hazard at the first attempt of evaluation `index`.
    /// [`Hazard::KillWorker`] kills the worker *before* the attempt.
    pub fn schedule(&self, index: u64, hazard: Hazard) {
        self.schedule_attempt(index, 0, hazard);
    }

    /// Schedules a hazard at a specific `(index, attempt)` pair — attempt 0
    /// is the first try, attempt `n` the `n`-th retry. A `KillWorker`
    /// hazard ignores the attempt (workers die between candidates).
    pub fn schedule_attempt(&self, index: u64, attempt: u32, hazard: Hazard) {
        let mut inner = self.inner.lock().expect("hazard plan poisoned");
        if hazard == Hazard::KillWorker {
            inner.kills.insert(index);
        } else {
            inner.scheduled.insert((index, attempt), hazard);
        }
    }

    /// Whether any hazard is still scheduled.
    pub fn is_exhausted(&self) -> bool {
        let inner = self.inner.lock().expect("hazard plan poisoned");
        inner.scheduled.is_empty() && inner.kills.is_empty()
    }

    /// Consumes the hazard scheduled at `(index, attempt)`, if any.
    fn take(&self, index: u64, attempt: u32) -> Option<Hazard> {
        self.inner
            .lock()
            .expect("hazard plan poisoned")
            .scheduled
            .remove(&(index, attempt))
    }

    /// Consumes a worker-kill scheduled at `index`, if any (fire-once: the
    /// redealt candidate must not kill the survivor too).
    pub(crate) fn take_kill(&self, index: u64) -> bool {
        self.inner
            .lock()
            .expect("hazard plan poisoned")
            .kills
            .remove(&index)
    }
}

/// What the supervisor decided about one evaluation, recorded so the
/// journal can prove a resumed search replays the same decisions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IncidentKind {
    /// A transient fault was retried.
    Retry {
        /// The failed attempt (0 = first try).
        attempt: u32,
        /// The deterministic backoff waited before the retry.
        backoff_ms: u64,
        /// The fault that triggered the retry.
        fault: EvalFault,
    },
    /// The candidate was quarantined: scored `NaN` (worst-rank under the
    /// NaN-last total order) and never re-evaluated.
    Quarantine {
        /// Faults the candidate produced in total.
        faults: u32,
        /// The final fault.
        fault: EvalFault,
    },
    /// A worker died; its in-flight candidates were redealt to survivors.
    WorkerLoss,
}

/// One supervision decision, with its campaign-scoped sequence number and
/// the substrate evaluation index it concerns. The stream of incidents is a
/// deterministic function of the search (never of worker identity or
/// wall-clock), so it is bit-identical across worker counts and resumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Incident {
    /// Position in the search's incident stream (0-based).
    pub seq: u64,
    /// The substrate evaluation index (dealing order, search-global).
    pub eval_index: u64,
    /// What happened.
    pub kind: IncidentKind,
}

/// An incident before its sequence number is assigned, with the sort key
/// that canonicalizes the stream across worker interleavings.
#[derive(Debug, Clone)]
pub(crate) struct PendingIncident {
    pub eval_index: u64,
    pub attempt: u32,
    pub kind: IncidentKind,
}

impl PendingIncident {
    /// Tie-break within one `(eval_index, attempt)`: a worker dies before
    /// the candidate is tried, a retry precedes the quarantine verdict.
    fn rank(&self) -> u8 {
        match self.kind {
            IncidentKind::WorkerLoss => 0,
            IncidentKind::Retry { .. } => 1,
            IncidentKind::Quarantine { .. } => 2,
        }
    }

    pub(crate) fn sort_key(&self) -> (u64, u32, u8) {
        (self.eval_index, self.attempt, self.rank())
    }
}

/// The supervisor's verdict on one candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum EvalVerdict {
    /// The evaluation produced a fitness value.
    Scored(f64),
    /// The candidate was quarantined (score `NaN`, worst rank).
    Quarantined,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Runs one candidate under supervision: catches panics, retries transient
/// faults on the policy's deterministic backoff schedule, and quarantines
/// after permanent faults or exhausted retries. Appends every decision to
/// `incidents`.
pub(crate) fn supervise_one<G, F>(
    replica: &mut F,
    genome: &G,
    eval_index: u64,
    policy: &SupervisionPolicy,
    hazards: Option<&HazardPlan>,
    incidents: &mut Vec<PendingIncident>,
) -> EvalVerdict
where
    G: Genome,
    F: ParallelFitness<G>,
{
    let mut faults = 0u32;
    let mut attempt = 0u32;
    loop {
        let injected = hazards.and_then(|h| h.take(eval_index, attempt));
        let outcome = catch_unwind(AssertUnwindSafe(|| match injected {
            Some(Hazard::Panic) => panic!("injected panic at evaluation {eval_index}"),
            Some(Hazard::Transient) => Err(EvalFault::transient("injected transient fault")),
            Some(Hazard::Permanent) => Err(EvalFault::permanent("injected permanent fault")),
            Some(Hazard::BudgetBlowout) => {
                Err(EvalFault::budget_exhausted("injected step-budget blowout"))
            }
            Some(Hazard::KillWorker) | None => replica.try_evaluate(genome),
        }));
        let fault = match outcome {
            Ok(Ok(value)) => return EvalVerdict::Scored(value),
            Ok(Err(fault)) => fault,
            Err(payload) => EvalFault {
                kind: FaultKind::Panic,
                message: panic_message(payload.as_ref()),
            },
        };
        faults += 1;
        if fault.is_retryable() && attempt < policy.max_retries && faults < policy.quarantine_after
        {
            let backoff_ms = policy.backoff_ms(attempt + 1);
            incidents.push(PendingIncident {
                eval_index,
                attempt,
                kind: IncidentKind::Retry {
                    attempt,
                    backoff_ms,
                    fault,
                },
            });
            if backoff_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
            }
            attempt += 1;
        } else {
            incidents.push(PendingIncident {
                eval_index,
                attempt,
                kind: IncidentKind::Quarantine { faults, fault },
            });
            return EvalVerdict::Quarantined;
        }
    }
}

/// The NaN-last total order on engine scores, descending-compatible:
/// finite values compare as usual (`-0.0 == +0.0`), and `NaN` — the
/// quarantine score — ranks below every finite value. This is the same
/// order [`crate::db`] uses to rank virus records.
pub(crate) fn nan_last_cmp(a: f64, b: f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Less,
        (false, true) => std::cmp::Ordering::Greater,
        (false, false) => a.partial_cmp(&b).expect("both values are finite"),
    }
}

/// The best (largest, NaN-last) score in a slice; `NaN` when every entry is
/// `NaN` or the slice is empty. `NaN` round-trips through JSON checkpoints
/// (as `null`), which `-inf` would not.
pub(crate) fn nan_last_max(scores: &[f64]) -> f64 {
    let mut best = f64::NAN;
    for &s in scores {
        if s.is_nan() {
            continue;
        }
        if best.is_nan() || s > best {
            best = s;
        }
    }
    best
}

/// Mean over the finite entries; `NaN` when there are none.
pub(crate) fn finite_mean(scores: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for &s in scores {
        if !s.is_nan() {
            sum += s;
            n += 1;
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::{Fitness, FnFitness};
    use crate::genome::BitGenome;

    struct PanickyFitness;

    impl Fitness<BitGenome> for PanickyFitness {
        fn evaluate(&mut self, _genome: &BitGenome) -> f64 {
            panic!("substrate exploded");
        }
    }

    impl ParallelFitness<BitGenome> for PanickyFitness {
        fn replicate(&self) -> Self {
            PanickyFitness
        }
    }

    fn popcount() -> impl ParallelFitness<BitGenome> {
        FnFitness::new(|g: &BitGenome| g.count_ones() as f64)
    }

    #[test]
    fn clean_evaluation_scores_without_incidents() {
        let mut incidents = Vec::new();
        let verdict = supervise_one(
            &mut popcount(),
            &BitGenome::from_words(&[0xFF], 64),
            0,
            &SupervisionPolicy::default(),
            None,
            &mut incidents,
        );
        assert_eq!(verdict, EvalVerdict::Scored(8.0));
        assert!(incidents.is_empty());
    }

    #[test]
    fn panic_is_caught_and_quarantined_immediately() {
        let mut incidents = Vec::new();
        let verdict = supervise_one(
            &mut PanickyFitness,
            &BitGenome::zeros(8),
            3,
            &SupervisionPolicy::default(),
            None,
            &mut incidents,
        );
        assert_eq!(verdict, EvalVerdict::Quarantined);
        assert_eq!(incidents.len(), 1);
        match &incidents[0].kind {
            IncidentKind::Quarantine { faults, fault } => {
                assert_eq!(*faults, 1);
                assert_eq!(fault.kind, FaultKind::Panic);
                assert!(fault.message.contains("substrate exploded"));
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        assert_eq!(incidents[0].eval_index, 3);
    }

    #[test]
    fn transient_faults_retry_then_succeed() {
        let plan = HazardPlan::new();
        plan.schedule_attempt(7, 0, Hazard::Transient);
        plan.schedule_attempt(7, 1, Hazard::Transient);
        let mut incidents = Vec::new();
        let verdict = supervise_one(
            &mut popcount(),
            &BitGenome::from_words(&[0xF], 64),
            7,
            &SupervisionPolicy::default(),
            Some(&plan),
            &mut incidents,
        );
        assert_eq!(verdict, EvalVerdict::Scored(4.0));
        assert_eq!(incidents.len(), 2);
        for (i, incident) in incidents.iter().enumerate() {
            match &incident.kind {
                IncidentKind::Retry { attempt, fault, .. } => {
                    assert_eq!(*attempt as usize, i);
                    assert_eq!(fault.kind, FaultKind::Transient);
                }
                other => panic!("expected retry, got {other:?}"),
            }
        }
        assert!(plan.is_exhausted());
    }

    #[test]
    fn transient_faults_exhaust_retries_into_quarantine() {
        let policy = SupervisionPolicy {
            max_retries: 2,
            quarantine_after: 10,
            ..SupervisionPolicy::default()
        };
        let plan = HazardPlan::new();
        for attempt in 0..3 {
            plan.schedule_attempt(0, attempt, Hazard::Transient);
        }
        let mut incidents = Vec::new();
        let verdict = supervise_one(
            &mut popcount(),
            &BitGenome::zeros(8),
            0,
            &policy,
            Some(&plan),
            &mut incidents,
        );
        assert_eq!(verdict, EvalVerdict::Quarantined);
        // Two retries, then the third fault quarantines.
        assert_eq!(incidents.len(), 3);
        assert!(matches!(
            incidents[2].kind,
            IncidentKind::Quarantine { faults: 3, .. }
        ));
    }

    #[test]
    fn quarantine_after_caps_total_faults() {
        let policy = SupervisionPolicy {
            max_retries: 10,
            quarantine_after: 2,
            ..SupervisionPolicy::default()
        };
        let plan = HazardPlan::new();
        for attempt in 0..5 {
            plan.schedule_attempt(0, attempt, Hazard::Transient);
        }
        let mut incidents = Vec::new();
        let verdict = supervise_one(
            &mut popcount(),
            &BitGenome::zeros(8),
            0,
            &policy,
            Some(&plan),
            &mut incidents,
        );
        assert_eq!(verdict, EvalVerdict::Quarantined);
        assert_eq!(incidents.len(), 2, "one retry, then quarantine");
    }

    #[test]
    fn permanent_and_budget_faults_never_retry() {
        for hazard in [Hazard::Permanent, Hazard::BudgetBlowout] {
            let plan = HazardPlan::new();
            plan.schedule(0, hazard);
            let mut incidents = Vec::new();
            let verdict = supervise_one(
                &mut popcount(),
                &BitGenome::zeros(8),
                0,
                &SupervisionPolicy::default(),
                Some(&plan),
                &mut incidents,
            );
            assert_eq!(verdict, EvalVerdict::Quarantined, "{hazard:?}");
            assert_eq!(incidents.len(), 1);
        }
    }

    #[test]
    fn backoff_schedule_is_exponential_and_capped() {
        let policy = SupervisionPolicy {
            backoff_base_ms: 100,
            backoff_cap_ms: 350,
            ..SupervisionPolicy::default()
        };
        assert_eq!(policy.backoff_ms(1), 100);
        assert_eq!(policy.backoff_ms(2), 200);
        assert_eq!(policy.backoff_ms(3), 350, "capped");
        assert_eq!(policy.backoff_ms(40), 350, "shift saturates");
        let disabled = SupervisionPolicy::default();
        assert_eq!(disabled.backoff_ms(1), 0, "zero base disables waiting");
    }

    #[test]
    fn policy_validation_rejects_zero_quarantine() {
        let mut policy = SupervisionPolicy::default();
        assert!(policy.validate().is_ok());
        policy.quarantine_after = 0;
        assert!(policy.validate().is_err());
    }

    #[test]
    fn kill_hazards_fire_once() {
        let plan = HazardPlan::new();
        plan.schedule(5, Hazard::KillWorker);
        assert!(plan.take_kill(5));
        assert!(!plan.take_kill(5), "a kill must not fire twice");
        assert!(plan.is_exhausted());
    }

    #[test]
    fn nan_last_order_ranks_nan_below_everything() {
        use std::cmp::Ordering;
        assert_eq!(nan_last_cmp(1.0, f64::NAN), Ordering::Greater);
        assert_eq!(nan_last_cmp(f64::NAN, -1.0e300), Ordering::Less);
        assert_eq!(nan_last_cmp(f64::NAN, f64::NAN), Ordering::Equal);
        assert_eq!(nan_last_cmp(-0.0, 0.0), Ordering::Equal);
        assert_eq!(nan_last_max(&[f64::NAN, 2.0, 1.0]), 2.0);
        assert!(nan_last_max(&[f64::NAN, f64::NAN]).is_nan());
        assert_eq!(finite_mean(&[f64::NAN, 2.0, 4.0]), 3.0);
        assert!(finite_mean(&[]).is_nan());
    }

    #[test]
    fn incident_serialization_round_trips() {
        let incident = Incident {
            seq: 9,
            eval_index: 41,
            kind: IncidentKind::Retry {
                attempt: 1,
                backoff_ms: 200,
                fault: EvalFault::transient("thermal drift"),
            },
        };
        let json = serde_json::to_string(&incident).unwrap();
        let back: Incident = serde_json::from_str(&json).unwrap();
        assert_eq!(back, incident);
    }
}
