//! The virus database (paper §III-F).
//!
//! "We record each virus, i.e. the chromosomes that encode the data and
//! memory access patterns, and the number of manifested DRAM errors for the
//! virus in a database. This enables us to start a new search process using
//! the discovered worst-case viruses if the previous search process has been
//! interrupted."

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::path::Path;

/// One evaluated virus: its chromosome and the errors it manifested.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VirusRecord {
    /// The search campaign this record belongs to (e.g. `"word64-ce"`).
    pub campaign: String,
    /// The chromosome's genes, packed as 64-bit values (bit genomes pack
    /// LSB-first; integer genomes store genes directly).
    pub genes: Vec<u64>,
    /// Gene count (bit genomes: number of bits).
    pub gene_len: usize,
    /// The averaged fitness the search observed.
    pub fitness: f64,
    /// Correctable errors observed (summed over evaluation runs).
    pub ce: u64,
    /// Uncorrectable errors observed.
    pub ue: u64,
    /// Monotonic sequence number within the campaign.
    pub sequence: u64,
}

/// An append-only store of evaluated viruses with JSON persistence.
///
/// # Examples
///
/// ```
/// use dstress_ga::{VirusDatabase, VirusRecord};
///
/// let mut db = VirusDatabase::new();
/// db.record(VirusRecord {
///     campaign: "word64-ce".into(),
///     genes: vec![0x3333_3333_3333_3333],
///     gene_len: 64,
///     fitness: 812.0,
///     ce: 8120,
///     ue: 0,
///     sequence: 0,
/// });
/// let best = db.best("word64-ce").unwrap();
/// assert_eq!(best.genes[0], 0x3333_3333_3333_3333);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VirusDatabase {
    records: Vec<VirusRecord>,
    #[serde(default)]
    next_sequence: HashMap<String, u64>,
}

impl VirusDatabase {
    /// An empty database.
    pub fn new() -> Self {
        VirusDatabase::default()
    }

    /// Appends a record, assigning the campaign's next sequence number if
    /// the caller left `sequence` at 0 and records already exist.
    pub fn record(&mut self, mut record: VirusRecord) {
        let next = self
            .next_sequence
            .entry(record.campaign.clone())
            .or_insert(0);
        if record.sequence == 0 {
            record.sequence = *next;
        }
        *next = (*next).max(record.sequence) + 1;
        self.records.push(record);
    }

    /// All records.
    pub fn records(&self) -> &[VirusRecord] {
        &self.records
    }

    /// All records of one campaign.
    pub fn campaign<'a>(&'a self, name: &str) -> impl Iterator<Item = &'a VirusRecord> + 'a {
        let name = name.to_string();
        self.records.iter().filter(move |r| r.campaign == name)
    }

    /// The highest-fitness record of a campaign. A NaN fitness (a
    /// hand-edited or corrupt database file) ranks below every finite
    /// value instead of aborting the comparison.
    pub fn best(&self, name: &str) -> Option<&VirusRecord> {
        self.campaign(name).max_by(|a, b| rank_fitness(a, b))
    }

    /// The `n` highest-fitness records of a campaign (for resuming a search
    /// from the best discovered viruses). NaN records sort last.
    pub fn top(&self, name: &str, n: usize) -> Vec<&VirusRecord> {
        let mut all: Vec<&VirusRecord> = self.campaign(name).collect();
        all.sort_by(|a, b| rank_fitness(b, a));
        all.truncate(n);
        all
    }

    /// Merges another database's records into this one, remapping every
    /// incoming record's `sequence` past this database's per-campaign
    /// high-water mark (incoming relative order is preserved). Without the
    /// remap, merging two databases that grew the same campaign
    /// independently — both numbering from 0 — would produce colliding
    /// sequence numbers.
    pub fn merge(&mut self, other: VirusDatabase) {
        for mut r in other.records {
            let next = self.next_sequence.entry(r.campaign.clone()).or_insert(0);
            r.sequence = *next;
            *next += 1;
            self.records.push(r);
        }
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Propagates parse failures.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Saves to a file atomically: the JSON is written to a sibling
    /// temporary file, fsynced, and renamed over `path`, so a crash
    /// mid-save leaves either the old file or the new one — never a
    /// truncated hybrid (the failure mode of a plain truncate-then-write).
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialization failures.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let json = self.to_json().map_err(std::io::Error::other)?;
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(json.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Loads from a file. Accepts both a bare database (the pre-journal
    /// `viruses.json` format) and a campaign-journal snapshot (which wraps
    /// the database next to an engine checkpoint).
    ///
    /// # Errors
    ///
    /// Propagates I/O and parse failures.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let mut json = String::new();
        std::fs::File::open(path)?.read_to_string(&mut json)?;
        if let Ok(db) = VirusDatabase::from_json(&json) {
            return Ok(db);
        }
        crate::journal::Snapshot::from_json(&json)
            .map(|s| s.db)
            .map_err(std::io::Error::other)
    }
}

/// Ranks two records by fitness for `best`/`top`: a total order in which
/// NaN sorts below every finite value (corrupt records rank last, they do
/// not panic).
fn rank_fitness(a: &VirusRecord, b: &VirusRecord) -> std::cmp::Ordering {
    match (a.fitness.is_nan(), b.fitness.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Less,
        (false, true) => std::cmp::Ordering::Greater,
        (false, false) => a.fitness.total_cmp(&b.fitness),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(campaign: &str, fitness: f64, genes: Vec<u64>) -> VirusRecord {
        VirusRecord {
            campaign: campaign.into(),
            genes,
            gene_len: 64,
            fitness,
            ce: fitness as u64,
            ue: 0,
            sequence: 0,
        }
    }

    #[test]
    fn records_get_sequences() {
        let mut db = VirusDatabase::new();
        db.record(record("a", 1.0, vec![1]));
        db.record(record("a", 2.0, vec![2]));
        db.record(record("b", 3.0, vec![3]));
        let seqs: Vec<u64> = db.campaign("a").map(|r| r.sequence).collect();
        assert_eq!(seqs, vec![0, 1]);
        assert_eq!(db.campaign("b").next().unwrap().sequence, 0);
    }

    #[test]
    fn best_and_top_rank_by_fitness() {
        let mut db = VirusDatabase::new();
        for (f, g) in [(5.0, 50u64), (9.0, 90), (1.0, 10)] {
            db.record(record("c", f, vec![g]));
        }
        assert_eq!(db.best("c").unwrap().genes, vec![90]);
        let top2: Vec<u64> = db.top("c", 2).iter().map(|r| r.genes[0]).collect();
        assert_eq!(top2, vec![90, 50]);
        assert!(db.best("missing").is_none());
    }

    #[test]
    fn json_roundtrip() {
        let mut db = VirusDatabase::new();
        db.record(record("x", 7.5, vec![0xABC]));
        let json = db.to_json().unwrap();
        let restored = VirusDatabase::from_json(&json).unwrap();
        assert_eq!(db, restored);
    }

    #[test]
    fn file_roundtrip_and_merge() {
        let dir = std::env::temp_dir().join("dstress-db-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("viruses.json");
        let mut a = VirusDatabase::new();
        a.record(record("x", 1.0, vec![1]));
        a.save(&path).unwrap();
        let mut b = VirusDatabase::load(&path).unwrap();
        let mut extra = VirusDatabase::new();
        extra.record(record("x", 2.0, vec![2]));
        b.merge(extra);
        assert_eq!(b.campaign("x").count(), 2);
        assert_eq!(b.best("x").unwrap().genes, vec![2]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        assert!(VirusDatabase::load(Path::new("/nonexistent/zzz.json")).is_err());
    }

    #[test]
    fn merge_remaps_colliding_sequences() {
        // Two databases grown independently for the same campaign both
        // number their records from 0; the merge must remap the incoming
        // side past the target's high-water mark.
        let mut a = VirusDatabase::new();
        a.record(record("x", 1.0, vec![1]));
        a.record(record("x", 2.0, vec![2]));
        let mut b = VirusDatabase::new();
        b.record(record("x", 3.0, vec![3]));
        b.record(record("x", 4.0, vec![4]));
        b.record(record("y", 5.0, vec![5]));
        a.merge(b);
        let seqs: Vec<u64> = a.campaign("x").map(|r| r.sequence).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3], "sequences must stay unique");
        // Incoming relative order is preserved.
        let genes: Vec<u64> = a.campaign("x").map(|r| r.genes[0]).collect();
        assert_eq!(genes, vec![1, 2, 3, 4]);
        // A campaign new to the target starts at 0.
        assert_eq!(a.campaign("y").next().unwrap().sequence, 0);
        // Appending after the merge continues past the merged records.
        a.record(record("x", 6.0, vec![6]));
        assert_eq!(a.campaign("x").last().unwrap().sequence, 4);
    }

    #[test]
    fn nan_fitness_ranks_last_without_panicking() {
        let mut db = VirusDatabase::new();
        db.record(record("n", 2.0, vec![2]));
        db.record(record("n", f64::NAN, vec![99]));
        db.record(record("n", 5.0, vec![5]));
        assert_eq!(db.best("n").unwrap().genes, vec![5]);
        let order: Vec<u64> = db.top("n", 3).iter().map(|r| r.genes[0]).collect();
        assert_eq!(order, vec![5, 2, 99], "NaN record must sort last");
        // An all-NaN campaign still answers instead of aborting.
        let mut only = VirusDatabase::new();
        only.record(record("m", f64::NAN, vec![7]));
        assert_eq!(only.best("m").unwrap().genes, vec![7]);
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_file() {
        let dir = std::env::temp_dir().join("dstress-db-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("viruses.json");
        let mut db = VirusDatabase::new();
        db.record(record("x", 1.0, vec![1]));
        db.save(&path).unwrap();
        // Overwriting an existing file goes through the same temp+rename.
        db.record(record("x", 2.0, vec![2]));
        db.save(&path).unwrap();
        assert_eq!(VirusDatabase::load(&path).unwrap(), db);
        assert!(
            !dir.join("viruses.json.tmp").exists(),
            "temp file must be renamed away"
        );
        std::fs::remove_file(&path).ok();
    }
}
