//! The virus database (paper §III-F).
//!
//! "We record each virus, i.e. the chromosomes that encode the data and
//! memory access patterns, and the number of manifested DRAM errors for the
//! virus in a database. This enables us to start a new search process using
//! the discovered worst-case viruses if the previous search process has been
//! interrupted."

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::path::Path;

/// One evaluated virus: its chromosome and the errors it manifested.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VirusRecord {
    /// The search campaign this record belongs to (e.g. `"word64-ce"`).
    pub campaign: String,
    /// The chromosome's genes, packed as 64-bit values (bit genomes pack
    /// LSB-first; integer genomes store genes directly).
    pub genes: Vec<u64>,
    /// Gene count (bit genomes: number of bits).
    pub gene_len: usize,
    /// The averaged fitness the search observed.
    pub fitness: f64,
    /// Correctable errors observed (summed over evaluation runs).
    pub ce: u64,
    /// Uncorrectable errors observed.
    pub ue: u64,
    /// Monotonic sequence number within the campaign.
    pub sequence: u64,
}

/// An append-only store of evaluated viruses with JSON persistence.
///
/// # Examples
///
/// ```
/// use dstress_ga::{VirusDatabase, VirusRecord};
///
/// let mut db = VirusDatabase::new();
/// db.record(VirusRecord {
///     campaign: "word64-ce".into(),
///     genes: vec![0x3333_3333_3333_3333],
///     gene_len: 64,
///     fitness: 812.0,
///     ce: 8120,
///     ue: 0,
///     sequence: 0,
/// });
/// let best = db.best("word64-ce").unwrap();
/// assert_eq!(best.genes[0], 0x3333_3333_3333_3333);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VirusDatabase {
    records: Vec<VirusRecord>,
    #[serde(default)]
    next_sequence: HashMap<String, u64>,
}

impl VirusDatabase {
    /// An empty database.
    pub fn new() -> Self {
        VirusDatabase::default()
    }

    /// Appends a record, assigning the campaign's next sequence number if
    /// the caller left `sequence` at 0 and records already exist.
    pub fn record(&mut self, mut record: VirusRecord) {
        let next = self
            .next_sequence
            .entry(record.campaign.clone())
            .or_insert(0);
        if record.sequence == 0 {
            record.sequence = *next;
        }
        *next = (*next).max(record.sequence) + 1;
        self.records.push(record);
    }

    /// All records.
    pub fn records(&self) -> &[VirusRecord] {
        &self.records
    }

    /// All records of one campaign.
    pub fn campaign<'a>(&'a self, name: &str) -> impl Iterator<Item = &'a VirusRecord> + 'a {
        let name = name.to_string();
        self.records.iter().filter(move |r| r.campaign == name)
    }

    /// The highest-fitness record of a campaign.
    pub fn best(&self, name: &str) -> Option<&VirusRecord> {
        self.campaign(name)
            .max_by(|a, b| a.fitness.partial_cmp(&b.fitness).expect("finite fitness"))
    }

    /// The `n` highest-fitness records of a campaign (for resuming a search
    /// from the best discovered viruses).
    pub fn top(&self, name: &str, n: usize) -> Vec<&VirusRecord> {
        let mut all: Vec<&VirusRecord> = self.campaign(name).collect();
        all.sort_by(|a, b| b.fitness.partial_cmp(&a.fitness).expect("finite fitness"));
        all.truncate(n);
        all
    }

    /// Merges another database's records into this one.
    pub fn merge(&mut self, other: VirusDatabase) {
        for r in other.records {
            self.record(r);
        }
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Propagates parse failures.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Saves to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialization failures.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let json = self.to_json().map_err(std::io::Error::other)?;
        let mut f = std::fs::File::create(path)?;
        f.write_all(json.as_bytes())
    }

    /// Loads from a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O and parse failures.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let mut json = String::new();
        std::fs::File::open(path)?.read_to_string(&mut json)?;
        VirusDatabase::from_json(&json).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(campaign: &str, fitness: f64, genes: Vec<u64>) -> VirusRecord {
        VirusRecord {
            campaign: campaign.into(),
            genes,
            gene_len: 64,
            fitness,
            ce: fitness as u64,
            ue: 0,
            sequence: 0,
        }
    }

    #[test]
    fn records_get_sequences() {
        let mut db = VirusDatabase::new();
        db.record(record("a", 1.0, vec![1]));
        db.record(record("a", 2.0, vec![2]));
        db.record(record("b", 3.0, vec![3]));
        let seqs: Vec<u64> = db.campaign("a").map(|r| r.sequence).collect();
        assert_eq!(seqs, vec![0, 1]);
        assert_eq!(db.campaign("b").next().unwrap().sequence, 0);
    }

    #[test]
    fn best_and_top_rank_by_fitness() {
        let mut db = VirusDatabase::new();
        for (f, g) in [(5.0, 50u64), (9.0, 90), (1.0, 10)] {
            db.record(record("c", f, vec![g]));
        }
        assert_eq!(db.best("c").unwrap().genes, vec![90]);
        let top2: Vec<u64> = db.top("c", 2).iter().map(|r| r.genes[0]).collect();
        assert_eq!(top2, vec![90, 50]);
        assert!(db.best("missing").is_none());
    }

    #[test]
    fn json_roundtrip() {
        let mut db = VirusDatabase::new();
        db.record(record("x", 7.5, vec![0xABC]));
        let json = db.to_json().unwrap();
        let restored = VirusDatabase::from_json(&json).unwrap();
        assert_eq!(db, restored);
    }

    #[test]
    fn file_roundtrip_and_merge() {
        let dir = std::env::temp_dir().join("dstress-db-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("viruses.json");
        let mut a = VirusDatabase::new();
        a.record(record("x", 1.0, vec![1]));
        a.save(&path).unwrap();
        let mut b = VirusDatabase::load(&path).unwrap();
        let mut extra = VirusDatabase::new();
        extra.record(record("x", 2.0, vec![2]));
        b.merge(extra);
        assert_eq!(b.campaign("x").count(), 2);
        assert_eq!(b.best("x").unwrap().genes, vec![2]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        assert!(VirusDatabase::load(Path::new("/nonexistent/zzz.json")).is_err());
    }
}
