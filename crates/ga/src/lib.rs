//! The DStress Genetic Algorithm search engine (paper §III-E).
//!
//! The GA explores the space of data / memory-access patterns declared by a
//! virus template. Each chromosome encodes one concrete pattern; the fitness
//! of a chromosome is the number of DRAM errors its virus manifests on the
//! experimental server. The engine implements exactly the machinery the
//! paper describes:
//!
//! * **chromosomes** ([`genome`]) — binary vectors for data patterns and
//!   row bitmaps, bounded integer vectors for access-stride coefficients;
//! * **selection** ([`ops::selection`]) — fitness-proportional roulette (the
//!   classic choice), plus tournament and truncation for the ablation
//!   benches;
//! * **mutation / crossover** ([`ops`]) — per-chromosome mutation
//!   probability 0.5 and crossover probability 0.9 with population 40, the
//!   optimum the paper finds with its popcount calibration (§V "Parameters
//!   of the GA search");
//! * **convergence** ([`engine`]) — stop when the mean pairwise
//!   Sokal–Michener (binary) or weighted Jaccard (integer) similarity of
//!   the population exceeds 0.85, or when the generation budget (the
//!   paper's two-week wall-clock cap) is exhausted;
//! * **the virus database** ([`db`]) — every evaluated chromosome and its
//!   error counts are recorded so an interrupted search can resume
//!   (§III-F).
//!
//! # Examples
//!
//! Reproducing the paper's GA-parameter calibration (maximize the number of
//! `1` bits in a 64-bit chromosome):
//!
//! ```
//! use dstress_ga::{BitGenome, FnFitness, GaConfig, GaEngine};
//!
//! let config = GaConfig::paper_defaults();
//! let mut engine = GaEngine::new(config, 42);
//! let mut fitness = FnFitness::new(|g: &BitGenome| g.count_ones() as f64);
//! let result = engine.run(|rng| BitGenome::random(rng, 64), &mut fitness);
//! assert!(result.best_fitness >= 60.0, "GA should nearly solve popcount");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod db;
pub mod engine;
pub mod fitness;
pub mod genome;
pub mod journal;
pub mod ops;
pub mod pool;
pub mod supervise;

pub use db::{VirusDatabase, VirusRecord};
pub use engine::{
    EngineState, EvalStats, GaConfig, GaEngine, GenerationStats, SearchResult, SearchSession,
};
pub use fitness::{AveragedFitness, EvalFault, FaultKind, Fitness, FnFitness, ParallelFitness};
pub use genome::{BitGenome, Genome, IntGenome};
pub use journal::{
    run_journaled, CampaignJournal, DiskStorage, MemStorage, SharedStorage, Snapshot, Storage,
    StoredCheckpoint, StoredIncident,
};
pub use ops::crossover::CrossoverOp;
pub use ops::selection::SelectionScheme;
pub use pool::{CampaignScheduler, EvalPool};
pub use supervise::{Hazard, HazardPlan, Incident, IncidentKind, SupervisionPolicy};
