//! The persistent work-stealing evaluation pool and the multi-campaign
//! scheduler built on it.
//!
//! The per-generation scoped executor (kept in [`crate::engine`] as the
//! differential baseline) pays thread spawn and replica churn every round
//! and blocks on a static round-robin deal, so one expensive candidate —
//! a retry storm, a step-budget blowout, a cold plan cache — leaves every
//! other worker idle at the generation barrier. [`EvalPool`] replaces it
//! with workers spawned **once per campaign driver**: each owns a warm
//! [`ParallelFitness`] replica whose plan/profile/compile caches survive
//! across generations, candidates are pushed as tasks into per-worker
//! deques, and an idle worker steals from the back of a loaded one.
//!
//! # Why stealing cannot change the result
//!
//! Everything observable is keyed by the **campaign-dense evaluation
//! index** assigned during the cache pre-pass (cache hits never consume
//! indices), never by worker identity or completion time:
//!
//! * replicas are pure (the [`ParallelFitness`] contract), so a verdict
//!   does not depend on which replica produced it;
//! * injected hazards fire on `(eval index, attempt)`, so retries and
//!   quarantines replay identically under any interleaving;
//! * a [`Hazard::KillWorker`] fires exactly once, when *some* worker first
//!   claims that task — the task is requeued for the survivors (losing the
//!   last worker revives the pool), and the recorded incident carries the
//!   evaluation index, not the worker;
//! * verdicts are drained in dealing order and incidents are canonically
//!   sorted by `(eval index, attempt, phase)`.
//!
//! The result — scores, journal records, incident stream — is therefore
//! bit-identical to the scoped baseline for any worker count, any steal
//! interleaving and any hazard schedule; the differential suites pin this.
//!
//! # Fair-share scheduling
//!
//! [`CampaignScheduler`] multiplexes N concurrent [`SearchSession`]s over
//! one pool: each tick opens one generation round per runnable campaign,
//! interleaves the rounds' tasks round-robin (campaign 0's first task,
//! campaign 1's first task, …) so every campaign gets a fair share of the
//! workers within the batch, and completes each round from its own
//! verdicts. Per-campaign step budgets pause a campaign without blocking
//! the others — the scheduling core of the roadmap's `dstressd`, shipped
//! without the network front-end.
//!
//! [`Hazard::KillWorker`]: crate::supervise::Hazard::KillWorker

use crate::engine::{EvalStats, PoolRoundStats, RoundExecution, SearchSession};
use crate::fitness::ParallelFitness;
use crate::genome::Genome;
use crate::supervise::{
    supervise_one, EvalVerdict, HazardPlan, IncidentKind, PendingIncident, SupervisionPolicy,
};
use std::collections::{HashSet, VecDeque};
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// One pending candidate handed to the pool: its dealing-order slot in the
/// round, its campaign-dense evaluation index, and the chromosome.
#[derive(Debug)]
pub(crate) struct PoolTask<G> {
    pub(crate) slot: usize,
    pub(crate) eval_index: u64,
    pub(crate) genome: G,
}

/// One campaign's round of tasks plus the supervision it runs under.
#[derive(Debug)]
pub(crate) struct RoundSubmission<G> {
    pub(crate) tasks: Vec<PoolTask<G>>,
    pub(crate) policy: SupervisionPolicy,
    pub(crate) hazards: Option<HazardPlan>,
}

/// A task in a worker deque, tagged with the round it belongs to.
#[derive(Debug)]
struct QueuedTask<G> {
    round: usize,
    slot: usize,
    eval_index: u64,
    genome: G,
}

/// A finished task, reported back under the pool lock.
struct TaskDone {
    round: usize,
    slot: usize,
    verdict: EvalVerdict,
    incidents: Vec<PendingIncident>,
    worker: usize,
    stolen: bool,
    warm_delta: u64,
    cold_delta: u64,
    busy_ns: u64,
}

/// The in-flight batch: per-worker deques, per-round supervision, and the
/// completions accumulated so far.
struct Batch<G> {
    queues: Vec<VecDeque<QueuedTask<G>>>,
    outstanding: usize,
    supervision: Vec<(SupervisionPolicy, Option<HazardPlan>)>,
    done: Vec<TaskDone>,
    /// `(round, eval index)` of every worker loss in this batch.
    losses: Vec<(usize, u64)>,
}

/// Everything behind the pool mutex.
struct PoolState<G, F> {
    batch: Option<Batch<G>>,
    /// Workers currently dead (killed by a hazard). Persists across
    /// batches — a dead worker stays dead for the rest of the campaign
    /// unless the whole pool dies and is revived — mirroring the scoped
    /// executor's session-lifetime dead set.
    dead: HashSet<usize>,
    shutdown: bool,
    /// Replicas handed back by exiting workers, by worker slot.
    retired: Vec<Option<F>>,
}

struct Shared<G, F> {
    state: Mutex<PoolState<G, F>>,
    /// Workers wait here for tasks (or shutdown).
    work: Condvar,
    /// The coordinator waits here for the batch to complete.
    idle: Condvar,
}

/// What a worker claimed from the deques, with the supervision snapshot of
/// the task's round and the queue the task came from (for requeueing if a
/// kill hazard fires).
struct Claimed<G> {
    task: QueuedTask<G>,
    stolen: bool,
    source: usize,
    policy: SupervisionPolicy,
    hazards: Option<HazardPlan>,
}

fn claim<G, F>(state: &mut PoolState<G, F>, id: usize) -> Option<Claimed<G>> {
    if state.dead.contains(&id) {
        return None;
    }
    let batch = state.batch.as_mut()?;
    let workers = batch.queues.len();
    if let Some(task) = batch.queues[id].pop_front() {
        let (policy, hazards) = batch.supervision[task.round].clone();
        return Some(Claimed {
            task,
            stolen: false,
            source: id,
            policy,
            hazards,
        });
    }
    // Steal from the back of the first loaded deque, scanning the ring
    // from our right-hand neighbour. (Which queue we steal from is a pure
    // load-balance choice — verdicts are keyed by evaluation index, so it
    // cannot affect the result.)
    for offset in 1..workers {
        let victim = (id + offset) % workers;
        if let Some(task) = batch.queues[victim].pop_back() {
            let (policy, hazards) = batch.supervision[task.round].clone();
            return Some(Claimed {
                task,
                stolen: true,
                source: victim,
                policy,
                hazards,
            });
        }
    }
    None
}

fn worker_loop<G, F>(id: usize, mut replica: F, shared: Arc<Shared<G, F>>)
where
    G: Genome,
    F: ParallelFitness<G>,
{
    loop {
        let claimed = {
            let mut state = shared.state.lock().expect("pool state poisoned");
            loop {
                if state.shutdown {
                    state.retired[id] = Some(replica);
                    return;
                }
                if let Some(claimed) = claim(&mut state, id) {
                    break claimed;
                }
                state = shared.work.wait(state).expect("pool state poisoned");
            }
        };
        let Claimed {
            task,
            stolen,
            source,
            policy,
            hazards,
        } = claimed;
        if hazards
            .as_ref()
            .is_some_and(|h| h.take_kill(task.eval_index))
        {
            // The worker dies before touching this candidate. Requeue the
            // task where it came from — a survivor will steal it (the kill
            // fired once, so it cannot fire again) — and record the loss
            // against the task's campaign. Losing the last worker revives
            // the whole pool so the batch always completes.
            let mut state = shared.state.lock().expect("pool state poisoned");
            state.dead.insert(id);
            let workers = state.retired.len();
            if state.dead.len() >= workers {
                state.dead.clear();
            }
            let batch = state
                .batch
                .as_mut()
                .expect("a claimed task implies a batch");
            batch.losses.push((task.round, task.eval_index));
            batch.queues[source].push_front(task);
            drop(state);
            shared.work.notify_all();
            continue;
        }
        let started = Instant::now();
        let (warm_before, cold_before) = replica.cache_counters();
        let mut local = Vec::new();
        let verdict = supervise_one(
            &mut replica,
            &task.genome,
            task.eval_index,
            &policy,
            hazards.as_ref(),
            &mut local,
        );
        let (warm_after, cold_after) = replica.cache_counters();
        let busy_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut state = shared.state.lock().expect("pool state poisoned");
        let batch = state
            .batch
            .as_mut()
            .expect("a claimed task implies a batch");
        batch.done.push(TaskDone {
            round: task.round,
            slot: task.slot,
            verdict,
            incidents: local,
            worker: id,
            stolen,
            warm_delta: warm_after.saturating_sub(warm_before),
            cold_delta: cold_after.saturating_sub(cold_before),
            busy_ns,
        });
        batch.outstanding -= 1;
        if batch.outstanding == 0 {
            drop(state);
            shared.idle.notify_all();
        }
    }
}

/// A persistent work-stealing evaluation pool: long-lived worker threads,
/// each owning a warm [`ParallelFitness`] replica, fed task batches by one
/// or more [`SearchSession`]s. See the [module docs](self) for the
/// determinism argument.
///
/// Construct one per campaign driver (or per process), drive sessions
/// through [`SearchSession::step_pooled`] or a [`CampaignScheduler`], and
/// [`shutdown`](EvalPool::shutdown) at the end to absorb the replicas'
/// bookkeeping back into the master fitness.
#[derive(Debug)]
pub struct EvalPool<G, F> {
    shared: Arc<Shared<G, F>>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl<G, F> std::fmt::Debug for Shared<G, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").finish_non_exhaustive()
    }
}

impl<G, F> EvalPool<G, F>
where
    G: Genome + 'static,
    F: ParallelFitness<G> + 'static,
{
    /// Spawns `workers` persistent evaluation threads, each owning a fresh
    /// replica of `fitness`.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or a worker thread cannot be spawned.
    pub fn new(fitness: &F, workers: usize) -> Self {
        assert!(workers >= 1, "at least one evaluation worker is required");
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                batch: None,
                dead: HashSet::new(),
                shutdown: false,
                retired: (0..workers).map(|_| None).collect(),
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|id| {
                let replica = fitness.replicate();
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dstress-eval-{id}"))
                    .spawn(move || worker_loop(id, replica, shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        EvalPool {
            shared,
            handles,
            workers,
        }
    }

    /// The number of worker threads (alive or hazard-killed).
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn lock(&self) -> MutexGuard<'_, PoolState<G, F>> {
        self.shared.state.lock().expect("pool state poisoned")
    }

    /// Runs one batch: the submissions' tasks are interleaved round-robin
    /// across campaigns (fair share), dealt round-robin into the live
    /// workers' deques, and executed with stealing until every task has a
    /// verdict. Returns one [`RoundExecution`] per submission, in order.
    pub(crate) fn execute(&self, rounds: Vec<RoundSubmission<G>>) -> Vec<RoundExecution> {
        let sizes: Vec<usize> = rounds.iter().map(|r| r.tasks.len()).collect();
        let total: usize = sizes.iter().sum();
        assert!(total > 0, "a pool batch needs at least one task");
        let wall = Instant::now();
        let mut supervision = Vec::with_capacity(rounds.len());
        let mut task_streams = Vec::with_capacity(rounds.len());
        for submission in rounds {
            supervision.push((submission.policy, submission.hazards));
            task_streams.push(submission.tasks.into_iter());
        }
        // Fair-share interleave: one task from every round per cycle, so
        // within the batch no campaign waits behind another's whole round.
        let mut interleaved: Vec<QueuedTask<G>> = Vec::with_capacity(total);
        loop {
            let before = interleaved.len();
            for (round, stream) in task_streams.iter_mut().enumerate() {
                if let Some(task) = stream.next() {
                    interleaved.push(QueuedTask {
                        round,
                        slot: task.slot,
                        eval_index: task.eval_index,
                        genome: task.genome,
                    });
                }
            }
            if interleaved.len() == before {
                break;
            }
        }
        {
            let mut state = self.lock();
            assert!(state.batch.is_none(), "one pool batch at a time");
            // A wholly-dead pool (can only happen transiently) revives.
            if state.dead.len() >= self.workers {
                state.dead.clear();
            }
            let alive: Vec<usize> = (0..self.workers)
                .filter(|w| !state.dead.contains(w))
                .collect();
            let mut queues: Vec<VecDeque<QueuedTask<G>>> =
                (0..self.workers).map(|_| VecDeque::new()).collect();
            for (position, task) in interleaved.into_iter().enumerate() {
                queues[alive[position % alive.len()]].push_back(task);
            }
            state.batch = Some(Batch {
                queues,
                outstanding: total,
                supervision,
                done: Vec::with_capacity(total),
                losses: Vec::new(),
            });
        }
        self.shared.work.notify_all();
        let (batch, dead_after) = {
            let mut state = self.lock();
            while state.batch.as_ref().expect("batch in flight").outstanding > 0 {
                state = self.shared.idle.wait(state).expect("pool state poisoned");
            }
            let dead = state.dead.len();
            (state.batch.take().expect("batch in flight"), dead)
        };
        let wall_ns = u64::try_from(wall.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.assemble(batch, &sizes, dead_after, wall_ns)
    }

    /// Reassembles a completed batch into per-round executions: verdicts
    /// placed by slot, incidents (task-level plus worker losses)
    /// canonically sorted, and the batch's observability counters split by
    /// the round each task belonged to.
    fn assemble(
        &self,
        batch: Batch<G>,
        sizes: &[usize],
        dead_after: usize,
        wall_ns: u64,
    ) -> Vec<RoundExecution> {
        let mut verdicts: Vec<Vec<Option<EvalVerdict>>> =
            sizes.iter().map(|&len| vec![None; len]).collect();
        let mut incidents: Vec<Vec<PendingIncident>> = sizes.iter().map(|_| Vec::new()).collect();
        let mut stats: Vec<PoolRoundStats> = sizes
            .iter()
            .map(|_| PoolRoundStats {
                worker_tasks: vec![0; self.workers],
                ..PoolRoundStats::default()
            })
            .collect();
        let mut busy = vec![0u64; self.workers];
        for done in batch.done {
            verdicts[done.round][done.slot] = Some(done.verdict);
            incidents[done.round].extend(done.incidents);
            let round_stats = &mut stats[done.round];
            round_stats.worker_tasks[done.worker] += 1;
            if done.stolen {
                round_stats.steals += 1;
            }
            round_stats.warm_hits += done.warm_delta;
            round_stats.cold_misses += done.cold_delta;
            busy[done.worker] += done.busy_ns;
        }
        for (round, eval_index) in batch.losses {
            incidents[round].push(PendingIncident {
                eval_index,
                attempt: 0,
                kind: IncidentKind::WorkerLoss,
            });
        }
        // The straggler tail is a property of the whole batch (the workers
        // served every round in it), so each round reports the same value.
        let max_idle = busy
            .iter()
            .map(|&b| wall_ns.saturating_sub(b))
            .max()
            .unwrap_or(0);
        let alive_workers = self.workers - dead_after;
        verdicts
            .into_iter()
            .zip(incidents)
            .zip(stats)
            .map(|((round_verdicts, mut round_incidents), mut round_stats)| {
                round_incidents.sort_by_key(|incident| incident.sort_key());
                round_stats.max_worker_idle_ns = max_idle;
                RoundExecution {
                    verdicts: round_verdicts
                        .into_iter()
                        .map(|v| v.expect("every pending candidate has a verdict"))
                        .collect(),
                    incidents: round_incidents,
                    alive_workers,
                    pool: Some(round_stats),
                }
            })
            .collect()
    }

    /// Stops the workers and returns their replicas (in worker order) so
    /// the campaign driver can [`absorb`](ParallelFitness::absorb) their
    /// bookkeeping back into the master fitness.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked outside supervised evaluation.
    pub fn shutdown(mut self) -> Vec<F> {
        self.lock().shutdown = true;
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            handle.join().expect("pool worker panicked");
        }
        let mut state = self.lock();
        (0..self.workers)
            .map(|id| {
                state.retired[id]
                    .take()
                    .expect("every worker retires its replica")
            })
            .collect()
    }
}

impl<G, F> Drop for EvalPool<G, F> {
    fn drop(&mut self) {
        if self.handles.is_empty() {
            return;
        }
        // Recover a poisoned lock: if a worker panicked while holding it,
        // the shutdown flag must still be set or the remaining workers
        // would park forever and the joins below would deadlock.
        let mut state = self
            .shared
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.shutdown = true;
        drop(state);
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One campaign under the scheduler: its session, how many steps it has
/// taken, its optional step budget, and whether a client has paused it.
#[derive(Debug)]
struct Scheduled<G> {
    session: SearchSession<G>,
    steps_taken: u64,
    step_budget: Option<u64>,
    paused: bool,
}

impl<G> Scheduled<G> {
    fn runnable(&self) -> bool
    where
        G: Genome + PartialEq + Eq + Hash + Sync,
    {
        !self.paused
            && !self.session.done()
            && self
                .step_budget
                .is_none_or(|budget| self.steps_taken < budget)
    }
}

/// Multiplexes N concurrent [`SearchSession`]s over one [`EvalPool`] with
/// fair-share dealing and per-campaign step budgets — the scheduling core
/// of a multi-tenant campaign service. See the [module docs](self).
///
/// Each [`tick`](CampaignScheduler::tick) advances every runnable campaign
/// by exactly one generation round, with all the rounds' candidates
/// interleaved into a single pool batch; campaigns that converge or
/// exhaust their budget simply stop contributing tasks. Because every
/// campaign keeps its own session (indices, cache, RNG, incidents), its
/// results and journal records are bit-identical to running it alone on
/// the same pool.
#[derive(Debug)]
pub struct CampaignScheduler<G, F> {
    pool: EvalPool<G, F>,
    /// Slot-stable campaign table: ids are indices, removal leaves a
    /// `None` hole so surviving campaigns keep their ids (and therefore
    /// their dealing order and campaign-dense eval indices).
    campaigns: Vec<Option<Scheduled<G>>>,
}

impl<G, F> CampaignScheduler<G, F>
where
    G: Genome + PartialEq + Eq + Hash + Sync + 'static,
    F: ParallelFitness<G> + 'static,
{
    /// Wraps a pool. Campaigns are added with
    /// [`add`](CampaignScheduler::add).
    pub fn new(pool: EvalPool<G, F>) -> Self {
        CampaignScheduler {
            pool,
            campaigns: Vec::new(),
        }
    }

    /// Adds a campaign with an optional step budget (generation rounds it
    /// may take before pausing; `None` = unbounded). Returns its id, which
    /// stays valid until the campaign is [`remove`](Self::remove)d — ids
    /// are never reused or shifted by other campaigns' removal.
    pub fn add(&mut self, session: SearchSession<G>, step_budget: Option<u64>) -> usize {
        self.campaigns.push(Some(Scheduled {
            session,
            steps_taken: 0,
            step_budget,
            paused: false,
        }));
        self.campaigns.len() - 1
    }

    /// Removes a campaign and returns its session. The surviving
    /// campaigns keep their ids, their dealing order, and (because every
    /// session owns its campaign-dense eval indices) their exact
    /// trajectories — removal mid-run cannot shift another campaign's
    /// results.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never assigned or is already removed.
    pub fn remove(&mut self, id: usize) -> SearchSession<G> {
        self.campaigns[id]
            .take()
            .expect("campaign already removed")
            .session
    }

    /// Whether `id` names a live (not yet removed) campaign.
    pub fn contains(&self, id: usize) -> bool {
        self.campaigns.get(id).is_some_and(Option::is_some)
    }

    /// The number of live campaigns.
    pub fn campaigns(&self) -> usize {
        self.campaigns.iter().flatten().count()
    }

    fn scheduled(&self, id: usize) -> &Scheduled<G> {
        self.campaigns[id]
            .as_ref()
            .expect("campaign already removed")
    }

    fn scheduled_mut(&mut self, id: usize) -> &mut Scheduled<G> {
        self.campaigns[id]
            .as_mut()
            .expect("campaign already removed")
    }

    /// The campaign's session (leaderboard, incidents, eval stats …).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or removed.
    pub fn session(&self, id: usize) -> &SearchSession<G> {
        &self.scheduled(id).session
    }

    /// Mutable access to a campaign's session — how a journaling driver
    /// drains [`SearchSession::take_newly_evaluated`] and
    /// [`SearchSession::take_new_incidents`] between ticks.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or removed.
    pub fn session_mut(&mut self, id: usize) -> &mut SearchSession<G> {
        &mut self.scheduled_mut(id).session
    }

    /// Steps a campaign has taken under this scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or removed.
    pub fn steps_taken(&self, id: usize) -> u64 {
        self.scheduled(id).steps_taken
    }

    /// Pauses or resumes a campaign: a paused campaign contributes no
    /// tasks to subsequent ticks but keeps all its state and resumes
    /// exactly where it stopped.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or removed.
    pub fn set_paused(&mut self, id: usize, paused: bool) {
        self.scheduled_mut(id).paused = paused;
    }

    /// Whether a campaign is client-paused.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or removed.
    pub fn is_paused(&self, id: usize) -> bool {
        self.scheduled(id).paused
    }

    /// Replaces a campaign's step budget (counted from its first step
    /// under this scheduler, not from now).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or removed.
    pub fn set_step_budget(&mut self, id: usize, step_budget: Option<u64>) {
        self.scheduled_mut(id).step_budget = step_budget;
    }

    /// Whether every campaign is finished, client-paused, or paused on
    /// its budget.
    pub fn idle(&self) -> bool {
        !self.campaigns.iter().flatten().any(Scheduled::runnable)
    }

    /// Advances every runnable campaign by one generation round, their
    /// candidates interleaved fair-share into one pool batch. Returns
    /// `false` (and does nothing) once no campaign is runnable.
    pub fn tick(&mut self) -> bool {
        let workers = self.pool.workers();
        let mut opened = Vec::new();
        for (id, slot) in self.campaigns.iter_mut().enumerate() {
            let Some(campaign) = slot else { continue };
            if !campaign.runnable() {
                continue;
            }
            campaign.session.note_workers(workers);
            if let Some(round) = campaign.session.begin_round() {
                campaign.steps_taken += 1;
                opened.push((id, round));
            }
        }
        if opened.is_empty() {
            return false;
        }
        // Rounds with pending candidates go to the pool; all-cached rounds
        // finish immediately (their sessions still advance a generation).
        let mut submissions = Vec::new();
        let mut submitted = Vec::new();
        for (position, (id, round)) in opened.iter().enumerate() {
            if round.plan.pending.is_empty() {
                continue;
            }
            submissions.push(RoundSubmission {
                tasks: round.plan.pool_tasks(),
                policy: self.session(*id).supervision_policy(),
                hazards: self.session(*id).hazard_plan(),
            });
            submitted.push(position);
        }
        let executions = if submissions.is_empty() {
            Vec::new()
        } else {
            self.pool.execute(submissions)
        };
        let mut executions = executions.into_iter();
        let mut submitted = submitted.into_iter().peekable();
        for (position, (id, round)) in opened.into_iter().enumerate() {
            let execution = if submitted.peek() == Some(&position) {
                submitted.next();
                Some(executions.next().expect("one execution per submission"))
            } else {
                None
            };
            self.session_mut(id).finish_round(round, execution);
        }
        true
    }

    /// Ticks until every campaign is finished or budget-paused.
    pub fn run(&mut self) {
        while self.tick() {}
    }

    /// The deterministic cross-campaign merge of every session's
    /// [`EvalStats`] (see [`EvalStats::merge`]) — the pool-wide view a
    /// multi-tenant driver reports.
    pub fn merged_eval_stats(&self) -> EvalStats {
        let mut merged = EvalStats::default();
        for campaign in self.campaigns.iter().flatten() {
            merged.merge(campaign.session.eval_stats());
        }
        merged
    }

    /// Consumes the scheduler: the live sessions (in add order; removed
    /// campaigns are skipped) and the pool's replicas, ready for
    /// [`absorb`](ParallelFitness::absorb).
    pub fn finish(self) -> (Vec<SearchSession<G>>, Vec<F>) {
        let sessions = self
            .campaigns
            .into_iter()
            .flatten()
            .map(|campaign| campaign.session)
            .collect();
        (sessions, self.pool.shutdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{GaConfig, SearchResult};
    use crate::fitness::Fitness;
    use crate::genome::BitGenome;
    use crate::supervise::Hazard;
    use rand::rngs::StdRng;

    /// A popcount fitness with an internal memo, so the pool's warm/cold
    /// replica-cache counters have something real to sample.
    #[derive(Debug, Clone, Default)]
    struct MemoPopcount {
        memo: std::collections::HashMap<Vec<u64>, f64>,
        warm: u64,
        cold: u64,
    }

    impl Fitness<BitGenome> for MemoPopcount {
        fn evaluate(&mut self, genome: &BitGenome) -> f64 {
            let key = genome.to_words();
            if let Some(&score) = self.memo.get(&key) {
                self.warm += 1;
                return score;
            }
            self.cold += 1;
            let score = genome.count_ones() as f64;
            self.memo.insert(key, score);
            score
        }
    }

    impl ParallelFitness<BitGenome> for MemoPopcount {
        fn replicate(&self) -> Self {
            MemoPopcount::default()
        }

        fn absorb(&mut self, replica: Self) {
            self.warm += replica.warm;
            self.cold += replica.cold;
        }

        fn cache_counters(&self) -> (u64, u64) {
            (self.warm, self.cold)
        }
    }

    fn small_config() -> GaConfig {
        let mut config = GaConfig::paper_defaults();
        config.population_size = 12;
        config.max_generations = 6;
        config
    }

    fn session_with(seed: u64, hazards: Option<HazardPlan>) -> SearchSession<BitGenome> {
        let mut session = SearchSession::start(small_config(), seed, |rng: &mut StdRng| {
            BitGenome::random(rng, 32)
        });
        session.set_hazards(hazards);
        session
    }

    fn run_scoped(
        seed: u64,
        workers: usize,
        hazards: Option<HazardPlan>,
    ) -> SearchResult<BitGenome> {
        let mut session = session_with(seed, hazards);
        let mut replicas: Vec<MemoPopcount> =
            (0..workers).map(|_| MemoPopcount::default()).collect();
        while !session.done() {
            session.step(&mut replicas);
        }
        session.finish()
    }

    fn run_pooled(
        seed: u64,
        workers: usize,
        hazards: Option<HazardPlan>,
    ) -> SearchResult<BitGenome> {
        let mut session = session_with(seed, hazards);
        let pool = EvalPool::new(&MemoPopcount::default(), workers);
        while !session.done() {
            session.step_pooled(&pool);
        }
        pool.shutdown();
        session.finish()
    }

    fn hazard_mix() -> HazardPlan {
        let plan = HazardPlan::new();
        plan.schedule(2, Hazard::Panic);
        plan.schedule(5, Hazard::Transient);
        for attempt in 0..4 {
            plan.schedule_attempt(9, attempt, Hazard::Transient);
        }
        plan.schedule(11, Hazard::BudgetBlowout);
        plan.schedule(14, Hazard::KillWorker);
        plan.schedule(23, Hazard::KillWorker);
        plan
    }

    fn assert_same_search(a: &SearchResult<BitGenome>, b: &SearchResult<BitGenome>, tag: &str) {
        assert_eq!(a.best, b.best, "{tag}: best");
        assert_eq!(a.best_fitness, b.best_fitness, "{tag}: best fitness");
        assert_eq!(a.leaderboard, b.leaderboard, "{tag}: leaderboard");
        assert_eq!(a.history, b.history, "{tag}: history");
        assert_eq!(a.generations, b.generations, "{tag}: generations");
        assert_eq!(a.incidents, b.incidents, "{tag}: incidents");
        assert_eq!(
            a.eval_stats.evaluations, b.eval_stats.evaluations,
            "{tag}: evaluations"
        );
        assert_eq!(
            a.eval_stats.cache_hits, b.eval_stats.cache_hits,
            "{tag}: cache hits"
        );
    }

    #[test]
    fn pooled_matches_scoped_for_any_worker_count() {
        let reference = run_scoped(77, 1, None);
        for workers in [1usize, 2, 8] {
            let pooled = run_pooled(77, workers, None);
            assert_same_search(&pooled, &reference, &format!("workers={workers}"));
        }
    }

    #[test]
    fn pooled_matches_scoped_under_hazards() {
        let reference = run_scoped(53, 1, Some(hazard_mix()));
        assert!(reference.quarantined() >= 2);
        assert!(reference.workers_lost() >= 1);
        for workers in [1usize, 2, 8] {
            let pooled = run_pooled(53, workers, Some(hazard_mix()));
            assert_same_search(&pooled, &reference, &format!("hazard workers={workers}"));
        }
    }

    #[test]
    fn killing_every_pool_worker_revives_the_pool() {
        // A `HazardPlan` clone shares the fire-once schedule, so each run
        // gets a freshly built plan.
        let kills = || {
            let plan = HazardPlan::new();
            plan.schedule(1, Hazard::KillWorker);
            plan.schedule(3, Hazard::KillWorker);
            plan.schedule(4, Hazard::KillWorker);
            plan
        };
        let pooled = run_pooled(19, 2, Some(kills()));
        let scoped = run_scoped(19, 2, Some(kills()));
        assert_same_search(&pooled, &scoped, "revival");
        assert_eq!(pooled.workers_lost(), 3);
        assert!(pooled.best_fitness.is_finite());
    }

    #[test]
    fn pool_stats_account_for_every_evaluation() {
        let mut session = session_with(31, None);
        let pool = EvalPool::new(&MemoPopcount::default(), 4);
        while !session.done() {
            session.step_pooled(&pool);
        }
        let replicas = pool.shutdown();
        assert_eq!(replicas.len(), 4);
        let stats = session.eval_stats().clone();
        assert_eq!(
            stats.worker_tasks.iter().sum::<u64>(),
            stats.evaluations,
            "every distinct evaluation runs exactly once on some worker"
        );
        assert!(stats.steals <= stats.evaluations);
        assert_eq!(
            stats.replica_warm_hits + stats.replica_cold_misses,
            stats.evaluations,
            "memo counters partition the evaluations"
        );
        let replica_cold: u64 = replicas.iter().map(|r| r.cold).sum();
        assert_eq!(replica_cold, stats.replica_cold_misses);
    }

    #[test]
    fn scheduler_campaigns_match_solo_runs() {
        let seeds = [101u64, 202, 303];
        let solo: Vec<SearchResult<BitGenome>> = seeds
            .iter()
            .map(|&seed| run_pooled(seed, 3, None))
            .collect();
        let mut scheduler = CampaignScheduler::new(EvalPool::new(&MemoPopcount::default(), 3));
        for &seed in &seeds {
            scheduler.add(session_with(seed, None), None);
        }
        scheduler.run();
        assert!(scheduler.idle());
        let merged = scheduler.merged_eval_stats();
        let (sessions, replicas) = scheduler.finish();
        assert_eq!(replicas.len(), 3);
        for ((session, reference), &seed) in sessions.into_iter().zip(&solo).zip(&seeds) {
            let result = session.finish();
            assert_same_search(&result, reference, &format!("seed={seed}"));
        }
        assert_eq!(
            merged.evaluations,
            solo.iter().map(|r| r.eval_stats.evaluations).sum::<u64>()
        );
    }

    #[test]
    fn scheduler_step_budget_pauses_without_blocking_others() {
        let mut scheduler = CampaignScheduler::new(EvalPool::new(&MemoPopcount::default(), 2));
        let budgeted = scheduler.add(session_with(7, None), Some(2));
        let free = scheduler.add(session_with(8, None), None);
        scheduler.run();
        assert_eq!(scheduler.steps_taken(budgeted), 2);
        assert!(!scheduler.session(budgeted).done(), "paused, not finished");
        assert!(
            scheduler.session(free).done(),
            "unbudgeted campaign ran out"
        );
        // Raising the budget is adding a new scheduler on the same pool; a
        // paused session can simply keep stepping.
        let (mut sessions, _replicas) = scheduler.finish();
        let paused = &mut sessions[0];
        let mut replicas = vec![MemoPopcount::default()];
        while !paused.done() {
            paused.step(&mut replicas);
        }
        let resumed = std::mem::replace(paused, session_with(7, None)).finish();
        let reference = run_scoped(7, 1, None);
        assert_same_search(&resumed, &reference, "budget-paused continuation");
    }

    #[test]
    fn eval_stats_merge_is_deterministic_and_total() {
        let mut a = EvalStats {
            evaluations: 10,
            cache_hits: 3,
            workers: 2,
            cache_size: 5,
            compile_hits: 4,
            steals: 2,
            max_worker_idle_ns: 100,
            worker_tasks: vec![6, 4],
            replica_warm_hits: 1,
            replica_cold_misses: 9,
            generation_eval_seconds: vec![0.5, 0.25],
        };
        let b = EvalStats {
            evaluations: 7,
            cache_hits: 1,
            workers: 4,
            cache_size: 7,
            compile_hits: 2,
            steals: 5,
            max_worker_idle_ns: 40,
            worker_tasks: vec![1, 2, 3, 1],
            replica_warm_hits: 2,
            replica_cold_misses: 5,
            generation_eval_seconds: vec![0.125],
        };
        a.merge(&b);
        assert_eq!(a.evaluations, 17);
        assert_eq!(a.cache_hits, 4);
        assert_eq!(a.workers, 4, "workers is the max across campaigns");
        assert_eq!(a.cache_size, 12);
        assert_eq!(a.compile_hits, 6);
        assert_eq!(a.steals, 7);
        assert_eq!(a.max_worker_idle_ns, 100);
        assert_eq!(a.worker_tasks, vec![7, 6, 3, 1]);
        assert_eq!(a.replica_warm_hits, 3);
        assert_eq!(a.replica_cold_misses, 14);
        assert_eq!(a.generation_eval_seconds, vec![0.625, 0.25]);
    }

    #[test]
    #[should_panic(expected = "at least one evaluation worker")]
    fn zero_workers_is_rejected() {
        EvalPool::new(&MemoPopcount::default(), 0);
    }

    /// A popcount fitness whose replicas carry a shared token, so a test
    /// can prove every worker thread exited (and released its replica).
    #[derive(Debug, Clone)]
    struct TokenPopcount {
        token: Arc<()>,
    }

    impl Fitness<BitGenome> for TokenPopcount {
        fn evaluate(&mut self, genome: &BitGenome) -> f64 {
            genome.count_ones() as f64
        }
    }

    impl ParallelFitness<BitGenome> for TokenPopcount {
        fn replicate(&self) -> Self {
            TokenPopcount {
                token: Arc::clone(&self.token),
            }
        }

        fn absorb(&mut self, _replica: Self) {}

        fn cache_counters(&self) -> (u64, u64) {
            (0, 0)
        }
    }

    #[test]
    fn dropping_a_live_pool_mid_campaign_joins_every_worker() {
        let token = Arc::new(());
        let master = TokenPopcount {
            token: Arc::clone(&token),
        };
        // The leak scenario: a campaign driver panics between spawning the
        // pool and draining the campaign, unwinding through a live pool
        // with warm workers. Drop must signal shutdown and join them all.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut session = session_with(41, None);
            let pool = EvalPool::new(&master, 4);
            session.step_pooled(&pool);
            assert!(!session.done(), "campaign must still be mid-flight");
            panic!("campaign driver dies with the pool live");
        }));
        assert!(outcome.is_err(), "the driver panic must propagate");
        // Drop joined the workers and released the shared pool state, so
        // every replica (and each worker's Arc on it) is gone: only the
        // test's token and the master's clone remain. No sleeps — if a
        // worker thread outlived the drop, this count would still include
        // its replica.
        assert_eq!(Arc::strong_count(&token), 2);
        drop(master);
        assert_eq!(Arc::strong_count(&token), 1);
    }

    #[test]
    fn removing_a_campaign_mid_round_leaves_survivors_bit_identical() {
        let seeds = [101u64, 202, 303];
        let solo: Vec<SearchResult<BitGenome>> = seeds
            .iter()
            .map(|&seed| run_pooled(seed, 3, None))
            .collect();
        let mut scheduler = CampaignScheduler::new(EvalPool::new(&MemoPopcount::default(), 3));
        let ids: Vec<usize> = seeds
            .iter()
            .map(|&seed| scheduler.add(session_with(seed, None), None))
            .collect();
        // Advance everyone two rounds, then cancel the middle campaign —
        // the survivors' ids, dealing order, and eval indices must not
        // shift under them.
        scheduler.tick();
        scheduler.tick();
        let removed = scheduler.remove(ids[1]);
        assert!(!removed.done(), "removed while still searching");
        assert!(!scheduler.contains(ids[1]));
        assert_eq!(scheduler.campaigns(), 2);
        scheduler.run();
        for &survivor in [ids[0], ids[2]].iter() {
            assert!(scheduler.session(survivor).done());
        }
        let first = scheduler.remove(ids[0]).finish();
        let last = scheduler.remove(ids[2]).finish();
        assert_same_search(&first, &solo[0], "survivor before the removal");
        assert_same_search(&last, &solo[2], "survivor after the removal");
        let (sessions, replicas) = scheduler.finish();
        assert!(sessions.is_empty());
        assert_eq!(replicas.len(), 3);
    }

    #[test]
    fn pausing_a_campaign_preserves_its_trajectory() {
        let reference = run_pooled(909, 2, None);
        let mut scheduler = CampaignScheduler::new(EvalPool::new(&MemoPopcount::default(), 2));
        let id = scheduler.add(session_with(909, None), None);
        scheduler.tick();
        scheduler.set_paused(id, true);
        assert!(scheduler.is_paused(id));
        assert!(scheduler.idle(), "a paused campaign contributes no work");
        assert!(!scheduler.tick(), "nothing runnable while paused");
        scheduler.set_paused(id, false);
        scheduler.run();
        let result = scheduler.remove(id).finish();
        assert_same_search(&result, &reference, "pause/resume continuation");
    }
}
