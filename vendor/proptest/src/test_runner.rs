//! Deterministic case runner with seed-file regression replay.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::path::{Path, PathBuf};

/// RNG handed to strategies; derefs to the vendored [`StdRng`].
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// A generator with a fixed seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl std::ops::Deref for TestRng {
    type Target = StdRng;

    fn deref(&self) -> &StdRng {
        &self.rng
    }
}

impl std::ops::DerefMut for TestRng {
    fn deref_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The case fell outside the property's precondition (`prop_assume!`).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Runs one property: replays persisted regression seeds, then runs
/// `config.cases` fresh cases with seeds derived from the test name.
///
/// `case` returns the generated values' debug rendering plus the property
/// outcome. Failing seeds are appended to the regression file before the
/// test panics, so the next run replays them first.
pub fn run_cases(
    config: &ProptestConfig,
    source_file: &str,
    test_name: &str,
    case: impl Fn(&mut TestRng) -> (String, Result<(), TestCaseError>),
) {
    let regression = regression_path(source_file);
    if let Some(path) = &regression {
        for seed in read_seeds(path) {
            run_one(seed, test_name, &case, None, "regression replay");
        }
    }

    let base = hash_name(test_name);
    let mut rejects = 0u32;
    let mut index = 0u64;
    let mut passed = 0u32;
    while passed < config.cases {
        let seed = mix(base, index);
        index += 1;
        match run_one(
            seed,
            test_name,
            &case,
            regression.as_deref(),
            "generated case",
        ) {
            CaseOutcome::Pass => passed += 1,
            CaseOutcome::Reject => {
                rejects += 1;
                assert!(
                    rejects <= config.cases.saturating_mul(10),
                    "proptest stub: too many rejected cases in `{test_name}` \
                     ({rejects} rejects for {} passes)",
                    passed
                );
            }
        }
    }
}

enum CaseOutcome {
    Pass,
    Reject,
}

fn run_one(
    seed: u64,
    test_name: &str,
    case: &impl Fn(&mut TestRng) -> (String, Result<(), TestCaseError>),
    persist_to: Option<&Path>,
    phase: &str,
) -> CaseOutcome {
    let mut rng = TestRng::from_seed(seed);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
    match outcome {
        Ok((_, Ok(()))) => CaseOutcome::Pass,
        Ok((_, Err(TestCaseError::Reject(_)))) => CaseOutcome::Reject,
        Ok((desc, Err(TestCaseError::Fail(msg)))) => {
            if let Some(path) = persist_to {
                persist_seed(path, seed);
            }
            panic!(
                "property `{test_name}` failed ({phase}, seed {seed:#018x}):\n{msg}\n\
                 generated values:\n{desc}"
            );
        }
        Err(payload) => {
            if let Some(path) = persist_to {
                persist_seed(path, seed);
            }
            eprintln!("property `{test_name}` panicked ({phase}, seed {seed:#018x})");
            std::panic::resume_unwind(payload);
        }
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a: stable across runs and platforms (DefaultHasher is not
    // guaranteed stable, and seeds are persisted to disk).
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn mix(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a `file!()` path to its regression file, mirroring proptest's
/// source-parallel layout: for a source at `<crate>/<rel>`, the file is
/// `<crate>/../proptest-regressions/<rel>.txt`.
fn regression_path(source_file: &str) -> Option<PathBuf> {
    let manifest = std::env::var("CARGO_MANIFEST_DIR").ok()?;
    let manifest = Path::new(&manifest);
    // `file!()` is workspace-root-relative inside a workspace; find the
    // ancestor of the manifest dir it resolves against.
    let root = manifest
        .ancestors()
        .find(|a| a.join(source_file).is_file())?;
    let source = root.join(source_file);
    let rel = source.strip_prefix(manifest).ok()?.to_path_buf();
    Some(
        manifest
            .parent()?
            .join("proptest-regressions")
            .join(rel)
            .with_extension("txt"),
    )
}

/// Parses `cc <hex>` lines; the first 16 hex digits become the replay seed.
fn read_seeds(path: &Path) -> Vec<u64> {
    let Ok(contents) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    contents
        .lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("cc ")?;
            let hex: String = rest
                .chars()
                .take_while(char::is_ascii_hexdigit)
                .take(16)
                .collect();
            u64::from_str_radix(&hex, 16).ok()
        })
        .collect()
}

fn persist_seed(path: &Path, seed: u64) {
    if read_seeds(path).contains(&seed) {
        return;
    }
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let new_file = !path.exists();
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        if new_file {
            let _ = writeln!(
                f,
                "# Seeds for failure cases proptest has generated in the past. It is\n\
                 # automatically read and these particular cases re-run before any\n\
                 # novel cases are generated."
            );
        }
        let _ = writeln!(f, "cc {seed:016x} # seed-replay regression (stub runner)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_parse_from_cc_lines() {
        let dir = std::env::temp_dir().join("proptest-stub-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seeds.txt");
        std::fs::write(
            &path,
            "# comment\ncc 00000000000000ff # note\ncc deadbeefdeadbeefcafe # long hash\n",
        )
        .unwrap();
        assert_eq!(read_seeds(&path), vec![0xff, 0xdead_beef_dead_beef]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn persisted_seeds_are_deduplicated() {
        let dir = std::env::temp_dir().join("proptest-stub-test-dedup");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seeds.txt");
        std::fs::remove_file(&path).ok();
        persist_seed(&path, 42);
        persist_seed(&path, 42);
        persist_seed(&path, 43);
        assert_eq!(read_seeds(&path), vec![42, 43]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let config = ProptestConfig::with_cases(32);
        let mut count = 0u32;
        let counter = std::cell::Cell::new(0u32);
        run_cases(
            &config,
            "definitely/not/a/real/file.rs",
            "stub_self_test",
            |_rng| {
                counter.set(counter.get() + 1);
                (String::new(), Ok(()))
            },
        );
        count += counter.get();
        assert_eq!(count, 32);
    }

    #[test]
    fn name_hash_is_stable() {
        assert_eq!(hash_name("abc"), hash_name("abc"));
        assert_ne!(hash_name("abc"), hash_name("abd"));
    }
}
