//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy-combinator and macro surface this workspace
//! uses — `proptest!`, `prop_oneof!`, `prop_assert*!`, `prop_assume!`,
//! `Just`, `any`, ranges-as-strategies, tuples, `collection::vec`,
//! `prop_map`, `prop_recursive` — over a deterministic seed-per-case
//! runner (no shrinking). Each case derives its RNG seed from the test
//! name and case index, so failures are replayable; failing seeds are
//! persisted to `proptest-regressions/` as `cc <hex>` lines and replayed
//! on the next run, mirroring proptest's regression-file workflow.

#![allow(clippy::all)]

pub mod strategy;
pub mod test_runner;

/// `proptest::collection`: strategies for collections.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `proptest::arbitrary`: canonical strategies per type.
pub mod arbitrary {
    use crate::strategy::{BoxedStrategy, Strategy};

    /// Types with a canonical strategy covering their whole value space.
    pub trait Arbitrary: Sized + std::fmt::Debug + 'static {
        fn arbitrary() -> BoxedStrategy<Self>;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
        T::arbitrary()
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary() -> BoxedStrategy<Self> {
                    crate::strategy::FullRange::<$t>::default().boxed()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)` item
/// becomes a standard test that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(&$config, file!(), stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let mut __case_desc = ::std::string::String::new();
                $(
                    __case_desc.push_str(stringify!($arg));
                    __case_desc.push_str(" = ");
                    __case_desc.push_str(&::std::format!("{:?}", &$arg));
                    __case_desc.push('\n');
                )+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                (__case_desc, __result)
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Chooses uniformly (or by weight, `w => strategy`) among strategies that
/// share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts within a property body; failure reports the generated case
/// rather than unwinding through it.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)+), __l, __r
        );
    }};
}

/// Inequality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "{}\n  both: {:?}",
            ::std::format!($($fmt)+), __l
        );
    }};
}

/// Rejects the current case (it is regenerated, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
