//! Value-generation strategies.
//!
//! A [`Strategy`] deterministically maps an RNG state to a value. Unlike
//! real proptest there is no value tree or shrinking: a failing case is
//! identified by its seed, which the runner persists and replays.

use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::rc::Rc;

/// Generates values of one type from an RNG.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases this strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F, O>
    where
        Self: Sized,
    {
        Map {
            source: self,
            f,
            _out: PhantomData,
        }
    }

    /// Builds a recursive strategy: `self` generates leaves and `expand`
    /// wraps an inner strategy into one more nesting level, applied up to
    /// `depth` times. (`desired_size` and `expected_branch` shape real
    /// proptest's size budget; here only `depth` bounds the nesting.)
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let base = self.boxed();
        let mut strat = base.clone();
        for _ in 0..depth {
            let deeper = expand(strat).boxed();
            // Keep leaves reachable at every level so generated values span
            // all depths, not only maximal ones.
            strat = Union::new_weighted(vec![(1, base.clone()), (3, deeper)]).boxed();
        }
        strat
    }
}

/// A type-erased, clonable strategy handle.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }

    fn boxed(self) -> BoxedStrategy<T>
    where
        Self: Sized + 'static,
    {
        self
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F, O> {
    source: S,
    f: F,
    _out: PhantomData<fn() -> O>,
}

impl<S, F, O> Strategy for Map<S, F, O>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
    O: Debug,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Weighted choice among same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T: Debug> Union<T> {
    /// Uniform choice.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        Union::new_weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    /// Weighted choice.
    pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! requires at least one option"
        );
        let total_weight = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
        Union {
            options,
            total_weight,
        }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (weight, strat) in &self.options {
            let weight = u64::from(*weight);
            if pick < weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("pick is bounded by the weight total")
    }
}

/// Length bound for collection strategies: `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// `collection::vec` strategy.
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Full value-space strategy backing `any::<T>()`.
pub struct FullRange<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T> Default for FullRange<T> {
    fn default() -> Self {
        FullRange {
            _marker: PhantomData,
        }
    }
}

macro_rules! impl_full_range_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_full_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        let strat = (0u64..10, 5i64..=6, Just("x"));
        for _ in 0..1000 {
            let (a, b, c) = strat.generate(&mut rng);
            assert!(a < 10);
            assert!((5..=6).contains(&b));
            assert_eq!(c, "x");
        }
    }

    #[test]
    fn union_respects_weights() {
        let mut rng = TestRng::from_seed(2);
        let strat = Union::new_weighted(vec![(1, Just(0u32).boxed()), (9, Just(1u32).boxed())]);
        let ones: u32 = (0..10_000).map(|_| strat.generate(&mut rng)).sum();
        assert!((8_500..9_500).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn recursive_strategies_terminate_and_vary_depth() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)] // Leaf payload exists to exercise Debug formatting
        enum Tree {
            Leaf(u64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u64..4)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::from_seed(3);
        let depths: Vec<u32> = (0..200).map(|_| depth(&strat.generate(&mut rng))).collect();
        assert!(depths.iter().all(|&d| d <= 3));
        assert!(depths.iter().any(|&d| d == 0));
        assert!(depths.iter().any(|&d| d >= 2));
    }

    #[test]
    fn vec_strategy_honours_size() {
        let mut rng = TestRng::from_seed(4);
        let strat = crate::collection::vec(0u64..100, 2..5);
        for _ in 0..500 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }
}
