//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored `serde` stub's simplified data model (a single [`Value`]
//! tree) with no dependency on `syn`/`quote`: the item is parsed by walking
//! the raw `TokenStream` and the impl is emitted as source text.
//!
//! Supported shapes (the full surface this workspace uses):
//! - structs with named fields, tuple structs, unit structs
//! - enums with unit, tuple, and struct variants
//! - `#[serde(default)]` on named struct fields
//!
//! Not supported (panics with a clear message): generic types, lifetimes
//! on the item itself, and other `#[serde(...)]` attributes.

#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: its name (ident for named fields) and whether it
/// carries `#[serde(default)]`.
struct Field {
    name: String,
    default: bool,
}

enum Body {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

enum Item {
    Struct {
        name: String,
        body: Body,
    },
    Enum {
        name: String,
        variants: Vec<(String, Body)>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, body } => gen_struct_serialize(name, body),
        Item::Enum { name, variants } => gen_enum_serialize(name, variants),
    };
    src.parse()
        .expect("serde stub derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, body } => gen_struct_deserialize(name, body),
        Item::Enum { name, variants } => gen_enum_deserialize(name, variants),
    };
    src.parse()
        .expect("serde stub derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub derive: expected item name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub derive: generic type `{name}` is not supported");
    }

    match kind.as_str() {
        "struct" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Body::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
                other => panic!("serde stub derive: unexpected struct body {other:?}"),
            };
            Item::Struct { name, body }
        }
        "enum" => {
            let variants = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("serde stub derive: unexpected enum body {other:?}"),
            };
            Item::Enum { name, variants }
        }
        other => panic!("serde stub derive: `{other}` items are not supported"),
    }
}

/// Advances past `#[...]` attribute groups (incl. doc comments), returning
/// whether any of them was `#[serde(default)]`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            if attr_is_serde_default(g.stream()) {
                has_default = true;
            }
        }
        *i += 2;
    }
    has_default
}

fn attr_is_serde_default(stream: TokenStream) -> bool {
    let mut iter = stream.into_iter();
    match (iter.next(), iter.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g))) if id.to_string() == "serde" => g
            .stream()
            .into_iter()
            .any(|tt| matches!(&tt, TokenTree::Ident(id) if id.to_string() == "default")),
        _ => false,
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Skips one type, honouring nested `<...>` (angle brackets are bare
/// `Punct`s, not groups). Stops after the top-level `,` or at end of input.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(tt) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let default = skip_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stub derive: expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde stub derive: expected `:` after `{name}`, found {other}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break; // trailing comma
        }
        skip_type(&tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Body)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stub derive: expected variant name, found {other}"),
        };
        i += 1;
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let b = Body::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                b
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let b = Body::Named(parse_named_fields(g.stream()));
                i += 1;
                b
            }
            _ => Body::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the next top-level
        // comma, then the comma itself.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            skip_type(&tokens, &mut i);
        } else if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push((name, body));
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation (emitted as source text, then reparsed)
// ---------------------------------------------------------------------------

fn gen_struct_serialize(name: &str, body: &Body) -> String {
    let expr = match body {
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
        }
        Body::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), ::serde::Serialize::serialize(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{ {expr} }}\n\
         }}"
    )
}

fn gen_struct_deserialize(name: &str, body: &Body) -> String {
    let body_expr = match body {
        Body::Unit => format!("::std::result::Result::Ok({name})"),
        Body::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__s[{i}])?"))
                .collect();
            format!(
                "let __s = __v.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected sequence for {name}\"))?;\n\
                 if __s.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::Error::custom(\"wrong tuple arity for {name}\"));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({elems}))",
                elems = elems.join(", ")
            )
        }
        Body::Named(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| named_field_init(name, f)).collect();
            format!(
                "let __m = __v.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})",
                inits = inits.join(", ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body_expr}\n\
             }}\n\
         }}"
    )
}

fn named_field_init(owner: &str, f: &Field) -> String {
    let missing = if f.default {
        "::std::default::Default::default()".to_string()
    } else {
        format!(
            "return ::std::result::Result::Err(::serde::Error::custom(\"missing field `{}` in {owner}\"))",
            f.name
        )
    };
    format!(
        "{0}: match ::serde::__find(__m, \"{0}\") {{\n\
             ::std::option::Option::Some(__x) => ::serde::Deserialize::deserialize(__x)?,\n\
             ::std::option::Option::None => {missing},\n\
         }}",
        f.name
    )
}

fn gen_enum_serialize(name: &str, variants: &[(String, Body)]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|(vname, body)| match body {
            Body::Unit => format!(
                "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
            ),
            Body::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let sers: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::serialize({b})"))
                    .collect();
                format!(
                    "{name}::{vname}({binds}) => ::serde::Value::Map(::std::vec![(\n\
                         ::std::string::String::from(\"{vname}\"),\n\
                         ::serde::Value::Seq(::std::vec![{sers}]),\n\
                     )]),",
                    binds = binds.join(", "),
                    sers = sers.join(", ")
                )
            }
            Body::Named(fields) => {
                let binds: Vec<String> =
                    fields.iter().map(|f| format!("{0}: __{0}", f.name)).collect();
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{0}\"), ::serde::Serialize::serialize(__{0}))",
                            f.name
                        )
                    })
                    .collect();
                format!(
                    "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(::std::vec![(\n\
                         ::std::string::String::from(\"{vname}\"),\n\
                         ::serde::Value::Map(::std::vec![{entries}]),\n\
                     )]),",
                    binds = binds.join(", "),
                    entries = entries.join(", ")
                )
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}\n}}\n\
             }}\n\
         }}",
        arms = arms.join("\n")
    )
}

fn gen_enum_deserialize(name: &str, variants: &[(String, Body)]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|(_, body)| matches!(body, Body::Unit))
        .map(|(vname, _)| format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"))
        .collect();

    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|(vname, body)| match body {
            Body::Unit => None,
            Body::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::deserialize(&__s[{i}])?"))
                    .collect();
                Some(format!(
                    "\"{vname}\" => {{\n\
                         let __s = __content.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected sequence for {name}::{vname}\"))?;\n\
                         if __s.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\"wrong arity for {name}::{vname}\"));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}::{vname}({elems}))\n\
                     }}",
                    elems = elems.join(", ")
                ))
            }
            Body::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| named_field_init(&format!("{name}::{vname}"), f))
                    .collect();
                Some(format!(
                    "\"{vname}\" => {{\n\
                         let __m = __content.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for {name}::{vname}\"))?;\n\
                         ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                     }}",
                    inits = inits.join(", ")
                ))
            }
        })
        .collect();

    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown unit variant `{{__other}}` for {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                         let (__tag, __content) = &__m[0];\n\
                         match __tag.as_str() {{\n\
                             {data_arms}\n\
                             __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                         }}\n\
                     }},\n\
                     _ => ::std::result::Result::Err(::serde::Error::custom(\"expected string or single-entry map for {name}\")),\n\
                 }}\n\
             }}\n\
         }}",
        unit_arms = unit_arms.join("\n"),
        data_arms = data_arms.join("\n")
    )
}
