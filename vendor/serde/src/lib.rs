//! Offline stand-in for the `serde` crate.
//!
//! Real serde's visitor-based data model exists to decouple formats from
//! types; this workspace only ever round-trips through JSON, so the stub
//! collapses the model to one concrete [`Value`] tree:
//!
//! - `Serialize` renders a type into a [`Value`]
//! - `Deserialize` rebuilds a type from a `&Value`
//!
//! The derive macros (re-exported from the vendored `serde_derive`) encode
//! structs as maps, tuple structs as sequences, unit enum variants as
//! strings, and data-carrying variants as single-entry maps — close enough
//! to serde's externally-tagged default that persisted JSON stays
//! human-readable. Maps serialize as sequences of `[key, value]` pairs so
//! non-string keys round-trip without a string codec.

#![allow(clippy::all)]

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// The serialized form of any value: an ordered, JSON-compatible tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (JSON object).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as an unsigned integer, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(u) => Some(*u),
            Value::I64(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// This value as a signed integer, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(i) => Some(*i),
            Value::U64(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// This value as a float (integers widen losslessly enough for f64).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::I64(i) => Some(*i as f64),
            Value::U64(u) => Some(*u as f64),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }
}

/// First map entry with the given key (generated derive code calls this).
#[doc(hidden)]
pub fn __find<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Serialization/deserialization failure: a message describing the mismatch.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into the [`Value`] data model.
pub trait Serialize {
    fn serialize(&self) -> Value;
}

/// Rebuilds `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// # Errors
    ///
    /// Returns [`Error`] when `value`'s shape does not match `Self`.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

// --- primitives ------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let u = value
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(u).map_err(|_| Error::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let i = value
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(i).map_err(|_| Error::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn serialize(&self) -> Value {
        // Store as a string: u128 exceeds every JSON-native numeric width.
        Value::Str(self.to_string())
    }
}

impl Deserialize for u128 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => s.parse().map_err(|_| Error::custom("invalid u128 string")),
            _ => value
                .as_u64()
                .map(u128::from)
                .ok_or_else(|| Error::custom("expected u128")),
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected f32"))
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        // Static string fields (e.g. compile-time scale names) can only be
        // reconstituted by leaking; the workspace deserializes a handful of
        // short names per process, so the leak is bounded and intentional.
        let s = value
            .as_str()
            .ok_or_else(|| Error::custom("expected string"))?;
        Ok(Box::leak(s.to_string().into_boxed_str()))
    }
}

// --- containers ------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::deserialize(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let s = value.as_seq().ok_or_else(|| Error::custom("expected tuple sequence"))?;
                let expected = [$($idx),+].len();
                if s.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected}, got {}",
                        s.len()
                    )));
                }
                Ok(($($t::deserialize(&s[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        // Sort entries by rendered key text: HashMap iteration order is
        // nondeterministic, and stable output keeps persisted JSON diffable.
        let mut entries: Vec<Value> = self
            .iter()
            .map(|(k, v)| Value::Seq(vec![k.serialize(), v.serialize()]))
            .collect();
        entries.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Seq(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(value: &Value) -> Result<Self, Error> {
        deserialize_pairs(value)?
            .into_iter()
            .collect::<Result<_, _>>()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        deserialize_pairs(value)?
            .into_iter()
            .collect::<Result<_, _>>()
    }
}

/// Shared map decoding: a sequence of `[key, value]` pairs.
fn deserialize_pairs<K: Deserialize, V: Deserialize>(
    value: &Value,
) -> Result<Vec<Result<(K, V), Error>>, Error> {
    Ok(value
        .as_seq()
        .ok_or_else(|| Error::custom("expected map as sequence of pairs"))?
        .iter()
        .map(|pair| {
            let s = pair
                .as_seq()
                .ok_or_else(|| Error::custom("expected [key, value] pair"))?;
            if s.len() != 2 {
                return Err(Error::custom("expected [key, value] pair of length 2"));
            }
            Ok((K::deserialize(&s[0])?, V::deserialize(&s[1])?))
        })
        .collect())
}

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn deserialize(_value: &Value) -> Result<Self, Error> {
        Ok(())
    }
}

impl Serialize for std::time::Duration {
    fn serialize(&self) -> Value {
        Value::Seq(vec![
            Value::U64(self.as_secs()),
            Value::U64(u64::from(self.subsec_nanos())),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let (secs, nanos): (u64, u32) = Deserialize::deserialize(value)?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        for v in [0u64, 1, u64::MAX] {
            assert_eq!(u64::deserialize(&v.serialize()).unwrap(), v);
        }
        for v in [i64::MIN, -1, 0, i64::MAX] {
            assert_eq!(i64::deserialize(&v.serialize()).unwrap(), v);
        }
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert_eq!(bool::deserialize(&true.serialize()).unwrap(), true);
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
        assert!(u8::deserialize(&Value::U64(300)).is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::deserialize(&v.serialize()).unwrap(), v);
        let arr = [7u64, 8, 9, 10];
        assert_eq!(<[u64; 4]>::deserialize(&arr.serialize()).unwrap(), arr);
        let opt: Option<u32> = None;
        assert_eq!(Option::<u32>::deserialize(&opt.serialize()).unwrap(), None);
        let boxed = Box::new(5i64);
        assert_eq!(Box::<i64>::deserialize(&boxed.serialize()).unwrap(), boxed);
    }

    #[test]
    fn maps_roundtrip() {
        let mut m = HashMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2);
        let back: HashMap<String, u64> = Deserialize::deserialize(&m.serialize()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn integer_widening_into_f64() {
        assert_eq!(f64::deserialize(&Value::I64(3)).unwrap(), 3.0);
        assert_eq!(f64::deserialize(&Value::U64(4)).unwrap(), 4.0);
    }
}
