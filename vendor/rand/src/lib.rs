//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this crate provides a
//! deterministic, seedable PRNG with the `rand` 0.8 API subset the
//! workspace uses: `rngs::StdRng`, `SeedableRng::{seed_from_u64, from_seed}`
//! and `Rng::{gen, gen_range, gen_bool, fill}`.
//!
//! The generator is xoshiro256** seeded via SplitMix64 — fast, solid
//! statistical quality, and fully deterministic per seed (the property the
//! workspace's searches and tests rely on). The *stream* differs from the
//! real `rand::rngs::StdRng` (ChaCha12); nothing in the workspace depends
//! on the exact stream, only on per-seed determinism.

#![allow(clippy::all)]

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Standard named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic standard generator (xoshiro256**).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw generator state — four 64-bit words of xoshiro256**
        /// state. Together with [`StdRng::from_state`] this lets callers
        /// checkpoint a generator mid-stream and later resume it at exactly
        /// the same position (the DStress campaign journal persists this
        /// across process restarts).
        pub fn to_state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from raw state captured by
        /// [`StdRng::to_state`]. The restored generator continues the
        /// original stream bit-for-bit.
        pub fn from_state(s: [u64; 4]) -> Self {
            // An all-zero state is a fixed point of xoshiro; nudge it the
            // same way `from_seed` does so the generator always advances.
            if s == [0; 4] {
                return <StdRng as SeedableRng>::from_seed([0u8; 32]);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0x6A09_E667_F3BC_C909, 1, 2];
            }
            StdRng { s }
        }
    }
}

mod sealed {
    /// Types producible uniformly from raw generator output via `gen()`.
    pub trait Standard: Sized {
        fn sample_standard<R: super::RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    /// Range types usable with `gen_range`, generic over the output type
    /// so the caller's expected type drives integer-literal inference.
    pub trait SampleRange<T> {
        fn sample_in<R: super::RngCore + ?Sized>(self, rng: &mut R) -> T;
    }
}

use sealed::{SampleRange, Standard};

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Unbiased integer sampling in `[0, bound)` by rejection (Lemire-style
/// widening multiply would also work; rejection keeps it simple and exact).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: any value is uniform.
                    return u64::sample_standard(rng) as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Returns a uniformly random value of a supported primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns a uniformly random value in the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_in(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must lie in [0, 1], got {p}"
        );
        f64::sample_standard(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Minimal `rand::distributions` namespace for API compatibility.
pub mod distributions {
    /// Marker for the standard (full-width uniform) distribution.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;
}

pub use rngs::StdRng as _StdRngReexportGuard;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        let first: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        let mut d = StdRng::seed_from_u64(42);
        let other: Vec<u64> = (0..8).map(|_| d.gen()).collect();
        assert_ne!(first, other);
    }

    #[test]
    fn state_checkpoint_resumes_the_stream() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..100 {
            rng.gen::<u64>();
        }
        let state = rng.to_state();
        let tail: Vec<u64> = (0..50).map(|_| rng.gen()).collect();
        let mut resumed = StdRng::from_state(state);
        let resumed_tail: Vec<u64> = (0..50).map(|_| resumed.gen()).collect();
        assert_eq!(tail, resumed_tail);
        // A zero state is nudged, never a fixed point.
        let mut zero = StdRng::from_state([0; 4]);
        assert_ne!(zero.gen::<u64>(), zero.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(0u64..=1);
            assert!(u <= 1);
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>()).collect();
        assert!(samples.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn range_distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "bucket {b}");
        }
    }

    #[test]
    fn fill_bytes_covers_tails() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
