//! Offline stand-in for `serde_json`.
//!
//! Writes and parses JSON against the vendored `serde` stub's [`Value`]
//! tree. Only the workspace's surface is provided: [`to_string_pretty`],
//! [`from_str`], and [`Error`]. The writer emits 2-space-indented JSON;
//! the parser is a plain recursive-descent over the full JSON grammar
//! (escapes, surrogate pairs, scientific notation).

#![allow(clippy::all)]

use serde::{Deserialize, Serialize, Value};

/// JSON encode/decode failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as pretty-printed (2-space-indented) JSON.
///
/// # Errors
///
/// Infallible for well-formed values; the `Result` mirrors serde_json's
/// signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), 0);
    Ok(out)
}

/// Serializes `value` as compact single-line JSON — the form line-oriented
/// stores (the DStress campaign journal's JSONL records) require, since a
/// record must not contain raw newlines.
///
/// # Errors
///
/// Infallible for well-formed values; the `Result` mirrors serde_json's
/// signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_compact(&mut out, &value.serialize());
    Ok(out)
}

/// Deserializes a `T` from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::deserialize(&value)?)
}

// --- writer ----------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) if items.is_empty() => out.push_str("[]"),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent + 1);
                write_value(out, item, indent + 1);
            }
            newline_indent(out, indent);
            out.push(']');
        }
        Value::Map(entries) if entries.is_empty() => out.push_str("{}"),
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value(out, v, indent + 1);
            }
            newline_indent(out, indent);
            out.push('}');
        }
    }
}

fn write_value_compact(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value_compact(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value_compact(out, v);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; null round-trips to NaN via as_f64.
        out.push_str("null");
        return;
    }
    let text = format!("{f}");
    out.push_str(&text);
    // Keep a float marker so reparsing yields F64, not an integer.
    if !text.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe via str iteration).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::I64(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::U64(u))
        } else {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("dstress \"db\"\n".into())),
            ("count".into(), Value::U64(u64::MAX)),
            ("neg".into(), Value::I64(-42)),
            ("pi".into(), Value::F64(3.25)),
            ("whole".into(), Value::F64(812.0)),
            ("flag".into(), Value::Bool(true)),
            ("nothing".into(), Value::Null),
            // Positive integers reparse as I64 (U64 is only for > i64::MAX),
            // so the canonical tree uses I64 here.
            (
                "items".into(),
                Value::Seq(vec![Value::I64(1), Value::Seq(vec![]), Value::Map(vec![])]),
            ),
        ]);
        struct Wrap(Value);
        impl Serialize for Wrap {
            fn serialize(&self) -> Value {
                self.0.clone()
            }
        }
        let text = to_string_pretty(&Wrap(v.clone())).unwrap();
        let back = super::parse_value(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn typed_roundtrip() {
        let data = vec![1u64, 5, u64::MAX];
        let text = to_string_pretty(&data).unwrap();
        let back: Vec<u64> = from_str(&text).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn compact_form_is_single_line_and_reparses() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("line\nbreak".into())),
            ("xs".into(), Value::Seq(vec![Value::I64(1), Value::I64(-2)])),
            ("f".into(), Value::F64(0.1 + 0.2)),
            ("none".into(), Value::Null),
        ]);
        struct Wrap(Value);
        impl Serialize for Wrap {
            fn serialize(&self) -> Value {
                self.0.clone()
            }
        }
        let text = to_string(&Wrap(v.clone())).unwrap();
        assert!(!text.contains('\n'), "compact JSON must be one line");
        assert_eq!(super::parse_value(&text).unwrap(), v);
    }

    #[test]
    fn floats_stay_floats() {
        let text = to_string_pretty(&812.0f64).unwrap();
        assert_eq!(text, "812.0");
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, 812.0);
    }

    #[test]
    fn escapes_and_unicode() {
        let back: String = from_str(r#""aé😀\t""#).unwrap();
        assert_eq!(back, "aé😀\t");
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
        assert!(from_str::<u64>("\"unterminated").is_err());
    }
}
