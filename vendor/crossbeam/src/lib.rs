//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `crossbeam::scope` / `Scope::spawn` API the workspace uses,
//! implemented on top of `std::thread::scope` (stable since Rust 1.63).
//! Matching real crossbeam, `scope` returns `Err` when a spawned thread
//! panicked and the panic was not observed through `join`; panics observed
//! via `join` surface as that handle's `Err` and leave the scope `Ok`.

#![allow(clippy::all)]

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result type carrying a thread panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle passed to the `scope` closure; spawns threads that may
    /// borrow from the enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread, joinable within the scope.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again so
        /// nested spawns are possible, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope_inner = self.inner;
            let inner = self.inner.spawn(move || f(&Scope { inner: scope_inner }));
            ScopedJoinHandle { inner }
        }
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or panic
        /// payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Creates a scope in which threads borrowing local data can be spawned.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the panic payload if the closure panicked or any
    /// spawned thread panicked without being `join`ed.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub use thread::{scope, Scope, ScopedJoinHandle};

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawns_work() {
        let n = super::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn joined_panic_is_observed_and_scope_stays_ok() {
        let result = super::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join().is_err()
        });
        assert_eq!(result.unwrap(), true);
    }

    #[test]
    fn unjoined_panic_fails_the_scope() {
        let result = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
