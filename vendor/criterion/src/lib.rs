//! Offline stand-in for the `criterion` crate.
//!
//! Provides the `Criterion` / `benchmark_group` / `bench_function` /
//! `Bencher::iter` surface with a simple wall-clock measurement loop:
//! each benchmark is warmed up briefly, then timed over batches until the
//! sample count is reached, and the per-iteration median/mean are printed.
//! There are no plots, no statistical regression, and no saved baselines —
//! enough to compare relative throughput of two implementations in CI.

#![allow(clippy::all)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (re-export shim).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let sample_size = self.sample_size;
        run_benchmark(name, sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the measurement time budget (accepted for API compatibility;
    /// the stub's fixed sampling ignores it).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Ends the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    sampling: bool,
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, running it many times per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if !self.sampling {
            // Calibration pass: find an iteration count that makes one
            // sample take roughly a millisecond (min 1 iteration).
            let start = Instant::now();
            black_box(routine());
            let once = start.elapsed().max(Duration::from_nanos(1));
            let per_sample = Duration::from_millis(1).as_nanos() / once.as_nanos().max(1);
            self.iters_per_sample = per_sample.clamp(1, 10_000) as u64;
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples
            .push(start.elapsed() / self.iters_per_sample as u32);
    }
}

fn run_benchmark(name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    // Calibration run (also serves as warm-up).
    let mut bencher = Bencher {
        sampling: false,
        iters_per_sample: 1,
        samples: Vec::new(),
    };
    f(&mut bencher);
    bencher.sampling = true;
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{name}: no samples (bencher.iter was never called)");
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!(
        "{name}: median {} mean {} ({} samples x {} iters)",
        format_duration(median),
        format_duration(mean),
        samples.len(),
        bencher.iters_per_sample
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group: a function that runs each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, honouring `--bench` filters
/// loosely (all groups always run; unknown flags are ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(format_duration(Duration::from_nanos(5)), "5 ns");
        assert!(format_duration(Duration::from_micros(5)).ends_with("us"));
        assert!(format_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(5)).ends_with("s"));
    }
}
