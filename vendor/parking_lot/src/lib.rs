//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, API-compatible subset of `parking_lot` built on
//! `std::sync`. Poisoning is absorbed (`parking_lot` has no poisoning):
//! a poisoned std lock yields its inner guard.

#![allow(clippy::all)]

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock with the `parking_lot` API (no poisoning, no
/// `Result` on `lock`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with the `parking_lot` API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trips() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
