#!/usr/bin/env python3
"""Extracts measured values from results/all_figures.log (+extension logs)
and fills the MEASURED_* placeholders in EXPERIMENTS.md."""
import re, sys, pathlib

root = pathlib.Path(__file__).resolve().parent.parent
log = (root / "results/all_figures.log").read_text()
exp_path = root / "EXPERIMENTS.md"
text = exp_path.read_text()

def grab(pattern, flags=0):
    m = re.search(pattern, log, flags)
    return m.groups() if m else None

subs = {}

# GA params
m = grab(r"0\.5\s+0\.9\s+40\s+([\d.]+)\s+(\d+) %")
if m:
    subs["MEASURED_GA_GENS"] = f"{m[0]} (at mutation 0.5 / crossover 0.9 / population 40; solve rate {m[1]} %)"
m = grab(r"best: mutation ([\d.]+), crossover ([\d.]+), population (\d+)")
if m:
    subs["MEASURED_GA_MUT"] = m[0]
    subs["MEASURED_GA_CROSS"] = m[1]
    subs["MEASURED_GA_POP"] = f"{m[2]} (40 solves in ~the paper's 80 generations; larger populations trade evaluations for generations)"

# fig01b
m = grab(r"max workload-to-workload ratio \(same domain\): (\d+)x")
if m: subs["MEASURED_F1_WORK"] = f"{m[0]}×"
m = grab(r"max DIMM-to-DIMM ratio \(same workload\): (\d+)x")
if m: subs["MEASURED_F1_DIMM"] = f"{m[0]}×"

# fig08
m = grab(r"Fig\. 8a[^\n]*\n  best fitness ([\d.]+), SMF ([\d.]+), converged (\w+), (\d+) generations, 1100-match ([\d.]+)")
if m:
    subs["MEASURED_F8A"] = f"SMF {m[1]}, {'converged' if m[2]=='true' else 'not converged'}, {m[3]} generations"
    subs["MEASURED_F8A_1100"] = f"yes — best pattern matches the `1100` tiling at {float(m[4])*100:.0f} %"
m = grab(r"cross-temperature SMF \(55C vs 60C worst boards\): ([\d.]+)")
if m: subs["MEASURED_F8B"] = m[0]
m = grab(r"Fig\. 8c[^\n]*\n  best fitness ([\d.]+), SMF ([\d.]+), converged (\w+), (\d+) generations")
if m: subs["MEASURED_F8C"] = f"SMF {m[1]}, {'converged' if m[2]=='true' else 'not converged'}, {m[3]} generations"
m = grab(r"worst-vs-best SMF: ([\d.]+); worst/best CE ratio: ([\d.]+)x")
if m:
    subs["MEASURED_F8C_CROSS"] = f"{m[0]} (our best-case converges to the exact complement phase `0011`, so the boards share almost no bits; the paper's messier landscape left more overlap)"
    subs["MEASURED_F8C_RATIO"] = f"{m[1]}×"
m = grab(r"Fig\. 8d[^\n]*\n  best fitness ([\d.]+), SMF ([\d.]+), converged (\w+)")
if m:
    subs["MEASURED_F8D_RUNS"] = f"yes — UEs in {float(m[0]):.0f}/10 runs for the whole leaderboard"
    subs["MEASURED_F8D_SMF"] = f"SMF {m[1]}, not converged" if m[2]=="false" else f"SMF {m[1]} (converged)"
m = grab(r"GA worst vs strongest micro-benchmark: \+([\d.]+) %")
if m: subs["MEASURED_F8E"] = f"+{m[0]} %"
# best-case weakest
m8e = re.search(r"Fig\. 8e.*?GA best-case\s+([\d.]+)", log, re.S)
baselines = re.findall(r"(all0s|all1s|checkerboard|walking0s|walking1s|random)\s+([\d.]+)", log)
if m8e and baselines:
    weakest = min(float(v) for _, v in baselines[:6])
    subs["MEASURED_F8E_BEST"] = "yes" if float(m8e.group(1)) < weakest else "NO"

# fig09/10
m = grab(r"24 KB-class GA best\s+([\d.]+)\s+\+?(-?[\d.]+) %")
if m: subs["MEASURED_F9_GAIN"] = f"+{m[1]} %"
m = grab(r"24 KB search: SMF ([\d.]+), converged (\w+), (\d+) generations")
if m: subs["MEASURED_F9_SMF"] = f"SMF {m[0]}, {'converged' if m[1]=='true' else 'not converged'}, {m[2]} generations"
m = grab(r"charged fraction prev ([\d.]+), victim ([\d.]+), next ([\d.]+)")
if m: subs["MEASURED_F9_STRUCT"] = f"yes — victim slice {float(m[1])*100:.0f} % charged; neighbour slices {float(m[0])*100:.0f} % / {float(m[2])*100:.0f} % (the coupled positions discharge; the rest drift)"
m = grab(r"Fig\. 10 - 512 KB-class patterns: SMF ([\d.]+), converged (\w+), best ([\d.]+) vs 24 KB ([\d.]+)")
if m:
    delta = (float(m[2])/float(m[3])-1)*100
    subs["MEASURED_F10"] = f"{delta:+.1f} % vs 24 KB (tie within run noise), SMF {m[0]}"

# fig11/12
m = grab(r"access template 1 GA best\s+([\d.]+)\s+([+-][\d.]+) %")
if m: subs["MEASURED_F11_GAIN"] = f"{m[1]} %"
m = grab(r"template 1: SMF ([\d.]+), converged (\w+)")
if m: subs["MEASURED_F11_SMF"] = f"SMF {m[0]}, {'converged' if m[1]=='true' else 'not converged'}"
m = grab(r"access template 2 GA best\s+([\d.]+)\s+([+-][\d.]+) %")
if m: subs["MEASURED_F12_GAIN"] = f"{m[1]} % over the data pattern"
m = grab(r"strides\): JW ([\d.]+), converged (\w+), vs template 1 ([+-][\d.]+) %")
if m: subs["MEASURED_F12_JW"] = f"JW {m[0]}, {'converged' if m[1]=='true' else 'not converged'}; {m[2]} % vs template 1"

# fig13
m = grab(r"Fig\. 13a[^\n]*\n[^\n]*\n  D'Agostino-Pearson: K2 = ([\d.]+), p = ([\d.]+) \((\w+)")
if m: subs["MEASURED_F13A_NORM"] = f"{'normal' if m[2]=='normal' else 'NOT normal'} (K² = {m[0]}, p = {m[1]})"
ms = re.findall(r"P\(GA found worst\) = ([\d.]+)", log)
if len(ms) >= 2:
    subs["MEASURED_F13A_P"] = ms[0]
    subs["MEASURED_F13B_P"] = ms[1]

# fig14
rows = re.findall(r"(64-bit data virus|24KB-class data virus|access virus)\s+([\d.]+) s\s+([\d.]+) s\s+([\d.]+) s", log)
if len(rows) >= 6:
    no_err = {r[0]: [float(r[1]), float(r[2]), float(r[3])] for r in rows[:3]}
    ce_ok = {r[0]: [float(r[1]), float(r[2]), float(r[3])] for r in rows[3:6]}
    mono = all(no_err[k][0] >= no_err[k][1] >= no_err[k][2] for k in no_err)
    subs["MEASURED_F14_TEMP"] = "yes" if mono else "mostly"
    access_most = all(no_err["access virus"][i] <= no_err["64-bit data virus"][i] for i in range(3))
    subs["MEASURED_F14_ORDER"] = "yes — the access virus's margins are the smallest at every temperature" if access_most else "partially (see table)"
    ue_dom = all(ce_ok[k][i] >= no_err[k][i] for k in ce_ok for i in range(3))
    subs["MEASURED_F14_UE"] = "yes" if ue_dom else "mostly"
savings = re.findall(r"(\d+)C\s+[\d.]+ s\s+([\d.]+) %\s+([\d.]+) %", log)
if savings:
    dram = ", ".join(f"{s[1]} % at {s[0]} °C" for s in savings)
    sysv = ", ".join(f"{s[2]} % at {s[0]} °C" for s in savings)
    subs["MEASURED_F14_DRAM"] = dram
    subs["MEASURED_F14_SYS"] = sysv

missing = []
for key, value in subs.items():
    if key in text:
        text = text.replace(key, value)
    else:
        missing.append(key)
left = re.findall(r"MEASURED_\w+", text)
exp_path.write_text(text)
print("substituted:", len(subs), "placeholders left:", left, "unused keys:", missing)
