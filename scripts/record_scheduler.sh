#!/usr/bin/env bash
# Runs the scheduler benchmark (persistent work-stealing pool vs the
# per-generation scoped executor, plus multi-campaign multiplexing) and
# records the medians and ratios to BENCH_scheduler.json. The vendored
# criterion stub prints lines of the form:
#   name: median 1.23 us mean 1.25 us (20 samples x 813 iters)
set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH_scheduler.json"
log="$(cargo bench -p dstress-bench --bench scheduler 2>&1)"
echo "$log"

printf '%s\n' "$log" | python3 -c "
import json
import re
import sys

UNITS = {\"ns\": 1.0, \"us\": 1e3, \"ms\": 1e6, \"s\": 1e9}
medians = {}
for line in sys.stdin:
    m = re.match(r\"^(\S+): median ([\d.]+) (ns|us|ms|s) mean\", line.strip())
    if m:
        medians[m.group(1)] = float(m.group(2)) * UNITS[m.group(3)]

report = {\"median_ns\": medians, \"speedup\": {}}
for shape in (\"even\", \"uneven\"):
    for workers in (1, 4, 8):
        scope = medians.get(f\"scheduler/scope_{shape}_w{workers}\")
        pool = medians.get(f\"scheduler/pool_{shape}_w{workers}\")
        if scope and pool:
            report[\"speedup\"][f\"{shape}_w{workers}\"] = round(scope / pool, 2)
for n in (2, 4):
    serial = medians.get(f\"scheduler/serial{n}_w8\")
    multiplex = medians.get(f\"scheduler/multiplex{n}_w8\")
    if serial and multiplex:
        report[\"speedup\"][f\"multiplex{n}_w8\"] = round(serial / multiplex, 2)

with open(sys.argv[1], \"w\") as f:
    json.dump(report, f, indent=2)
    f.write(\"\n\")
print(\"wrote \" + sys.argv[1] + \": speedups \" + json.dumps(report[\"speedup\"]))
" "$out"
