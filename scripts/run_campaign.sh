#!/usr/bin/env bash
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
export DSTRESS_JSON_DIR="$PWD/results"
cargo run --release -p dstress-bench --bin all_figures | tee results/all_figures.log
for extra in march_comparison rowhammer retention_profile sdc_accounting ablation_study; do
    cargo run --release -p dstress-bench --bin "$extra" | tee "results/${extra}.log"
done
