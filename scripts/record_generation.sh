#!/usr/bin/env bash
# Runs the generation benchmark (population-batched evaluation vs the
# per-candidate pipeline) and records the medians plus the speedup ratio
# to BENCH_generation.json. The vendored criterion stub prints lines of
# the form:
#   name: median 1.23 us mean 1.25 us (20 samples x 813 iters)
set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH_generation.json"
log="$(cargo bench -p dstress-bench --bench generation 2>&1)"
echo "$log"

printf '%s\n' "$log" | python3 -c "
import json
import re
import sys

UNITS = {\"ns\": 1.0, \"us\": 1e3, \"ms\": 1e6, \"s\": 1e9}
medians = {}
for line in sys.stdin:
    m = re.match(r\"^(\S+): median ([\d.]+) (ns|us|ms|s) mean\", line.strip())
    if m:
        medians[m.group(1)] = float(m.group(2)) * UNITS[m.group(3)]

report = {\"median_ns\": medians, \"speedup\": {}}
ref = medians.get(\"generation/per_candidate\")
fast = medians.get(\"generation/batched\")
if ref and fast:
    report[\"speedup\"][\"generation\"] = round(ref / fast, 2)

with open(sys.argv[1], \"w\") as f:
    json.dump(report, f, indent=2)
    f.write(\"\n\")
print(\"wrote \" + sys.argv[1] + \": speedups \" + json.dumps(report[\"speedup\"]))
" "$out"
