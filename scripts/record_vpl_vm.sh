#!/usr/bin/env bash
# Runs the vpl_vm benchmark (bytecode VM vs the tree-walking interpreter on
# the WORD64 virus and the pass-sensitive kernel) and records the medians,
# the speedup ratios and the per-pass deltas to BENCH_vpl_vm.json. The
# vendored criterion stub prints lines of the form:
#   name: median 1.23 us mean 1.25 us (20 samples x 813 iters)
set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH_vpl_vm.json"
log="$(cargo bench -p dstress-bench --bench vpl_vm 2>&1)"
echo "$log"

printf '%s\n' "$log" | python3 -c "
import json
import re
import sys

UNITS = {\"ns\": 1.0, \"us\": 1e3, \"ms\": 1e6, \"s\": 1e9}
medians = {}
for line in sys.stdin:
    m = re.match(r\"^(\S+): median ([\d.]+) (ns|us|ms|s) mean\", line.strip())
    if m:
        medians[m.group(1)] = float(m.group(2)) * UNITS[m.group(3)]

report = {\"median_ns\": medians, \"speedup\": {}, \"pass_delta\": {}}
for scope in (\"virus\", \"session\", \"kernel\"):
    ref = medians.get(scope + \"/interp\")
    fast = medians.get(scope + \"/vm\")
    if ref and fast:
        report[\"speedup\"][scope] = round(ref / fast, 2)

# The optimized session path (full pipeline + span recording) vs interp.
ref = medians.get(\"session/interp\")
fast = medians.get(\"session/vm-opt\")
if ref and fast:
    report[\"speedup\"][\"session-opt\"] = round(ref / fast, 2)

# Per-pass deltas on the kernel: unoptimized VM vs each pass alone and the
# full pipeline (>1 means the pass made the kernel faster).
base = medians.get(\"kernel/vm\")
if base:
    for p in (\"licm\", \"strength\", \"unroll\", \"dse\", \"full\"):
        t = medians.get(\"kernel/vm-\" + p)
        if t:
            report[\"pass_delta\"][p] = round(base / t, 2)

with open(sys.argv[1], \"w\") as f:
    json.dump(report, f, indent=2)
    f.write(\"\n\")
print(\"wrote \" + sys.argv[1] + \": speedups \" + json.dumps(report[\"speedup\"])
      + \" pass deltas \" + json.dumps(report[\"pass_delta\"]))
" "$out"
